"""Legacy setup shim: enables `pip install -e .` on toolchains without wheel."""

from setuptools import setup

setup()
