"""Benchmark: regenerate the Section IV-C interrupt/IPI statistics."""

from .conftest import BENCH_HORIZON_NS, run_and_render


def test_ipi(benchmark):
    result = run_and_render(benchmark, "ipi", horizon_ns=BENCH_HORIZON_NS)
    busy = next(row for row in result.rows if row[0].endswith("_SSR") and row[0].startswith("busy"))
    counts = busy[1:5]
    # Even distribution across cores under load.
    assert max(counts) < 1.5 * (sum(counts) / 4)
