"""Benchmark: regenerate Figure 5 (uarch pollution from GPU SSRs)."""

from .conftest import BENCH_CPU_NAMES, BENCH_HORIZON_NS, run_and_render


def test_fig5(benchmark):
    result = run_and_render(
        benchmark, "fig5", cpu_names=BENCH_CPU_NAMES, horizon_ns=BENCH_HORIZON_NS
    )
    l1 = result.column("l1d_miss_increase_pct")
    bp = result.column("branch_mispredict_increase_pct")
    assert all(v >= 0 for v in l1) and all(v >= 0 for v in bp)
    assert max(l1) > 5.0  # pollution is material, as in the paper
