"""Benchmark: the energy-cost extension (CPU joules per GPU workload)."""

from .conftest import BENCH_HORIZON_NS, run_and_render


def test_energy(benchmark):
    result = run_and_render(
        benchmark, "energy", gpu_names=["bfs", "sssp", "ubench"],
        horizon_ns=BENCH_HORIZON_NS,
    )
    overheads = {row[0]: row[3] for row in result.rows}
    # The storm is the most energy-expensive workload per the lost sleep.
    assert overheads["ubench"] == max(overheads.values())
    assert all(v > 0 for v in overheads.values())
