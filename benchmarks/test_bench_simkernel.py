"""Micro-benchmarks of the discrete-event kernel's hot path.

These isolate the costs the experiment figures pay per simulated event:
the ``Environment.run`` pop/dispatch loop, fast-path ``Timeout``
scheduling, ``Event.succeed`` triggering, and process resume.  They exist
to prove (and to keep proving) the event-loop optimizations — run with
``PYTHONPATH=src python -m pytest benchmarks/test_bench_simkernel.py``.
"""

from repro.sim import Environment

#: Events per benchmark round — large enough to swamp setup costs.
N_EVENTS = 20_000


def timeout_churn() -> int:
    """One process sleeping N times: Timeout create + schedule + resume."""
    env = Environment()

    def sleeper():
        for _ in range(N_EVENTS):
            yield env.timeout(3)

    env.process(sleeper())
    env.run()
    return env.now


def event_ping_pong() -> int:
    """Two processes signalling each other: succeed + callback dispatch."""
    env = Environment()
    box = {"ping": env.event(), "pong": env.event()}

    def pinger():
        for _ in range(N_EVENTS // 2):
            box["ping"].succeed()
            box["pong"] = env.event()
            yield box["pong"]

    def ponger():
        for _ in range(N_EVENTS // 2):
            yield box["ping"]
            box["ping"] = env.event()
            box["pong"].succeed()

    env.process(pinger())
    env.process(ponger())
    env.run()
    return env.now


def callback_fanout() -> int:
    """Timers with direct callbacks: the pure pop/dispatch loop."""
    env = Environment()
    counter = [0]

    def tick():
        counter[0] += 1

    for i in range(N_EVENTS):
        env.call_later(i, tick)
    env.run()
    return counter[0]


def test_timeout_churn(benchmark):
    assert benchmark(timeout_churn) == 3 * N_EVENTS


def test_event_ping_pong(benchmark):
    assert benchmark(event_ping_pong) == 0  # all at t=0


def test_callback_fanout(benchmark):
    assert benchmark(callback_fanout) == N_EVENTS
