"""Benchmark: regenerate Figure 3a (CPU slowdown from GPU SSRs)."""

from .conftest import BENCH_CPU_NAMES, BENCH_GPU_NAMES, BENCH_HORIZON_NS, run_and_render


def test_fig3a(benchmark):
    result = run_and_render(
        benchmark,
        "fig3a",
        cpu_names=BENCH_CPU_NAMES,
        gpu_names=BENCH_GPU_NAMES,
        horizon_ns=BENCH_HORIZON_NS,
    )
    # Shape: every bar at most ~1; the microbenchmark's column is the worst.
    ubench = [v for v in result.column("ubench") if isinstance(v, float)]
    assert all(v < 1.05 for v in ubench)
    assert result.cell("gmean", "ubench") < result.cell("gmean", "bfs")
    # raytrace is the least affected by the storm.
    assert result.cell("raytrace", "ubench") == max(ubench[:-1])
