"""Benchmark: regenerate Table I (SSR kinds and measured latencies)."""

from .conftest import run_and_render


def test_table1(benchmark):
    result = run_and_render(benchmark, "table1")
    kinds = [row[0] for row in result.rows]
    assert "page_fault" in kinds and "signal" in kinds
    # Signals are the cheapest SSR end to end (Table I: Low complexity).
    latencies = {row[0]: row[3] for row in result.rows}
    assert latencies["signal"] < latencies["page_fault"] < latencies["filesystem"]
