"""Benchmark: regenerate Figure 3b (GPU slowdown from busy CPUs)."""

from .conftest import BENCH_CPU_NAMES, BENCH_GPU_NAMES, BENCH_HORIZON_NS, run_and_render


def test_fig3b(benchmark):
    result = run_and_render(
        benchmark,
        "fig3b",
        cpu_names=BENCH_CPU_NAMES,
        gpu_names=BENCH_GPU_NAMES,
        horizon_ns=BENCH_HORIZON_NS,
    )
    # Blocking apps (sssp) lose to busy CPUs; overlapped ubench barely moves.
    assert result.cell("gmean", "sssp") < 0.98
    assert result.cell("gmean", "ubench") > 0.9
