"""Record a perf-trajectory snapshot: per-figure wall-clock -> JSON.

Writes ``BENCH_<git-sha>.json`` so the repo accumulates a comparable
performance history across commits::

    PYTHONPATH=src python benchmarks/record.py                    # full quick set
    PYTHONPATH=src python benchmarks/record.py --figures fig3a fig4 --jobs 4
    PYTHONPATH=src python benchmarks/record.py --figures fig3a --service

Each snapshot records the per-figure wall-clock of a cold run (in-memory
cache cleared first), the grid/horizon used, and the environment, plus the
prewarm split when ``--jobs`` enables the parallel engine.  With
``--service`` the figures are additionally served through an in-process
``HissService`` and the serving tier's stage latencies (queue wait, sim
time, end-to-end) land in the snapshot under ``service``.  Compare two
snapshots with a plain diff or jq.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone

from repro.core import clear_cache, configure_disk_cache, prewarm_experiments
from repro.experiments import run_experiment
from repro.experiments.common import QUICK_CPU_NAMES, QUICK_GPU_NAMES, UNPLANNABLE
from repro.experiments.run_all import DEFAULT_ORDER, _TAKES_CPU, _TAKES_GPU

#: Default simulated horizon for snapshot runs (matches the bench suite).
DEFAULT_HORIZON_MS = 15.0


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def figure_kwargs(experiment_id: str, horizon_ns: int) -> dict:
    kwargs = {}
    if experiment_id in _TAKES_CPU:
        kwargs["cpu_names"] = QUICK_CPU_NAMES
    if experiment_id in _TAKES_GPU:
        kwargs["gpu_names"] = [
            g for g in QUICK_GPU_NAMES if experiment_id != "fig8" or g != "ubench"
        ]
    if experiment_id != "table1":
        kwargs["horizon_ns"] = horizon_ns
    return kwargs


def record_profile_overhead(figure: str, kwargs_for) -> dict:
    """Time one figure's run set with attribution off, then on.

    Both passes simulate the same keys serially from a cold in-memory
    cache; the on-pass builds a fresh per-run
    :class:`~repro.profiling.Profiler` exactly like ``--profile`` does.
    The delta is the ledger/sampler bookkeeping — the number
    docs/observability.md quotes as the profiler's overhead.
    """
    from repro.core.experiment import simulate_run
    from repro.core.planner import plan_runs
    from repro.profiling import Profiler

    keys, skipped = plan_runs([figure], kwargs_for, unplannable=UNPLANNABLE)
    if not keys:
        return {"figure": figure, "runs": 0, "skipped": skipped}
    clear_cache()
    start = time.time()
    for key in keys:
        simulate_run(key)
    off_s = time.time() - start
    clear_cache()
    start = time.time()
    for key in keys:
        simulate_run(key, profiler=Profiler())
    on_s = time.time() - start
    clear_cache()
    doc = {
        "figure": figure,
        "runs": len(keys),
        "profiler_off_s": round(off_s, 3),
        "profiler_on_s": round(on_s, 3),
    }
    if off_s > 0:
        doc["overhead_pct"] = round(100.0 * (on_s - off_s) / off_s, 1)
    print(
        f"profile overhead ({figure}, {len(keys)} runs): "
        f"off {off_s:.2f}s, on {on_s:.2f}s"
        + (f" (+{doc['overhead_pct']:.1f}%)" if "overhead_pct" in doc else "")
    )
    return doc


def record_pool_probe(client, figure: str, args) -> dict:
    """Cold-vs-warm batch latency through the serving tier's worker pool.

    Submits the same figure twice with every cache level emptied between
    rounds, so both batches simulate identical work — the only difference
    is that the first pays worker start-up (the pool spawns) while the
    second lands on already-warm workers.  The spawned-worker delta of
    the warm round must be zero; the e2e gap is the cost the warm pool
    retired.
    """
    from repro.core import shared_pool_stats
    from repro.core.experiment import get_disk_cache, set_disk_cache

    # A persistent cache would serve the warm round without simulating;
    # detach it so both rounds execute the same runs.
    saved_disk = get_disk_cache()
    set_disk_cache(None)
    rounds = {}
    try:
        for phase in ("cold", "warm"):
            clear_cache()
            body = client.submit_with_backoff(
                [figure], quick=True, horizon_ms=args.horizon_ms
            )
            job_id = body["job"]["id"]
            status = client.wait(job_id, timeout_s=1800)
            trace = client.trace(job_id)
            root = next(
                span for span in trace["spans"] if span["span_id"] == "root"
            )
            stats = shared_pool_stats()
            rounds[phase] = {
                "e2e_s": round(root["duration_s"], 4),
                "runs_executed": status["runs_executed"],
                "spawned_workers": stats["spawned_workers"],
                "warm_hits": stats["warm_hits"],
            }
            # Evict so the next round is not served by job-level dedupe.
            client.evict(job_id)
    finally:
        set_disk_cache(saved_disk)
        clear_cache()
    cold, warm = rounds["cold"], rounds["warm"]
    doc = {
        "figure": figure,
        "cold": cold,
        "warm": warm,
        "workers_spawned_by_warm_batch": (
            warm["spawned_workers"] - cold["spawned_workers"]
        ),
    }
    if warm["e2e_s"] > 0:
        doc["cold_over_warm"] = round(cold["e2e_s"] / warm["e2e_s"], 3)
    print(
        f"pool probe ({figure}): cold {cold['e2e_s']:.2f}s, "
        f"warm {warm['e2e_s']:.2f}s, warm batch spawned "
        f"{doc['workers_spawned_by_warm_batch']:g} worker(s)"
    )
    return doc


def record_flight_overhead(events: int = 20_000) -> dict:
    """Time the ops-log hot path with the flight recorder off, then on.

    Both passes push the same synthetic event stream through an
    ``OpsLog`` with no stream attached — the disabled pass is the
    daemon's default (one attribute check per record and out), the
    enabled pass tees every record into a :class:`FlightRecorder` ring
    with the standard trigger set (no SLO alerts fire, so this is pure
    observe/append cost).  The delta is the number
    docs/observability.md quotes as the recorder's always-on overhead.
    """
    from repro.flight import FlightRecorder, default_triggers
    from repro.service.obs import OpsLog

    log = OpsLog(None)
    start = time.perf_counter()
    for index in range(events):
        log.log("job.started", job=f"job-{index:06d}", batch_jobs=4)
    off_s = time.perf_counter() - start

    recorder = FlightRecorder(store=None, triggers=default_triggers())
    log.tee = recorder.observe
    start = time.perf_counter()
    for index in range(events):
        log.log("job.started", job=f"job-{index:06d}", batch_jobs=4)
    on_s = time.perf_counter() - start
    log.tee = None

    doc = {
        "events": events,
        "recorder_off_ns_per_event": round(off_s / events * 1e9, 1),
        "recorder_on_ns_per_event": round(on_s / events * 1e9, 1),
        "ring_entries": len(recorder.ring),
        "ring_decimations": recorder.ring.decimations,
    }
    print(
        f"flight overhead ({events} events): off "
        f"{doc['recorder_off_ns_per_event']:.0f}ns/event, on "
        f"{doc['recorder_on_ns_per_event']:.0f}ns/event "
        f"({recorder.ring.decimations} decimations)"
    )
    return doc


def record_sweep(args) -> dict:
    """Cold-vs-warm autotuner sweep pair: evaluations/sec and cache traffic.

    Runs the same small ``repro.search`` sweep twice against one private
    disk cache: the cold pass simulates everything, the warm pass (fresh
    in-memory cache, same seed and budget) must be served entirely from
    disk.  The snapshot records evaluations/sec for both passes and the
    warm pass's cache-served fraction — the number that should stay at
    1.0 as the subsystem evolves.
    """
    import shutil
    import tempfile

    from repro.core.experiment import get_disk_cache, set_disk_cache
    from repro.core.runcache import DiskCache
    from repro.search import SweepDriver, SweepSettings, default_space

    saved_disk = get_disk_cache()
    workdir = tempfile.mkdtemp(prefix="hiss-sweep-bench-")
    settings = SweepSettings(
        seed=17,
        budget=8,
        round_size=4,
        strategy="evolve",
        horizon_ns=int(args.horizon_ms * 1_000_000),
        jobs=args.jobs,
    )
    phases = {}
    try:
        set_disk_cache(DiskCache(os.path.join(workdir, "cache")))
        for phase in ("cold", "warm"):
            clear_cache()
            driver = SweepDriver(
                default_space(), settings,
                state_path=os.path.join(workdir, f"{phase}.jsonl"),
            )
            start = time.time()
            result = driver.run()
            elapsed = time.time() - start
            served_total = result.simulations + result.cache_served
            phases[phase] = {
                "elapsed_s": round(elapsed, 3),
                "evaluations": result.evaluations,
                "rounds": result.rounds,
                "simulations": result.simulations,
                "cache_served": result.cache_served,
                "frontier_size": result.frontier_size,
                "evals_per_s": (
                    round(result.evaluations / elapsed, 2) if elapsed > 0 else 0.0
                ),
                "cache_served_fraction": (
                    round(result.cache_served / served_total, 3)
                    if served_total else 0.0
                ),
            }
            print(
                f"sweep {phase}: {result.evaluations} evals in {elapsed:.2f}s "
                f"({phases[phase]['evals_per_s']:.1f}/s), "
                f"simulated {result.simulations}, "
                f"cache-served {result.cache_served}"
            )
    finally:
        set_disk_cache(saved_disk)
        clear_cache()
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "seed": settings.seed,
        "budget": settings.budget,
        "round_size": settings.round_size,
        "strategy": settings.strategy,
        "horizon_ms": args.horizon_ms,
        "jobs": settings.jobs,
        "cold": phases["cold"],
        "warm": phases["warm"],
    }


def record_service(figures, args) -> dict:
    """Serve ``figures`` through an in-process daemon; return its latencies.

    Each figure is one job over real HTTP (so the measured end-to-end
    includes receive/plan/queue/render, exactly what a client sees), run
    against a fresh cache so the sim-time numbers are cold like the CLI
    figures above them.  The first figure is additionally submitted
    cold-then-warm to measure what the resident pool saves
    (see :func:`record_pool_probe`).
    """
    from repro.core import configure_pool, shutdown_shared_pool
    from repro.service import HissService, ServiceClient
    from repro.service.obs import LATENCY_HISTOGRAMS

    clear_cache()
    doc: dict = {"jobs": {}}
    # At least two workers so batches actually use the pool, and `spawn`
    # workers so the start-up cost the warm pool retires is the real
    # thing (interpreter boot + full import), not a fork's copy-on-write
    # discount.
    service_jobs = args.jobs if args.jobs and args.jobs != 1 else 2
    shutdown_shared_pool()
    configure_pool(start_method="spawn")
    with HissService(port=0, jobs=service_jobs, qos_threshold=10.0) as svc:
        client = ServiceClient(svc.url, timeout_s=60)
        doc["pool"] = record_pool_probe(client, figures[0], args)
        for experiment_id in figures:
            body = client.submit_with_backoff(
                [experiment_id], quick=True, horizon_ms=args.horizon_ms
            )
            job_id = body["job"]["id"]
            status = client.wait(job_id, timeout_s=1800)
            trace = client.trace(job_id)
            stages = {
                span["span_id"]: round(span["duration_s"], 4)
                for span in trace["spans"]
                if span["span_id"] in ("submit", "queue", "batch", "render", "root")
            }
            doc["jobs"][experiment_id] = {
                "state": status["state"],
                "planned_runs": status["planned_runs"],
                "runs_executed": status["runs_executed"],
                "stages_s": stages,
            }
            print(f"service {experiment_id}: e2e {stages.get('root', 0.0):.2f}s")
        histograms = svc.metrics.histograms
        for label, name in LATENCY_HISTOGRAMS:
            histogram = histograms.get(name)
            if histogram is None:
                continue
            summary = histogram.summary()
            doc[label] = {
                "count": summary["count"],
                "p50_s": round(summary["percentiles"]["p50"], 4),
                "p95_s": round(summary["percentiles"]["p95"], 4),
                "p99_s": round(summary["percentiles"]["p99"], 4),
                "max_s": round(summary["max"], 4),
            }
    shutdown_shared_pool()
    clear_cache()
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--figures", nargs="*", default=None,
        help=f"experiment ids to time (default: {' '.join(DEFAULT_ORDER)})",
    )
    parser.add_argument(
        "--horizon-ms", type=float, default=DEFAULT_HORIZON_MS,
        help="simulated horizon per run in milliseconds",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="fan simulations out over N workers first (0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="optional persistent run cache (see docs/performance.md)",
    )
    parser.add_argument(
        "--output-dir", default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "trajectory"),
        help="directory receiving BENCH_<sha>.json",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="also serve the figures through an in-process HissService and "
        "record its stage latencies (queue_wait/sim/e2e)",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="also run a cold-vs-warm repro.search sweep pair and record "
        "evaluations/sec plus the warm pass's cache-served fraction "
        "(given alone, skips the figure timings)",
    )
    parser.add_argument(
        "--profile-figure", default="fig4", metavar="ID",
        help="figure whose runs are timed profiler-off vs profiler-on "
        "(empty string skips the comparison)",
    )
    args = parser.parse_args(argv)

    if args.sweep and args.figures is None:
        figures = []  # sweep-only snapshot: skip the figure timings
        args.profile_figure = ""
    else:
        figures = args.figures or list(DEFAULT_ORDER)
    horizon_ns = int(args.horizon_ms * 1_000_000)
    kwargs_for = lambda eid: figure_kwargs(eid, horizon_ns)  # noqa: E731

    clear_cache()
    configure_disk_cache(args.cache_dir)

    snapshot = {
        "sha": git_sha(),
        "recorded_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "horizon_ms": args.horizon_ms,
        "quick_grid": {"cpu": QUICK_CPU_NAMES, "gpu": QUICK_GPU_NAMES},
        "figures": {},
    }

    total_start = time.time()
    if args.jobs != 1:
        report = prewarm_experiments(
            figures, kwargs_for, jobs=args.jobs, unplannable=UNPLANNABLE
        )
        snapshot["prewarm"] = {
            "planned": report.planned,
            "memory_hits": report.memory_hits,
            "disk_hits": report.disk_hits,
            "executed": report.executed,
            "workers": report.workers,
            "plan_s": round(report.plan_s, 3),
            "execute_s": round(report.execute_s, 3),
            "predicted_core_s": round(report.predicted_core_s, 3),
            "failed": len(report.failed),
        }
        if report.pool:
            snapshot["prewarm"]["pool"] = report.pool
        print(report.summary())
    for experiment_id in figures:
        result = run_experiment(experiment_id, **kwargs_for(experiment_id))
        snapshot["figures"][experiment_id] = round(result.elapsed_s, 3)
        print(f"{experiment_id}: {result.elapsed_s:.2f}s")
    snapshot["total_s"] = round(time.time() - total_start, 3)

    if args.profile_figure:
        snapshot["profile_overhead"] = record_profile_overhead(
            args.profile_figure, kwargs_for
        )
        snapshot["flight_overhead"] = record_flight_overhead()

    if args.sweep:
        snapshot["sweep"] = record_sweep(args)

    if args.service:
        snapshot["service"] = record_service(figures, args)

    os.makedirs(args.output_dir, exist_ok=True)
    path = os.path.join(args.output_dir, f"BENCH_{snapshot['sha']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path} (total {snapshot['total_s']:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
