"""Benchmark: regenerate Figure 12 (QoS throttling panels)."""

from .conftest import BENCH_CPU_NAMES, BENCH_HORIZON_NS, run_and_render


def test_fig12a_cpu(benchmark):
    result = run_and_render(
        benchmark, "fig12a", cpu_names=BENCH_CPU_NAMES, horizon_ns=BENCH_HORIZON_NS
    )
    # Tighter thresholds recover CPU performance monotonically.
    gmean = [result.cell("gmean", c) for c in ("default", "th_5", "th_1")]
    assert gmean[0] < gmean[1] < gmean[2]
    assert gmean[2] > 0.85


def test_fig12b_gpu(benchmark):
    result = run_and_render(
        benchmark, "fig12b", cpu_names=BENCH_CPU_NAMES, horizon_ns=BENCH_HORIZON_NS
    )
    gmean = [result.cell("gmean", c) for c in ("default", "th_5", "th_1")]
    # ...at the cost of accelerator throughput.
    assert gmean[0] > gmean[1] > gmean[2]
    assert gmean[2] < 0.3
