"""Benchmark: regenerate Figure 9 (CC6 under mitigation combinations)."""

from .conftest import run_and_render


def test_fig9(benchmark):
    result = run_and_render(benchmark, "fig9", horizon_ns=20_000_000)
    cc6 = {row[0]: row[1] for row in result.rows}
    assert cc6["ubench_no_SSR"] > 75.0
    assert cc6["Default"] < 15.0
    # Steering and the monolithic handler both restore substantial sleep.
    assert cc6["Intr_to_single_core"] > 40.0
    assert cc6["Monolithic_bottom_half"] > 40.0
    # Coalescing alone barely helps (paper Section V-E).
    assert cc6["Intr_coalescing"] < 20.0
