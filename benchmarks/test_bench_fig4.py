"""Benchmark: regenerate Figure 4 (CC6 residency with/without SSRs)."""

from .conftest import BENCH_HORIZON_NS, run_and_render


def test_fig4(benchmark):
    result = run_and_render(benchmark, "fig4", horizon_ns=20_000_000)
    # Baseline ~86%; ubench nearly eliminates sleep; bfs loses the least.
    assert result.cell("ubench", "no_SSR") > 75.0
    assert result.cell("ubench", "gpu_SSR") < 15.0
    losses = {row[0]: row[3] for row in result.rows}
    assert losses["bfs"] == min(losses.values())
