"""Benchmarks: the ablation sweeps (design-choice sensitivity)."""

from .conftest import BENCH_HORIZON_NS, run_and_render


def test_sweep_coalesce(benchmark):
    result = run_and_render(
        benchmark, "sweep_coalesce", windows_us=[0, 13, 52],
        horizon_ns=BENCH_HORIZON_NS,
    )
    latency = result.column("sssp_latency_us")
    assert latency[0] < latency[-1]


def test_sweep_outstanding(benchmark):
    result = run_and_render(
        benchmark, "sweep_outstanding", limits=[1, 8, 32],
        horizon_ns=BENCH_HORIZON_NS,
    )
    rates = result.column("ubench_ssrs_per_s")
    assert rates[0] < rates[-1]


def test_sweep_dispatch(benchmark):
    result = run_and_render(
        benchmark, "sweep_dispatch", latencies_us=[0, 18, 72],
        horizon_ns=BENCH_HORIZON_NS,
    )
    gains = result.column("monolithic_gain")
    assert gains == sorted(gains)


def test_sweep_qos(benchmark):
    result = run_and_render(
        benchmark, "sweep_qos", thresholds=[0.05, 0.01],
        horizon_ns=BENCH_HORIZON_NS,
    )
    cpu = result.column("cpu_perf")
    assert cpu[0] < cpu[2]  # off < th_1
