"""Benchmark: regenerate Figure 8 (Pareto chart, real GPU apps)."""

from .conftest import BENCH_CPU_NAMES, BENCH_HORIZON_NS, run_and_render


def test_fig8(benchmark):
    result = run_and_render(
        benchmark,
        "fig8",
        cpu_names=BENCH_CPU_NAMES,
        gpu_names=["bpt", "sssp", "xsbench"],
        horizon_ns=BENCH_HORIZON_NS,
    )
    by_label = {row[0]: row for row in result.rows}
    # Monolithic dominates the default on GPU performance.
    assert by_label["Monolithic_bottom_half"][2] > by_label["Default"][2]
