"""Benchmark: regenerate Figure 6 (the three mitigations in isolation)."""

from .conftest import BENCH_CPU_NAMES, BENCH_HORIZON_NS, run_and_render

GPU_SET = ["bfs", "sssp", "ubench"]


def test_fig6a_steering_cpu(benchmark):
    result = run_and_render(
        benchmark, "fig6a", cpu_names=BENCH_CPU_NAMES, gpu_names=GPU_SET,
        horizon_ns=BENCH_HORIZON_NS,
    )
    # Steering contains the microbenchmark's storm (CPU side improves).
    assert result.cell("gmean", "ubench") > 1.0


def test_fig6b_steering_gpu(benchmark):
    result = run_and_render(
        benchmark, "fig6b", cpu_names=BENCH_CPU_NAMES, gpu_names=GPU_SET,
        horizon_ns=BENCH_HORIZON_NS,
    )
    assert 0.5 < result.cell("gmean", "sssp") < 1.2


def test_fig6c_coalescing_cpu(benchmark):
    result = run_and_render(
        benchmark, "fig6c", cpu_names=BENCH_CPU_NAMES, gpu_names=GPU_SET,
        horizon_ns=BENCH_HORIZON_NS,
    )
    assert result.cell("gmean", "ubench") > 0.95


def test_fig6d_coalescing_gpu(benchmark):
    result = run_and_render(
        benchmark, "fig6d", cpu_names=BENCH_CPU_NAMES, gpu_names=GPU_SET,
        horizon_ns=BENCH_HORIZON_NS,
    )
    # Coalescing delays the blocking app's SSRs (paper: up to -50%).
    assert result.cell("gmean", "sssp") < 1.0


def test_fig6e_monolithic_cpu(benchmark):
    result = run_and_render(
        benchmark, "fig6e", cpu_names=BENCH_CPU_NAMES, gpu_names=GPU_SET,
        horizon_ns=BENCH_HORIZON_NS,
    )
    assert 0.5 < result.cell("gmean", "ubench") < 1.3


def test_fig6f_monolithic_gpu(benchmark):
    result = run_and_render(
        benchmark, "fig6f", cpu_names=BENCH_CPU_NAMES, gpu_names=GPU_SET,
        horizon_ns=BENCH_HORIZON_NS,
    )
    # The monolithic handler speeds up the blocking GPU app.
    assert result.cell("gmean", "sssp") > 1.0
