"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures through the
experiment registry and reports the wall-clock cost of doing so.  The
figures themselves (the reproduced rows/series) are printed so a benchmark
run doubles as a results run — see EXPERIMENTS.md for the paper-vs-measured
comparison.

Experiment runs are memoized process-wide, so each benchmark executes with
``rounds=1`` via ``benchmark.pedantic`` (re-running would only measure the
cache).  The grid sizes are trimmed to keep the whole suite around a
coffee-break; pass full workload lists through the experiment API for the
complete grids.
"""

import pytest

import repro.experiments  # noqa: F401 - populate the registry
from repro.experiments import run_experiment
from repro.experiments.common import QUICK_CPU_NAMES, QUICK_GPU_NAMES

#: Horizon for benchmark runs (simulated ns).
BENCH_HORIZON_NS = 15_000_000

#: CPU/GPU grids used by the heavyweight figures.
BENCH_CPU_NAMES = QUICK_CPU_NAMES
BENCH_GPU_NAMES = QUICK_GPU_NAMES


def run_and_render(benchmark, experiment_id, **kwargs):
    """Run one experiment under the benchmark timer and print its table."""
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, **kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
