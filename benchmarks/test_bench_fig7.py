"""Benchmark: regenerate Figure 7 (Pareto chart, microbenchmark)."""

from .conftest import BENCH_CPU_NAMES, BENCH_HORIZON_NS, run_and_render


def test_fig7(benchmark):
    result = run_and_render(
        benchmark, "fig7", cpu_names=BENCH_CPU_NAMES, horizon_ns=BENCH_HORIZON_NS
    )
    optimal = {row[0] for row in result.rows if row[3] == "yes"}
    # The paper's key observation: the default is not Pareto optimal.
    assert "Default" not in optimal
    assert optimal, "some combination must be on the frontier"
