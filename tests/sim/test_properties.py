"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Store


@st.composite
def delay_lists(draw):
    return draw(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=40))


class TestEventOrdering:
    @given(delays=delay_lists())
    @settings(max_examples=60, deadline=None)
    def test_timeouts_fire_in_nondecreasing_time_order(self, delays):
        env = Environment()
        fired = []
        for delay in delays:
            timeout = env.timeout(delay)
            timeout.callbacks.append(lambda e, d=delay: fired.append((env.now, d)))
        env.run()
        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert sorted(d for _, d in fired) == sorted(delays)

    @given(delays=delay_lists())
    @settings(max_examples=60, deadline=None)
    def test_same_delay_preserves_creation_order(self, delays):
        env = Environment()
        fired = []
        for index, _ in enumerate(delays):
            timeout = env.timeout(100)  # all at the same instant
            timeout.callbacks.append(lambda e, i=index: fired.append(i))
        env.run()
        assert fired == list(range(len(delays)))

    @given(delays=delay_lists())
    @settings(max_examples=40, deadline=None)
    def test_clock_never_goes_backwards(self, delays):
        env = Environment()
        observed = []
        for delay in delays:
            env.timeout(delay).callbacks.append(lambda e: observed.append(env.now))
        env.run()
        assert all(b >= a for a, b in zip(observed, observed[1:]))


class TestProcessJoinAlgebra:
    @given(delays=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_all_of_completes_at_max_delay(self, delays):
        env = Environment()
        condition = env.all_of([env.timeout(d) for d in delays])
        done_at = []
        condition.callbacks.append(lambda e: done_at.append(env.now))
        env.run()
        assert done_at == [max(delays)]

    @given(delays=st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_any_of_completes_at_min_delay(self, delays):
        env = Environment()
        condition = env.any_of([env.timeout(d) for d in delays])
        done_at = []
        condition.callbacks.append(lambda e: done_at.append(env.now))
        env.run()
        assert done_at[0] == min(delays)


class TestStoreConservation:
    @given(
        items=st.lists(st.integers(), min_size=1, max_size=30),
        capacity=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_everything_put_is_got_in_order(self, items, capacity):
        env = Environment()
        store = Store(env, capacity=capacity)
        received = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                value = yield store.get()
                received.append(value)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == items
        assert len(store) == 0

    @given(
        items=st.lists(st.integers(), min_size=1, max_size=20),
        capacity=st.integers(min_value=1, max_value=4),
        consumer_period=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, items, capacity, consumer_period):
        env = Environment()
        store = Store(env, capacity=capacity)
        max_seen = 0

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            nonlocal max_seen
            for _ in items:
                yield env.timeout(consumer_period)
                max_seen = max(max_seen, len(store))
                yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert max_seen <= capacity
