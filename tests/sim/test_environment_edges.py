"""Edge-case tests for the environment and engine error paths."""

import pytest

from repro.sim import EmptySchedule, Environment


class TestEmptySchedule:
    def test_step_on_empty_raises(self):
        with pytest.raises(EmptySchedule):
            Environment().step()

    def test_run_on_empty_is_noop(self):
        env = Environment()
        env.run()
        assert env.now == 0

    def test_peek_empty(self):
        assert Environment().peek() is None

    def test_peek_returns_next_time(self):
        env = Environment()
        env.timeout(50)
        env.timeout(10)
        assert env.peek() == 10


class TestRunUntilEvent:
    def test_dry_schedule_raises(self):
        env = Environment()
        with pytest.raises(RuntimeError, match="ran dry"):
            env.run_until_event(env.event())

    def test_failed_event_raises_its_exception(self):
        env = Environment()
        target = env.event()
        env.call_later(5, lambda: target.fail(KeyError("why")))
        with pytest.raises(KeyError):
            env.run_until_event(target)

    def test_limit_leaves_event_pending(self):
        env = Environment()
        target = env.timeout(1_000)
        with pytest.raises(TimeoutError):
            env.run_until_event(target, limit=10)
        assert not target.processed


class TestInitialTime:
    def test_nonzero_start(self):
        env = Environment(initial_time=500)
        fired = []
        env.timeout(10).callbacks.append(lambda e: fired.append(env.now))
        env.run()
        assert fired == [510]


class TestCallLaterOrdering:
    def test_callbacks_fire_in_registration_order_at_same_instant(self):
        env = Environment()
        order = []
        env.call_later(10, lambda: order.append("a"))
        env.call_later(10, lambda: order.append("b"))
        env.run()
        assert order == ["a", "b"]
