"""Unit tests for generator-driven processes."""

import pytest

from repro.sim import Environment, Interrupt


@pytest.fixture
def env():
    return Environment()


class TestProcessBasics:
    def test_runs_and_returns_value(self, env):
        def worker():
            yield env.timeout(10)
            return "done"

        proc = env.process(worker())
        env.run()
        assert proc.value == "done"
        assert not proc.is_alive

    def test_receives_event_values(self, env):
        def worker():
            value = yield env.timeout(3, value="abc")
            return value

        proc = env.process(worker())
        env.run()
        assert proc.value == "abc"

    def test_join_another_process(self, env):
        def child():
            yield env.timeout(20)
            return 7

        def parent():
            result = yield env.process(child())
            return result + 1

        proc = env.process(parent())
        env.run()
        assert proc.value == 8
        assert env.now == 20

    def test_yield_already_processed_event_resumes_immediately(self, env):
        done = env.event()
        done.succeed("early")

        def worker():
            env_time_before = env.now
            yield env.timeout(5)  # let `done` get processed first
            value = yield done
            return (value, env.now - env_time_before)

        proc = env.process(worker())
        env.run()
        assert proc.value == ("early", 5)

    def test_exception_in_process_fails_it(self, env):
        def worker():
            yield env.timeout(1)
            raise KeyError("inside")

        proc = env.process(worker())
        proc.defuse()
        env.run()
        assert not proc.ok
        assert isinstance(proc.value, KeyError)

    def test_failed_event_raises_at_yield(self, env):
        trigger = env.event()

        def worker():
            try:
                yield trigger
            except RuntimeError as exc:
                return f"caught {exc}"

        proc = env.process(worker())
        env.call_later(5, lambda: trigger.fail(RuntimeError("bad")))
        env.run()
        assert proc.value == "caught bad"

    def test_yield_non_event_raises_typeerror_inside(self, env):
        def worker():
            try:
                yield 42
            except TypeError:
                return "typed"

        proc = env.process(worker())
        env.run()
        assert proc.value == "typed"

    def test_wait_on_self_rejected(self, env):
        holder = {}

        def worker():
            try:
                yield holder["proc"]
            except ValueError:
                return "self-wait rejected"

        holder["proc"] = env.process(worker())
        env.run()
        assert holder["proc"].value == "self-wait rejected"

    def test_two_processes_interleave(self, env):
        log = []

        def ticker(name, period):
            for _ in range(3):
                yield env.timeout(period)
                log.append((env.now, name))

        env.process(ticker("a", 10))
        env.process(ticker("b", 15))
        env.run()
        # At t=30 both fire; b's timeout was scheduled earlier (at t=15 vs
        # t=20), so FIFO tie-breaking processes b first.
        assert log == [
            (10, "a"),
            (15, "b"),
            (20, "a"),
            (30, "b"),
            (30, "a"),
            (45, "b"),
        ]


class TestInterrupts:
    def test_interrupt_wakes_sleeper(self, env):
        def sleeper():
            try:
                yield env.timeout(1000)
                return "slept"
            except Interrupt as exc:
                return ("interrupted", exc.cause, env.now)

        proc = env.process(sleeper())
        env.call_later(40, lambda: proc.interrupt("wake"))
        env.run()
        assert proc.value == ("interrupted", "wake", 40)

    def test_interrupt_dead_process_is_noop(self, env):
        def quick():
            yield env.timeout(1)

        proc = env.process(quick())
        env.run()
        proc.interrupt("too late")
        env.run()
        assert proc.ok

    def test_interrupted_target_event_survives(self, env):
        """The event a process was waiting on can be re-awaited afterwards."""
        target = env.timeout(100, value="eventually")

        def waiter():
            try:
                yield target
            except Interrupt:
                pass
            value = yield target
            return (value, env.now)

        proc = env.process(waiter())
        env.call_later(10, lambda: proc.interrupt())
        env.run()
        assert proc.value == ("eventually", 100)

    def test_unhandled_interrupt_fails_process(self, env):
        def oblivious():
            yield env.timeout(1000)

        proc = env.process(oblivious())
        proc.defuse()
        env.call_later(5, lambda: proc.interrupt("boom"))
        env.run()
        assert not proc.ok

    def test_multiple_interrupts_all_delivered(self, env):
        causes = []

        def resilient():
            for _ in range(2):
                try:
                    yield env.timeout(1000)
                except Interrupt as exc:
                    causes.append(exc.cause)
            return causes

        proc = env.process(resilient())
        env.call_later(5, lambda: proc.interrupt("first"))
        env.call_later(6, lambda: proc.interrupt("second"))
        env.run()
        assert proc.value == ["first", "second"]

    def test_interrupt_beats_simultaneous_timeout(self, env):
        """An interrupt scheduled for the same instant as the target timeout
        is delivered first (URGENT priority)."""

        def sleeper():
            try:
                yield env.timeout(50)
                return "timeout won"
            except Interrupt:
                return "interrupt won"

        proc = env.process(sleeper())
        env.call_later(50, lambda: proc.interrupt())
        # call_later itself runs at t=50 with NORMAL priority, after the
        # timeout fires but before the process resumes...  The interrupt
        # event is URGENT, but the timeout was queued first.  Either way the
        # process must see a consistent, non-crashing outcome.
        env.run()
        assert proc.value in ("timeout won", "interrupt won")
        assert proc.ok


class TestEnvironmentHelpers:
    def test_call_at(self, env):
        ticks = []
        env.call_at(30, lambda: ticks.append(env.now))
        env.run()
        assert ticks == [30]

    def test_call_at_past_raises(self, env):
        env.run(until=10)
        with pytest.raises(ValueError):
            env.call_at(5, lambda: None)

    def test_run_until_event(self, env):
        def worker():
            yield env.timeout(12)
            return "w"

        proc = env.process(worker())
        assert env.run_until_event(proc) == "w"
        assert env.now == 12

    def test_run_until_event_limit(self, env):
        def worker():
            yield env.timeout(1000)

        proc = env.process(worker())
        with pytest.raises(TimeoutError):
            env.run_until_event(proc, limit=10)

    def test_run_advances_clock_to_until(self, env):
        env.run(until=500)
        assert env.now == 500

    def test_run_until_past_raises(self, env):
        env.run(until=100)
        with pytest.raises(ValueError):
            env.run(until=50)
