"""Unit tests for stores and resources (backpressure primitives)."""

import pytest

from repro.sim import Environment, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestStoreBasics:
    def test_put_then_get(self, env):
        store = Store(env)

        def producer():
            yield store.put("item")

        def consumer():
            value = yield store.get()
            return value

        env.process(producer())
        proc = env.process(consumer())
        env.run()
        assert proc.value == "item"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def consumer():
            value = yield store.get()
            return (value, env.now)

        def producer():
            yield env.timeout(25)
            yield store.put("late")

        proc = env.process(consumer())
        env.process(producer())
        env.run()
        assert proc.value == ("late", 25)

    def test_fifo_ordering(self, env):
        store = Store(env)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                value = yield store.get()
                got.append(value)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [0, 1, 2]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestBoundedStoreBackpressure:
    def test_put_blocks_when_full(self, env):
        store = Store(env, capacity=2)
        times = []

        def producer():
            for i in range(4):
                yield store.put(i)
                times.append(env.now)

        def slow_consumer():
            while True:
                yield env.timeout(100)
                yield store.get()

        env.process(producer())
        env.process(slow_consumer())
        env.run(until=500)
        # First two puts complete immediately; the rest wait for drains.
        assert times == [0, 0, 100, 200]

    def test_is_full_and_counters(self, env):
        store = Store(env, capacity=1)
        store.put("a")
        env.run(until=0)
        assert store.is_full
        store.put("b")  # pends
        assert store.pending_puts == 1
        store.get()
        env.run(until=0)
        assert store.pending_puts == 0
        assert len(store) == 1

    def test_try_put_respects_capacity(self, env):
        store = Store(env, capacity=1)
        assert store.try_put("a")
        assert not store.try_put("b")

    def test_try_get(self, env):
        store = Store(env)
        ok, item = store.try_get()
        assert not ok and item is None
        store.put("x")
        ok, item = store.try_get()
        assert ok and item == "x"

    def test_cancel_pending_get(self, env):
        store = Store(env)
        event = store.get()
        assert store.cancel(event)
        store.put("x")
        env.run()
        assert len(store) == 1  # not consumed by the cancelled getter

    def test_cancel_pending_put(self, env):
        store = Store(env, capacity=1)
        store.put("a")
        pending = store.put("b")
        assert store.cancel(pending)
        store.get()
        env.run()
        assert len(store) == 0  # "b" never entered

    def test_cancel_satisfied_event_returns_false(self, env):
        store = Store(env)
        done = store.put("a")
        assert not store.cancel(done)

    def test_drain(self, env):
        store = Store(env, capacity=2)
        store.put(1)
        store.put(2)
        blocked = store.put(3)
        assert store.drain() == [1, 2]
        env.run()
        assert blocked.triggered  # drain freed space
        assert list(store.items) == [3]


class TestResource:
    def test_mutual_exclusion(self, env):
        lock = Resource(env, capacity=1)
        log = []

        def user(name, hold):
            yield lock.request()
            log.append((env.now, name, "acquire"))
            yield env.timeout(hold)
            log.append((env.now, name, "release"))
            lock.release()

        env.process(user("a", 10))
        env.process(user("b", 10))
        env.run()
        assert log == [
            (0, "a", "acquire"),
            (10, "a", "release"),
            (10, "b", "acquire"),
            (20, "b", "release"),
        ]

    def test_counting_capacity(self, env):
        pool = Resource(env, capacity=2)
        pool.request()
        pool.request()
        assert pool.available == 0
        third = pool.request()
        assert not third.triggered
        pool.release()
        assert third.triggered

    def test_release_without_request_raises(self, env):
        with pytest.raises(RuntimeError):
            Resource(env).release()

    def test_cancel_pending_request(self, env):
        lock = Resource(env, capacity=1)
        lock.request()
        pending = lock.request()
        assert lock.cancel(pending)
        lock.release()
        assert lock.available == 1

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)
