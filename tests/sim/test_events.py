"""Unit tests for the core event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_new_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(RuntimeError):
            env.event().value

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(RuntimeError):
            env.event().ok

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_double_succeed_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        env.run()
        assert seen == ["payload"]
        assert event.processed

    def test_unhandled_failure_propagates(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_is_silent(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        event.defuse()
        env.run()
        assert not event.ok


class TestTimeout:
    def test_fires_at_delay(self, env):
        fired_at = []
        timeout = env.timeout(100)
        timeout.callbacks.append(lambda e: fired_at.append(env.now))
        env.run()
        assert fired_at == [100]

    def test_carries_value(self, env):
        timeout = env.timeout(5, value="v")
        env.run()
        assert timeout.value == "v"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_fires_now(self, env):
        times = []
        env.timeout(0).callbacks.append(lambda e: times.append(env.now))
        env.run()
        assert times == [0]

    def test_ordering_is_fifo_at_same_time(self, env):
        order = []
        for tag in "abc":
            timeout = env.timeout(10)
            timeout.callbacks.append(lambda e, t=tag: order.append(t))
        env.run()
        assert order == ["a", "b", "c"]


class TestAnyOf:
    def test_first_event_wins(self, env):
        fast = env.timeout(5, value="fast")
        slow = env.timeout(50, value="slow")
        cond = env.any_of([fast, slow])
        env.run()
        assert cond.value is fast

    def test_already_triggered_event(self, env):
        event = env.event()
        event.succeed("x")
        cond = env.any_of([event, env.timeout(100)])
        env.run(until=1)
        assert cond.triggered
        assert cond.value is event

    def test_empty_rejected(self, env):
        with pytest.raises(ValueError):
            env.any_of([])

    def test_failed_subevent_is_reported_not_raised(self, env):
        bad = env.event()
        cond = env.any_of([bad, env.timeout(100)])
        bad.fail(RuntimeError("inner"))
        env.run(until=1)
        assert cond.value is bad
        assert not bad.ok


class TestAllOf:
    def test_waits_for_all(self, env):
        t1 = env.timeout(5)
        t2 = env.timeout(50)
        cond = env.all_of([t1, t2])
        done_at = []
        cond.callbacks.append(lambda e: done_at.append(env.now))
        env.run()
        assert done_at == [50]
        assert cond.value == [t1, t2]

    def test_empty_succeeds_immediately(self, env):
        cond = env.all_of([])
        env.run()
        assert cond.triggered and cond.ok

    def test_failure_fails_condition(self, env):
        bad = env.event()
        cond = env.all_of([bad, env.timeout(10)])
        cond.defuse()
        bad.fail(RuntimeError("inner"))
        env.run()
        assert not cond.ok
