"""Unit tests for deterministic named RNG streams."""

from repro.sim import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "gpu") == derive_seed(42, "gpu")

    def test_name_sensitivity(self):
        assert derive_seed(42, "gpu") != derive_seed(42, "cpu")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "gpu") != derive_seed(2, "gpu")

    def test_64_bit_range(self):
        seed = derive_seed(7, "anything")
        assert 0 <= seed < 2**64


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(0)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_reproducible_across_registries(self):
        first = RngRegistry(123).stream("x").random()
        second = RngRegistry(123).stream("x").random()
        assert first == second

    def test_streams_independent(self):
        registry = RngRegistry(5)
        a = [registry.stream("a").random() for _ in range(10)]
        b = [registry.stream("b").random() for _ in range(10)]
        assert a != b

    def test_adding_stream_does_not_perturb_existing(self):
        reference = RngRegistry(9)
        ref_a = [reference.stream("a").random() for _ in range(5)]

        registry = RngRegistry(9)
        registry.stream("zebra").random()  # extra consumer
        got_a = [registry.stream("a").random() for _ in range(5)]
        assert got_a == ref_a

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(3)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()

    def test_contains(self):
        registry = RngRegistry(0)
        assert "a" not in registry
        registry.stream("a")
        assert "a" in registry
