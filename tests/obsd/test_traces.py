"""Critical-path extraction, stage decomposition, and trace diffing."""

import pytest

from repro.obsd import critical_path, stage_decomposition, trace_diff


def _span(span_id, name, start_s, end_s):
    return {"span_id": span_id, "name": name, "start_s": start_s, "end_s": end_s}


def _trace(job_id="job-a", *, backoff_rounds=0, submit_start=0.0,
           submit_s=0.01, queue_s=0.05, sim_windows=((0.0, 0.5), (0.1, 0.7)),
           batch_pad=0.05, render_s=0.02):
    """A synthetic span document shaped like the service trace endpoint's.

    Stages chain on shared timestamps: root opens at 0, back-off rounds
    (if any) precede the accepted submit, queue follows submit, the batch
    holds parallel sim spans, render closes the root.
    """
    spans = []
    t = 0.0
    for i in range(backoff_rounds):
        spans.append(_span(f"backoff-{i}", "service.backoff", t, t + 0.1))
        t += 0.1
    t = max(t, submit_start)
    spans.append(_span("submit", "service.submit", t, t + submit_s))
    t += submit_s
    spans.append(_span("queue", "service.queue", t, t + queue_s))
    t += queue_s
    batch_start = t
    sims = [
        _span(f"sim-{i}", f"sim.run-{i}", batch_start + s, batch_start + e)
        for i, (s, e) in enumerate(sim_windows)
    ]
    batch_end = max(span["end_s"] for span in sims) + batch_pad
    spans.append(_span("batch", "service.batch", batch_start, batch_end))
    spans.extend(sims)
    spans.append(_span("render", "service.render", batch_end, batch_end + render_s))
    spans.insert(0, _span("root", "service.job", 0.0, batch_end + render_s))
    return {
        "job_id": job_id,
        "trace_id": f"trace-{job_id}",
        "state": "done",
        "spans": spans,
    }


class TestStageDecomposition:
    def test_stages_tile_the_end_to_end_time(self):
        doc = _trace()
        decomp = stage_decomposition(doc)
        assert decomp["job_id"] == "job-a"
        assert decomp["runs"] == 2
        total = sum(row["seconds"] for row in decomp["stages"])
        assert total == pytest.approx(decomp["e2e_s"])
        assert sum(row["share"] for row in decomp["stages"]) == pytest.approx(1.0)

    def test_sim_critical_is_the_union_of_overlapping_runs(self):
        # Two sims covering (0, 0.5) and (0.1, 0.7): union is 0.7, not 1.1.
        decomp = stage_decomposition(_trace(sim_windows=((0.0, 0.5), (0.1, 0.7))))
        by_stage = {row["stage"]: row["seconds"] for row in decomp["stages"]}
        assert by_stage["sim_critical"] == pytest.approx(0.7)
        assert by_stage["batch_overhead"] == pytest.approx(0.05)

    def test_disjoint_sims_sum_and_gap_counts_as_overhead(self):
        decomp = stage_decomposition(_trace(sim_windows=((0.0, 0.2), (0.5, 0.8))))
        by_stage = {row["stage"]: row["seconds"] for row in decomp["stages"]}
        assert by_stage["sim_critical"] == pytest.approx(0.5)
        # batch spans 0..0.85: the 0.3 s gap plus the 0.05 s pad.
        assert by_stage["batch_overhead"] == pytest.approx(0.35)

    def test_backoff_covers_429_rounds_and_retry_after_sleeps(self):
        # Submit only starts at t=1.0 though the rounds end at 0.2: the
        # 0.8 s of client-side sleeps must land in the backoff stage so
        # the stages still tile the root span.
        doc = _trace(backoff_rounds=2, submit_start=1.0)
        decomp = stage_decomposition(doc)
        by_stage = {row["stage"]: row["seconds"] for row in decomp["stages"]}
        assert by_stage["backoff"] == pytest.approx(1.0)
        total = sum(row["seconds"] for row in decomp["stages"])
        assert total == pytest.approx(decomp["e2e_s"])


class TestCriticalPath:
    def test_straggler_sim_is_the_binding_child(self):
        path = critical_path(_trace(sim_windows=((0.0, 0.5), (0.1, 0.7))))
        sim_rows = [row for row in path if row["kind"] == "sim"]
        assert [row["span_id"] for row in sim_rows] == ["sim-1"]
        assert sim_rows[0]["seconds"] == pytest.approx(0.6)

    def test_serial_stages_in_pipeline_order(self):
        path = critical_path(_trace(backoff_rounds=2, submit_start=1.0))
        ids = [row["span_id"] for row in path]
        assert ids == ["backoff-0", "backoff-1", "submit", "queue",
                       "batch", "sim-1", "render"]

    def test_no_sims_means_pure_overhead_batch(self):
        doc = _trace()
        doc["spans"] = [s for s in doc["spans"]
                        if not s["span_id"].startswith("sim-")]
        path = critical_path(doc)
        assert all(row["kind"] == "stage" for row in path)
        batch = next(row for row in path if row["span_id"] == "batch")
        assert batch["seconds"] == pytest.approx(0.75)


class TestTraceDiff:
    def test_delta_attributed_to_the_slower_stage(self):
        fast = _trace("job-fast", queue_s=0.05)
        slow = _trace("job-slow", queue_s=2.05)
        diff = trace_diff(fast, slow)
        assert diff["e2e_delta_s"] == pytest.approx(2.0)
        top = diff["stages"][0]
        assert top["stage"] == "queue"
        assert top["delta_s"] == pytest.approx(2.0)
        assert top["share_of_delta"] == pytest.approx(1.0)

    def test_shares_sum_to_one_when_delta_nonzero(self):
        a = _trace("a", queue_s=0.1, sim_windows=((0.0, 0.3),))
        b = _trace("b", queue_s=0.6, sim_windows=((0.0, 0.9),))
        diff = trace_diff(a, b)
        assert sum(r["share_of_delta"] for r in diff["stages"]) == pytest.approx(1.0)

    def test_rows_sorted_by_absolute_delta(self):
        a = _trace("a", queue_s=0.1, render_s=0.5)
        b = _trace("b", queue_s=1.1, render_s=0.02)
        diff = trace_diff(a, b)
        deltas = [abs(r["delta_s"]) for r in diff["stages"]]
        assert deltas == sorted(deltas, reverse=True)

    def test_identical_traces_have_zero_shares(self):
        doc = _trace()
        diff = trace_diff(doc, doc)
        assert diff["e2e_delta_s"] == 0.0
        assert all(r["share_of_delta"] == 0.0 for r in diff["stages"])
