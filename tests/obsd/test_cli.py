"""hiss-slo CLI: offline evaluation, validation, diffing, determinism."""

import json
import pathlib

import pytest

from repro.obsd.cli import main
from repro.obsd.slo import SLO_SCHEMA, SloSpec, slo_document

FIXTURE = pathlib.Path(__file__).parent / "data" / "ops_capture.jsonl"

TIGHT = SloSpec(name="e2e-tight", kind="latency", metric="e2e_s",
                percentile=99, threshold_s=0.3,
                fast_window_s=5, slow_window_s=10)
LOOSE = SloSpec(name="e2e-loose", kind="latency", metric="e2e_s",
                percentile=99, threshold_s=60.0,
                fast_window_s=5, slow_window_s=10)


def _spec_file(tmp_path, *specs, name="slos.json"):
    path = tmp_path / name
    path.write_text(json.dumps(slo_document(list(specs))))
    return str(path)


def _trace_file(tmp_path, job_id, queue_s, name):
    doc = {
        "job_id": job_id,
        "trace_id": f"trace-{job_id}",
        "state": "done",
        "spans": [
            {"span_id": "root", "name": "service.job",
             "start_s": 0.0, "end_s": 1.0 + queue_s},
            {"span_id": "submit", "name": "service.submit",
             "start_s": 0.0, "end_s": 0.01},
            {"span_id": "queue", "name": "service.queue",
             "start_s": 0.01, "end_s": 0.01 + queue_s},
            {"span_id": "batch", "name": "service.batch",
             "start_s": 0.01 + queue_s, "end_s": 0.99 + queue_s},
            {"span_id": "sim-0", "name": "sim.run-0",
             "start_s": 0.01 + queue_s, "end_s": 0.9 + queue_s},
            {"span_id": "render", "name": "service.render",
             "start_s": 0.99 + queue_s, "end_s": 1.0 + queue_s},
        ],
    }
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestEvaluate:
    def test_json_report_lists_firing_rules(self, tmp_path, capsys):
        spec = _spec_file(tmp_path, TIGHT, LOOSE)
        rc = main(["evaluate", "--ops", str(FIXTURE), "--slo", spec, "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["firing"] == ["e2e-tight"]
        names = [row["name"] for row in report["evaluations"]]
        assert names == ["e2e-tight", "e2e-loose"]

    def test_text_report_marks_firing_rules(self, tmp_path, capsys):
        spec = _spec_file(tmp_path, TIGHT, LOOSE)
        main(["evaluate", "--ops", str(FIXTURE), "--slo", spec])
        out = capsys.readouterr().out
        assert "FIRING" in out
        assert "e2e-tight" in out

    def test_stdout_is_run_to_run_identical(self, tmp_path, capsys):
        spec = _spec_file(tmp_path, TIGHT)
        outputs = set()
        for _ in range(2):
            main(["evaluate", "--ops", str(FIXTURE), "--slo", spec, "--json"])
            outputs.add(capsys.readouterr().out)
        assert len(outputs) == 1

    def test_html_report_is_byte_deterministic(self, tmp_path, capsys):
        spec = _spec_file(tmp_path, TIGHT)
        blobs = []
        for name in ("a.html", "b.html"):
            out = tmp_path / name
            main(["evaluate", "--ops", str(FIXTURE), "--slo", spec,
                  "-o", str(out)])
            blobs.append(out.read_bytes())
        capsys.readouterr()
        assert blobs[0] == blobs[1]
        assert b"hiss-slo-data" in blobs[0]

    def test_fail_on_firing_exit_code(self, tmp_path, capsys):
        tight = _spec_file(tmp_path, TIGHT, name="tight.json")
        loose = _spec_file(tmp_path, LOOSE, name="loose.json")
        assert main(["evaluate", "--ops", str(FIXTURE), "--slo", tight,
                     "--fail-on-firing"]) == 3
        assert main(["evaluate", "--ops", str(FIXTURE), "--slo", loose,
                     "--fail-on-firing"]) == 0
        capsys.readouterr()

    def test_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            main(["evaluate"])
        with pytest.raises(SystemExit):
            main(["evaluate", "--ops", str(FIXTURE), "--url", "http://x"])


class TestValidate:
    def test_good_spec_passes(self, tmp_path, capsys):
        spec = _spec_file(tmp_path, TIGHT, LOOSE)
        assert main(["validate", spec]) == 0
        assert "OK" in capsys.readouterr().out

    def test_bad_spec_fails_with_named_problems(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "schema": SLO_SCHEMA,
            "slos": [{"name": "x", "kind": "latency", "metric": "e2e_s",
                      "threshold_s": 1.0, "percentile": 99, "bogus": True}],
        }))
        assert main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_default_spec_round_trips_through_validate(self, tmp_path, capsys):
        main(["default-spec"])
        doc = capsys.readouterr().out
        path = tmp_path / "default.json"
        path.write_text(doc)
        assert main(["validate", str(path)]) == 0


class TestDiff:
    def test_diff_two_trace_files(self, tmp_path, capsys):
        a = _trace_file(tmp_path, "job-a", queue_s=0.05, name="a.json")
        b = _trace_file(tmp_path, "job-b", queue_s=2.05, name="b.json")
        assert main(["diff", a, b, "--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["e2e_delta_s"] == pytest.approx(2.0)
        assert diff["stages"][0]["stage"] == "queue"

    def test_diff_writes_html(self, tmp_path, capsys):
        a = _trace_file(tmp_path, "job-a", queue_s=0.05, name="a.json")
        b = _trace_file(tmp_path, "job-b", queue_s=2.05, name="b.json")
        out = tmp_path / "diff.html"
        assert main(["diff", a, b, "-o", str(out)]) == 0
        capsys.readouterr()
        html = out.read_bytes()
        assert b"hiss-slo-diff-data" in html
