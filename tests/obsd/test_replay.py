"""Offline ops-JSONL replay against the checked-in deterministic capture."""

import json
import pathlib

import pytest

from repro.obsd import SloSpec, evaluate_slos, replay_ops_log
from repro.obsd.slo import DEFAULT_SLOS

FIXTURE = pathlib.Path(__file__).parent / "data" / "ops_capture.jsonl"


def _tight_spec(threshold_s=0.3):
    return SloSpec(name="e2e-tight", kind="latency", metric="e2e_s",
                   percentile=99, threshold_s=threshold_s,
                   fast_window_s=5, slow_window_s=10)


class TestReplayBookkeeping:
    def test_fixture_replay_counts(self):
        capture = replay_ops_log(str(FIXTURE))
        assert capture.events == 38
        assert capture.skipped == 2  # one junk line, one without "event"
        assert capture.by_event["job.admitted"] == 11
        assert capture.by_event["job.done"] == 10
        assert capture.by_event["job.failed"] == 1
        assert capture.by_event["job.rejected"] == 1
        assert capture.by_event["job.deduplicated"] == 1
        assert capture.by_event["run.executed"] == 2
        assert capture.by_event["batch.executed"] == 1
        assert capture.first_ts == 1000.0
        assert capture.last_ts == 1009.7
        assert capture.duration_s == pytest.approx(9.7)
        assert len(capture.store) == 10

    def test_replay_is_clocked_by_event_timestamps(self):
        capture = replay_ops_log(str(FIXTURE))
        # Bucket grid starts at the first event's ts, not the wall clock.
        assert capture.store.buckets[0].end_s == 1001.0
        assert capture.store.buckets[-1].end_s == 1009.7

    def test_counters_reconstructed_from_lifecycle_events(self):
        capture = replay_ops_log(str(FIXTURE))
        window = capture.store.window(60.0)
        assert window.counters["service.jobs.submitted"] == 11
        assert window.counters["service.jobs.completed"] == 10
        assert window.counters["service.jobs.failed"] == 1
        assert window.counters["service.jobs.rejected_qos_backpressure"] == 1
        assert window.counters["service.runs.planned"] == 88
        assert window.counters["service.runs.executed"] == 2

    def test_queue_wait_derived_from_admit_to_start_gap(self):
        capture = replay_ops_log(str(FIXTURE))
        window = capture.store.window(60.0)
        waits = window.histograms["service.job.queue_wait_s"]
        assert waits.count == 11
        # All fixture gaps are 0.05 or 0.1 s.
        assert waits.summary()["max"] < 0.2

    def test_replay_accepts_an_iterable_of_lines(self):
        lines = FIXTURE.read_text().splitlines()
        from_path = replay_ops_log(str(FIXTURE))
        from_lines = replay_ops_log(lines)
        assert from_path.as_dict() == from_lines.as_dict()
        assert json.dumps(from_path.store.as_dict(), sort_keys=True) == (
            json.dumps(from_lines.store.as_dict(), sort_keys=True)
        )

    def test_replay_is_byte_deterministic(self):
        renders = {
            json.dumps(
                {
                    "capture": replay_ops_log(str(FIXTURE)).as_dict(),
                    "report": evaluate_slos(
                        list(DEFAULT_SLOS) + [_tight_spec()],
                        replay_ops_log(str(FIXTURE)).store,
                    ),
                },
                sort_keys=True,
            )
            for _ in range(3)
        }
        assert len(renders) == 1

    def test_empty_capture_is_harmless(self):
        capture = replay_ops_log([])
        assert capture.events == 0
        assert capture.duration_s == 0.0
        assert len(capture.store) == 0
        report = evaluate_slos(DEFAULT_SLOS, capture.store)
        assert report["firing"] == []


class TestReplayedAlerting:
    def test_tight_latency_slo_fires_on_the_fixture_tail(self):
        capture = replay_ops_log(str(FIXTURE))
        report = evaluate_slos([_tight_spec()], capture.store)
        assert report["firing"] == ["e2e-tight"]
        row = report["evaluations"][0]
        # 2/11 of the e2e observations breach 0.3 s against a 1% budget.
        assert row["windows"]["slow"]["burn"] > 14.4

    def test_loose_latency_slo_stays_quiet(self):
        capture = replay_ops_log(str(FIXTURE))
        report = evaluate_slos([_tight_spec(threshold_s=60.0)], capture.store)
        assert report["firing"] == []

    def test_default_availability_slo_sees_the_failed_job(self):
        capture = replay_ops_log(str(FIXTURE))
        report = evaluate_slos(DEFAULT_SLOS, capture.store)
        assert "availability" in report["firing"]
        # pool.* counters never appear in the ops log, so the warm-hit
        # ratio objective has an empty window and must not fire on replay.
        assert "pool-warm-hits" not in report["firing"]
