"""SloSpec validation, burn-rate evaluation, and spec-document round-trips."""

import json

import pytest

from repro.obsd import (
    DEFAULT_SLOS,
    SLO_SCHEMA,
    SloSpec,
    evaluate_slos,
    parse_slo_document,
    slo_document,
    validate_slo_document,
)
from repro.obsd.rollup import RollupStore
from repro.telemetry.metrics import Histogram

E2E = "service.job.e2e_s"


def _store_with(e2e_values=(), counters=None, seconds=10):
    """A store whose single-interval buckets carry the given activity."""
    store = RollupStore(interval_s=1.0, capacity=16)
    h = Histogram(E2E, low=1e-3, high=1e4, growth=1.5)
    cumulative = dict.fromkeys(counters or {}, 0)
    per_tick = counters or {}
    values = list(e2e_values)
    for t in range(1, seconds + 1):
        if values:
            h.record(values.pop(0))
        for name, step in per_tick.items():
            cumulative[name] += step
        store.sample(float(t), counters=dict(cumulative), histograms={E2E: h})
    return store


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            SloSpec(name="x", kind="weird")

    def test_latency_needs_metric_and_positive_threshold(self):
        with pytest.raises(ValueError, match="metric"):
            SloSpec(name="x", kind="latency", threshold_s=1.0)
        with pytest.raises(ValueError, match="threshold_s"):
            SloSpec(name="x", kind="latency", metric="e2e_s", threshold_s=0.0)
        with pytest.raises(ValueError, match="percentile"):
            SloSpec(name="x", kind="latency", metric="e2e_s",
                    threshold_s=1.0, percentile=100)

    def test_latency_objective_implied_by_percentile(self):
        spec = SloSpec(name="x", kind="latency", metric="e2e_s",
                       threshold_s=1.0, percentile=95)
        assert spec.objective == 0.95
        assert spec.budget == pytest.approx(0.05)

    def test_availability_needs_good_and_bad(self):
        with pytest.raises(ValueError, match="good"):
            SloSpec(name="x", kind="availability")

    def test_ratio_needs_numerator_and_denominator(self):
        with pytest.raises(ValueError, match="denominator"):
            SloSpec(name="x", kind="ratio", metric="pool.warm_hits")

    def test_window_ordering_enforced(self):
        with pytest.raises(ValueError, match="fast_window_s"):
            SloSpec(name="x", kind="availability", good=("g",), bad=("b",),
                    fast_window_s=600, slow_window_s=300)


class TestLatencyEvaluation:
    def test_all_fast_requests_do_not_burn(self):
        store = _store_with(e2e_values=[0.1] * 10)
        spec = SloSpec(name="e2e", kind="latency", metric="e2e_s",
                       percentile=99, threshold_s=1.0,
                       fast_window_s=5, slow_window_s=10)
        row = spec.evaluate(store)
        assert not row["firing"]
        assert row["windows"]["slow"]["bad"] == 0.0

    def test_tail_regression_fires_both_windows(self):
        store = _store_with(e2e_values=[0.1] * 5 + [50.0] * 5)
        spec = SloSpec(name="e2e", kind="latency", metric="e2e_s",
                       percentile=99, threshold_s=1.0,
                       fast_window_s=5, slow_window_s=10)
        row = spec.evaluate(store)
        assert row["firing"]
        assert row["windows"]["fast"]["burn"] >= spec.burn_factor
        assert row["windows"]["slow"]["burn"] >= spec.burn_factor

    def test_old_regression_does_not_fire_the_fast_window(self):
        # Slow values only in the first half: the slow window still burns
        # but the fast window is clean, so the rule must NOT fire.
        store = _store_with(e2e_values=[50.0] * 5 + [0.1] * 5)
        spec = SloSpec(name="e2e", kind="latency", metric="e2e_s",
                       percentile=99, threshold_s=1.0,
                       fast_window_s=3, slow_window_s=10)
        row = spec.evaluate(store)
        assert row["windows"]["slow"]["burn"] >= spec.burn_factor
        assert row["windows"]["fast"]["burn"] < spec.burn_factor
        assert not row["firing"]

    def test_empty_window_never_fires(self):
        store = _store_with(e2e_values=[])
        spec = SloSpec(name="e2e", kind="latency", metric="e2e_s",
                       percentile=99, threshold_s=1.0,
                       fast_window_s=5, slow_window_s=10)
        row = spec.evaluate(store)
        assert row["windows"]["fast"]["total"] == 0.0
        assert not row["firing"]


class TestAvailabilityAndRatio:
    def test_availability_counts_bad_over_good_plus_bad(self):
        store = _store_with(counters={"ok": 9, "err": 1}, seconds=10)
        spec = SloSpec(name="avail", kind="availability", objective=0.999,
                       good=("ok",), bad=("err",),
                       fast_window_s=5, slow_window_s=10)
        row = spec.evaluate(store)
        fast = row["windows"]["fast"]
        assert fast["total"] == 50.0  # 5 ticks x (9 good + 1 bad)
        assert fast["bad"] == 5.0
        assert fast["burn"] == pytest.approx(100.0)
        assert row["firing"]

    def test_ratio_counts_denominator_shortfall(self):
        store = _store_with(
            counters={"pool.warm_hits": 3, "pool.tasks": 10}, seconds=10
        )
        spec = SloSpec(name="warm", kind="ratio", metric="pool.warm_hits",
                       denominator="pool.tasks", objective=0.5,
                       burn_factor=1.2, fast_window_s=5, slow_window_s=10)
        row = spec.evaluate(store)
        fast = row["windows"]["fast"]
        assert fast["total"] == 50.0
        assert fast["bad"] == 35.0  # 50 tasks - 15 warm hits
        assert fast["bad_fraction"] == pytest.approx(0.7)
        assert row["firing"]  # 0.7 / 0.5 budget = 1.4x >= 1.2x


class TestEvaluateSlos:
    def test_report_shape_and_firing_list(self):
        store = _store_with(e2e_values=[50.0] * 10)
        specs = [
            SloSpec(name="tight", kind="latency", metric="e2e_s",
                    percentile=99, threshold_s=1.0,
                    fast_window_s=5, slow_window_s=10),
            SloSpec(name="loose", kind="latency", metric="e2e_s",
                    percentile=99, threshold_s=100.0,
                    fast_window_s=5, slow_window_s=10),
        ]
        report = evaluate_slos(specs, store)
        assert report["schema"] == "hiss.alerts/1"
        assert report["firing"] == ["tight"]
        assert report["at_s"] == store.end_s  # capture time, not wall time

    def test_evaluation_is_deterministic(self):
        store = _store_with(e2e_values=[0.1, 5.0] * 5)
        renders = {
            json.dumps(evaluate_slos(DEFAULT_SLOS, store), sort_keys=True)
            for _ in range(3)
        }
        assert len(renders) == 1


class TestSpecDocuments:
    def test_default_slos_round_trip(self):
        doc = slo_document(DEFAULT_SLOS)
        assert doc["schema"] == SLO_SCHEMA
        assert validate_slo_document(doc) == []
        parsed = parse_slo_document(doc)
        assert [s.as_dict() for s in parsed] == [s.as_dict() for s in DEFAULT_SLOS]

    def test_unknown_field_and_duplicate_name_reported(self):
        doc = {
            "schema": SLO_SCHEMA,
            "slos": [
                {"name": "a", "kind": "latency", "metric": "e2e_s",
                 "threshold_s": 1.0, "percentile": 99, "bogus": 1},
                {"name": "a", "kind": "availability", "objective": 0.99,
                 "good": ["ok"], "bad": ["err"]},
            ],
        }
        problems = validate_slo_document(doc)
        assert any("bogus" in p for p in problems)
        assert any("duplicate" in p for p in problems)

    def test_bad_schema_and_shape_reported(self):
        assert validate_slo_document([]) != []
        assert any(
            "schema" in p for p in validate_slo_document({"slos": [{}]})
        )
        assert any(
            "slos" in p
            for p in validate_slo_document({"schema": SLO_SCHEMA})
        )

    def test_parse_raises_on_invalid(self):
        with pytest.raises(ValueError):
            parse_slo_document({"schema": SLO_SCHEMA, "slos": [{"kind": "nope"}]})
