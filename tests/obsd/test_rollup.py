"""RollupStore: windowed deltas, deterministic decimation, pure queries."""

import json

import pytest

from repro.obsd import RollupBucket, RollupStore
from repro.telemetry.metrics import Histogram


def _histogram(values, name="service.job.e2e_s"):
    h = Histogram(name, low=1e-3, high=1e4, growth=1.5)
    for value in values:
        h.record(value)
    return h


class TestBucket:
    def test_merge_adds_counters_and_keeps_later_gauges(self):
        a = RollupBucket(0.0, 1.0, counters={"x": 2}, gauges={"g": 1.0})
        b = RollupBucket(1.0, 2.0, counters={"x": 3, "y": 1}, gauges={"g": 7.0})
        a.merge(b)
        assert a.counters == {"x": 5, "y": 1}
        assert a.gauges["g"] == 7.0
        assert (a.start_s, a.end_s) == (0.0, 2.0)

    def test_merge_combines_histograms_without_mutating_other(self):
        a = RollupBucket(0.0, 1.0, histograms={"h": _histogram([0.1, 0.2])})
        b = RollupBucket(1.0, 2.0, histograms={"h": _histogram([0.3])})
        a.merge(b)
        assert a.histograms["h"].count == 3
        assert b.histograms["h"].count == 1  # other untouched

    def test_merge_copies_missing_histograms(self):
        a = RollupBucket(0.0, 1.0)
        b = RollupBucket(1.0, 2.0, histograms={"h": _histogram([0.3])})
        a.merge(b)
        a.histograms["h"].record(0.5)
        assert b.histograms["h"].count == 1  # deep copy, not aliased

    def test_total_sums_selected_counters(self):
        bucket = RollupBucket(0.0, 1.0, counters={"a": 2, "b": 3, "c": 9})
        assert bucket.total(["a", "b"]) == 5
        assert bucket.total(["missing"]) == 0


class TestSampling:
    def test_sample_stores_deltas_not_cumulative_values(self):
        store = RollupStore(interval_s=1.0, capacity=16)
        store.sample(1.0, counters={"jobs": 5})
        bucket = store.sample(2.0, counters={"jobs": 8})
        assert store.buckets[0].counters == {"jobs": 5}
        assert bucket.counters == {"jobs": 3}

    def test_first_bucket_starts_one_interval_before_the_sample(self):
        store = RollupStore(interval_s=2.0, capacity=16)
        bucket = store.sample(10.0)
        assert (bucket.start_s, bucket.end_s) == (8.0, 10.0)

    def test_histogram_windows_hold_only_new_observations(self):
        store = RollupStore(interval_s=1.0, capacity=16)
        h = _histogram([0.1, 0.2])
        store.sample(1.0, histograms={"h": h})
        h.record(0.4)
        h.record(0.5)
        bucket = store.sample(2.0, histograms={"h": h})
        assert store.buckets[0].histograms["h"].count == 2
        assert bucket.histograms["h"].count == 2
        # Quiet window -> no histogram entry at all.
        empty = store.sample(3.0, histograms={"h": h})
        assert "h" not in empty.histograms

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            RollupStore(interval_s=0.0)
        with pytest.raises(ValueError):
            RollupStore(capacity=8)
        with pytest.raises(ValueError):
            RollupStore(capacity=17)


class TestDecimation:
    def test_ring_overflow_halves_buckets_and_doubles_interval(self):
        store = RollupStore(interval_s=1.0, capacity=16)
        for t in range(1, 17):
            store.sample(float(t), counters={"jobs": t})
        assert len(store) == 8
        assert store.interval_s == 2.0
        assert store.decimations == 1
        # Nothing lost: total increments survive the pair-merge.
        assert sum(b.counters.get("jobs", 0) for b in store.buckets) == 16

    def test_decimation_is_deterministic_in_sample_count(self):
        def build():
            store = RollupStore(interval_s=1.0, capacity=16)
            h = _histogram([])
            for t in range(1, 40):
                h.record(0.1 * (1 + t % 3))
                store.sample(float(t), counters={"jobs": t},
                             histograms={"h": h})
            return store

        a, b = build(), build()
        assert json.dumps(a.as_dict(), sort_keys=True) == json.dumps(
            b.as_dict(), sort_keys=True
        )


class TestWindowQueries:
    def test_window_defaults_to_newest_bucket_end_not_wall_clock(self):
        store = RollupStore(interval_s=1.0, capacity=16)
        for t in range(1, 6):
            store.sample(float(t), counters={"jobs": t})
        window = store.window(2.0)
        assert (window.start_s, window.end_s) == (3.0, 5.0)
        # Buckets (3,4] and (4,5] each hold a delta of 1.
        assert window.counters["jobs"] == 2

    def test_window_is_pure_and_leaves_store_unchanged(self):
        store = RollupStore(interval_s=1.0, capacity=16)
        h = _histogram([])
        for t in range(1, 6):
            h.record(0.2)
            store.sample(float(t), counters={"jobs": 1}, histograms={"h": h})
        before = json.dumps(store.as_dict(), sort_keys=True)
        first = store.window(3.0)
        second = store.window(3.0)
        assert json.dumps(store.as_dict(), sort_keys=True) == before
        assert first.counters == second.counters
        assert first.histograms["h"].count == second.histograms["h"].count == 3

    def test_window_with_explicit_end_replays_the_past(self):
        store = RollupStore(interval_s=1.0, capacity=16)
        for t in range(1, 11):
            store.sample(float(t), counters={"jobs": t})
        past = store.window(3.0, end_s=5.0)
        assert past.counters["jobs"] == 3

    def test_empty_store_window_is_empty(self):
        store = RollupStore(interval_s=1.0, capacity=16)
        window = store.window(60.0)
        assert window.counters == {}
        assert store.end_s is None
