"""Unit tests for workload profile dataclasses and catalogs."""

import pytest

from repro.workloads import (
    CpuAppProfile,
    GPU_APP_NAMES,
    GPU_NAMES,
    GpuAppProfile,
    PARSEC_NAMES,
    gpu_app,
    parsec,
)


class TestCpuAppProfile:
    def test_validation_threads(self):
        with pytest.raises(ValueError):
            CpuAppProfile(name="bad", threads=0)

    def test_validation_duty_length(self):
        with pytest.raises(ValueError):
            CpuAppProfile(name="bad", threads=4, thread_duty=(1.0,))

    def test_validation_duty_range(self):
        with pytest.raises(ValueError):
            CpuAppProfile(name="bad", thread_duty=(1.0, 0.0, 1.0, 1.0))

    def test_profiles_hashable(self):
        assert hash(parsec("x264")) == hash(parsec("x264"))


class TestGpuAppProfile:
    def test_mean_fault_interval(self):
        profile = GpuAppProfile(
            name="p", compute_chunk_ns=1_000_000, faults_per_chunk=10, blocking=False
        )
        assert profile.mean_fault_interval_ns == pytest.approx(100_000)

    def test_mean_fault_interval_no_faults(self):
        profile = GpuAppProfile(
            name="p", compute_chunk_ns=1_000_000, faults_per_chunk=0, blocking=False
        )
        assert profile.mean_fault_interval_ns == float("inf")

    def test_without_ssrs(self):
        quiet = gpu_app("sssp").without_ssrs()
        assert quiet.faults_per_chunk == 0.0
        assert quiet.burst_faults == 0
        assert quiet.compute_chunk_ns == gpu_app("sssp").compute_chunk_ns


class TestCatalogs:
    def test_thirteen_parsec_benchmarks(self):
        assert len(PARSEC_NAMES) == 13

    def test_paper_parsec_names_present(self):
        for name in ("blackscholes", "fluidanimate", "raytrace", "streamcluster", "x264"):
            assert name in PARSEC_NAMES

    def test_six_gpu_workloads(self):
        assert len(GPU_NAMES) == 6
        assert "ubench" in GPU_NAMES
        assert "ubench" not in GPU_APP_NAMES

    def test_unknown_lookups_raise(self):
        with pytest.raises(KeyError):
            parsec("doom")
        with pytest.raises(KeyError):
            gpu_app("doom")

    def test_paper_characterizations(self):
        """The traits the paper calls out explicitly."""
        raytrace = parsec("raytrace")
        assert raytrace.thread_duty[0] == 1.0
        assert all(duty < 0.2 for duty in raytrace.thread_duty[1:])

        fluidanimate = parsec("fluidanimate")
        assert fluidanimate.barriers

        streamcluster = parsec("streamcluster")
        assert streamcluster.barriers and streamcluster.think_ns == 0

        bfs = gpu_app("bfs")
        assert bfs.burst_faults > 0  # clustered early faults

        ubench = gpu_app("ubench")
        assert not ubench.blocking
        assert ubench.mean_fault_interval_ns < 50_000  # continuous storm

        sssp = gpu_app("sssp")
        assert sssp.blocking and sssp.dependent_faults > 0
