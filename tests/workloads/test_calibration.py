"""Unit tests for steady-state calibration of CPU profiles."""

import pytest

from repro.config import CpuConfig
from repro.workloads import parsec, steady_state_for
from repro.workloads.calibration import address_spec_for, branch_spec_for


class TestSpecDerivation:
    def test_distinct_owners_get_distinct_regions(self):
        profile = parsec("x264")
        a = address_spec_for(profile, 1)
        b = address_spec_for(profile, 2)
        assert a.base != b.base
        assert abs(a.base - b.base) >= profile.ws_lines * a.line_size

    def test_branch_regions_distinct(self):
        profile = parsec("x264")
        assert branch_spec_for(profile, 1).base_pc != branch_spec_for(profile, 2).base_pc

    def test_spec_mirrors_profile(self):
        profile = parsec("canneal")
        spec = address_spec_for(profile, 0)
        assert spec.lines == profile.ws_lines
        assert spec.hot_rate == profile.hot_rate


class TestSteadyState:
    def test_caching_returns_same_object(self):
        cpu = CpuConfig()
        assert steady_state_for(parsec("x264"), cpu) is steady_state_for(
            parsec("x264"), cpu
        )

    def test_cpi_at_least_base(self):
        cpu = CpuConfig()
        for name in ("x264", "canneal", "blackscholes"):
            steady = steady_state_for(parsec(name), cpu)
            assert steady.cpi >= parsec(name).base_cpi

    def test_canneal_misses_more_than_blackscholes(self):
        cpu = CpuConfig()
        assert (
            steady_state_for(parsec("canneal"), cpu).miss_rate
            > steady_state_for(parsec("blackscholes"), cpu).miss_rate
        )

    def test_instructions_for_ns(self):
        cpu = CpuConfig()
        steady = steady_state_for(parsec("swaptions"), cpu)
        instructions = steady.instructions_for_ns(1_000_000, cpu.freq_ghz)
        # ~3.7M cycles in a millisecond; CPI >= 0.8 bounds instruction count.
        assert 0 < instructions <= 1_000_000 * cpu.freq_ghz / 0.8
