"""Property-based tests: barrier semantics and scheduler fairness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.oskernel import Kernel
from repro.sim import Environment, RngRegistry
from repro.workloads import Barrier

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from oskernel.conftest import BusyThread  # noqa: E402


class TestBarrierProperties:
    @given(
        parties=st.integers(min_value=1, max_value=6),
        delays=st.lists(st.integers(min_value=0, max_value=1000), min_size=6, max_size=6),
        rounds=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_parties_released_together_every_round(self, parties, delays, rounds):
        env = Environment()
        barrier = Barrier(env, parties)
        releases = {i: [] for i in range(parties)}

        def party(index, delay):
            for _ in range(rounds):
                yield env.timeout(delay + 1)
                event = barrier.arrive()
                if not event.processed:
                    yield event
                releases[index].append(env.now)

        for index in range(parties):
            env.process(party(index, delays[index]))
        env.run()
        assert barrier.generations == rounds
        for round_index in range(rounds):
            times = {releases[i][round_index] for i in range(parties)}
            assert len(times) == 1  # everyone released at the same instant

    @given(parties=st.integers(min_value=2, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_nobody_passes_early(self, parties):
        env = Environment()
        barrier = Barrier(env, parties)
        passed = []

        def early(index):
            yield env.timeout(index)
            event = barrier.arrive()
            if not event.processed:
                yield event
            passed.append(env.now)

        for index in range(parties):
            env.process(early(index))
        env.run()
        # The last arriver arrives at t = parties - 1.
        assert all(t == parties - 1 for t in passed)


class TestSchedulerFairnessProperty:
    @given(count=st.integers(min_value=2, max_value=6))
    @settings(max_examples=8, deadline=None)
    def test_equal_pinned_threads_share_one_core(self, count):
        kernel = Kernel(Environment(), SystemConfig(), RngRegistry(11))
        kernel.boot()
        threads = [
            kernel.spawn(BusyThread(kernel, f"t{i}", 1_000_000_000, pinned_core=0))
            for i in range(count)
        ]
        # Horizon long enough for several full timeslice rotations.
        horizon = count * kernel.config.scheduler.timeslice_ns * 4
        kernel.env.run(until=horizon)
        kernel.finalize()
        shares = [t.productive_ns for t in threads]
        assert min(shares) > 0  # round-robin is starvation-free
        # Timeslice quantization bounds the skew across full rotations.
        assert max(shares) / min(shares) < 2.0

    @given(count=st.integers(min_value=2, max_value=6))
    @settings(max_examples=8, deadline=None)
    def test_unpinned_threads_all_progress(self, count):
        """Wake placement spreads threads; without periodic load balancing
        the documented guarantee is progress for everyone, with per-core
        skew bounded by the placement granularity (at most 2 threads of
        count<=6 share a core on the 4-core default machine)."""
        kernel = Kernel(Environment(), SystemConfig(), RngRegistry(11))
        kernel.boot()
        threads = [
            kernel.spawn(BusyThread(kernel, f"t{i}", 1_000_000_000))
            for i in range(count)
        ]
        kernel.env.run(until=20_000_000)
        kernel.finalize()
        shares = [t.productive_ns for t in threads]
        assert min(shares) > 0
        assert max(shares) / min(shares) < 3.0
