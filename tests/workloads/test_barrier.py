"""Unit tests for the cyclic barrier."""

import pytest

from repro.sim import Environment
from repro.workloads import Barrier


@pytest.fixture
def env():
    return Environment()


class TestBarrier:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            Barrier(env, 0)

    def test_releases_when_all_arrive(self, env):
        barrier = Barrier(env, 3)
        released_at = []

        def party(delay):
            yield env.timeout(delay)
            event = barrier.arrive()
            if not event.processed:
                yield event
            released_at.append(env.now)

        for delay in (10, 20, 30):
            env.process(party(delay))
        env.run()
        assert released_at == [30, 30, 30]
        assert barrier.generations == 1

    def test_cyclic_reuse(self, env):
        barrier = Barrier(env, 2)
        finish_times = []

        def party(period):
            for _ in range(3):
                yield env.timeout(period)
                event = barrier.arrive()
                if not event.processed:
                    yield event
            finish_times.append(env.now)

        env.process(party(10))
        env.process(party(25))
        env.run()
        assert barrier.generations == 3
        # Both finish when the slower one completes its third round.
        assert finish_times == [75, 75]

    def test_slowest_gates_everyone(self, env):
        barrier = Barrier(env, 4)
        release = []

        def party(delay):
            yield env.timeout(delay)
            event = barrier.arrive()
            if not event.processed:
                yield event
            release.append(env.now)

        for delay in (1, 2, 3, 500):
            env.process(party(delay))
        env.run()
        assert all(t == 500 for t in release)

    def test_waiting_count(self, env):
        barrier = Barrier(env, 3)
        barrier.arrive()
        barrier.arrive()
        assert barrier.waiting == 2
        barrier.arrive()
        assert barrier.waiting == 0

    def test_last_arriver_event_triggered_immediately(self, env):
        barrier = Barrier(env, 2)
        first = barrier.arrive()
        assert not first.triggered
        second = barrier.arrive()
        assert second.triggered and first.triggered
