"""Unit tests for CPU application threads and app-level metrics."""

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.workloads import CpuAppProfile, parsec

SMALL = CpuAppProfile(
    name="small",
    threads=2,
    thread_duty=(1.0, 1.0),
    chunk_ns=300_000,
    ws_lines=64,
)

BARRIERED = CpuAppProfile(
    name="barriered",
    threads=4,
    chunk_ns=200_000,
    barriers=True,
)


def run_app(profile, horizon_ns=5_000_000, config=None):
    system = System(config or SystemConfig())
    app = system.add_cpu_app(profile)
    system.run(horizon_ns)
    return system, app


class TestCpuApp:
    def test_threads_make_progress(self):
        _system, app = run_app(SMALL)
        assert all(t.productive_ns > 0 for t in app.threads)

    def test_one_app_per_system(self):
        system = System(SystemConfig())
        system.add_cpu_app(SMALL)
        with pytest.raises(RuntimeError):
            system.add_cpu_app(BARRIERED)

    def test_instructions_proportional_to_productive_time(self):
        _system, app = run_app(SMALL)
        expected = app.steady.instructions_for_ns(
            app.productive_ns, SystemConfig().cpu.freq_ghz
        )
        assert app.instructions_retired == pytest.approx(expected)

    def test_barrier_app_advances_generations(self):
        _system, app = run_app(BARRIERED)
        assert app.barrier is not None
        assert app.barrier.generations >= 5

    def test_duty_cycle_limits_helper_threads(self):
        _system, app = run_app(parsec("raytrace"), horizon_ns=10_000_000)
        main = app.threads[0].productive_ns
        helpers = [t.productive_ns for t in app.threads[1:]]
        assert all(h < main * 0.25 for h in helpers)

    def test_four_saturating_threads_fill_machine(self):
        _system, app = run_app(parsec("streamcluster"), horizon_ns=10_000_000)
        # 4 threads on 4 cores: aggregate productive time near 4x horizon.
        assert app.productive_ns > 0.75 * 4 * 10_000_000


class TestMetrics:
    def test_measured_rates_are_probabilities(self):
        _system, app = run_app(parsec("fluidanimate"))
        miss, mispredict = app.measured_uarch_rates()
        assert 0.0 <= miss <= 1.0
        assert 0.0 <= mispredict <= 1.0

    def test_increase_metrics_zero_without_ssrs(self):
        _system, app = run_app(parsec("x264"))
        assert app.l1_miss_increase() == 0.0
        assert app.mispredict_increase() == 0.0

    def test_coverage_attributes_sane(self):
        system = System(SystemConfig())
        app = system.add_cpu_app(parsec("x264"))
        for thread in app.threads:
            assert 0.0 < thread.cache_coverage <= 1.0
            assert 0.0 < thread.predictor_coverage <= 1.0
            assert thread.reuse_probability == parsec("x264").hot_rate

    def test_canneal_has_low_reuse_probability(self):
        system = System(SystemConfig())
        app = system.add_cpu_app(parsec("canneal"))
        assert app.threads[0].reuse_probability < 0.5
