"""Unit tests for the power/energy model."""

import pytest

from repro.config import PowerConfig, SystemConfig
from repro.core import run_workloads
from repro.core.metrics import SystemMetrics

HORIZON = 8_000_000


def _metrics(mode_totals):
    return SystemMetrics(
        horizon_ns=1_000_000,
        config_label="Default",
        cpu_app=None,
        gpu=None,
        cc6_residency=0.0,
        mode_totals_ns=mode_totals,
        interrupts_per_core=[0, 0, 0, 0],
        ipis=0,
        ssr_interrupts=0,
        ssr_requests=0,
        ssr_time_ns=0.0,
        ssr_completed=0,
        context_switches=0,
        core_wakeups=0,
    )


class TestEnergyArithmetic:
    def test_all_active(self):
        metrics = _metrics({"user": 4_000_000})  # 4 core-ms active
        power = PowerConfig(active_w=10.0, idle_w=1.0, cc6_w=0.1)
        # 4e6 ns * 10 W = 0.04 J = 40 mJ... (4e-3 s * 10 W = 0.04 J)
        assert metrics.cpu_energy_mj(power) == pytest.approx(40.0)

    def test_all_cc6(self):
        metrics = _metrics({"cc6": 4_000_000})
        power = PowerConfig(active_w=10.0, idle_w=1.0, cc6_w=0.1)
        assert metrics.cpu_energy_mj(power) == pytest.approx(0.4)

    def test_average_power(self):
        metrics = _metrics({"user": 4_000_000})
        power = PowerConfig(active_w=10.0, idle_w=1.0, cc6_w=0.1)
        # 0.04 J over 1 ms wall = 40 W (4 cores at 10 W).
        assert metrics.average_cpu_power_w(power) == pytest.approx(40.0)

    def test_mixed_modes(self):
        metrics = _metrics({"user": 1_000_000, "idle": 1_000_000, "cc6": 2_000_000})
        power = PowerConfig(active_w=8.0, idle_w=2.0, cc6_w=0.0)
        assert metrics.cpu_energy_mj(power) == pytest.approx(8.0 + 2.0)


class TestEnergyEndToEnd:
    def test_ssrs_raise_energy(self):
        config = SystemConfig()
        quiet = run_workloads(None, "ubench", False, config, HORIZON)
        noisy = run_workloads(None, "ubench", True, config, HORIZON)
        assert noisy.cpu_energy_mj(config.power) > 1.5 * quiet.cpu_energy_mj(config.power)

    def test_clustered_app_cheaper_than_storm(self):
        config = SystemConfig()
        bfs = run_workloads(None, "bfs", True, config, HORIZON)
        storm = run_workloads(None, "ubench", True, config, HORIZON)
        assert bfs.cpu_energy_mj(config.power) < storm.cpu_energy_mj(config.power)

    def test_energy_experiment_registered(self):
        from repro.experiments import REGISTRY, run_experiment

        assert "energy" in REGISTRY
        result = run_experiment("energy", gpu_names=["bfs"], horizon_ns=HORIZON)
        assert result.cell("bfs", "overhead_pct") > 0
