"""Tests for the persistent run cache: stable hashing, hit/miss/invalidation."""

import json
import os
import subprocess
import sys

import pytest

from repro.config import SystemConfig
from repro.core import (
    DiskCache,
    clear_cache,
    code_fingerprint,
    make_run_key,
    run_key_digest,
    run_workloads,
    set_disk_cache,
)
from repro.core.experiment import cache_lookup, cache_store
from repro.core.metrics import SystemMetrics
from repro.core.runcache import run_key_document

HORIZON = 300_000


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_disk_cache(None)
    yield
    clear_cache()
    set_disk_cache(None)


def small_key(**overrides):
    config = overrides.pop("config", SystemConfig())
    return make_run_key(
        overrides.pop("cpu", None),
        overrides.pop("gpu", "ubench"),
        overrides.pop("ssr", True),
        config,
        overrides.pop("horizon", HORIZON),
    )


class TestStableHashing:
    def test_digest_deterministic_within_process(self):
        key = small_key()
        assert run_key_digest(key) == run_key_digest(key)

    def test_equal_configs_equal_digests(self):
        assert run_key_digest(small_key()) == run_key_digest(
            small_key(config=SystemConfig())
        )

    def test_any_key_component_changes_digest(self):
        base = run_key_digest(small_key())
        assert run_key_digest(small_key(cpu="x264")) != base
        assert run_key_digest(small_key(ssr=False)) != base
        assert run_key_digest(small_key(horizon=HORIZON + 1)) != base
        assert (
            run_key_digest(small_key(config=SystemConfig(seed=7))) != base
        )

    def test_mitigation_fields_reach_the_digest(self):
        tuned = SystemConfig().with_mitigation(coalesce_window_ns=13_000)
        assert run_key_digest(small_key(config=tuned)) != run_key_digest(small_key())

    def test_digest_stable_across_processes(self):
        """The whole point: another interpreter computes the same address."""
        key = small_key()
        script = (
            "from repro.config import SystemConfig\n"
            "from repro.core import make_run_key, run_key_digest\n"
            f"key = make_run_key(None, 'ubench', True, SystemConfig(), {HORIZON})\n"
            "print(run_key_digest(key))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        )
        assert out.stdout.strip() == run_key_digest(key)

    def test_fingerprint_in_digest(self):
        key = small_key()
        assert run_key_digest(key, "fp-a") != run_key_digest(key, "fp-b")

    def test_schema_digest_reflects_nested_fields(self):
        digest = SystemConfig.schema_digest()
        assert digest == SystemConfig.schema_digest()
        # The walk must reach nested config dataclasses, not just the top.
        document = run_key_document(small_key(), "fp")
        assert "coalesce_window_ns" in json.dumps(document)

    def test_config_stable_json_round_trips_floats(self):
        config = SystemConfig()
        parsed = json.loads(config.stable_json())
        assert parsed["cpu"]["freq_ghz"] == config.cpu.freq_ghz


class TestDiskCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = small_key()
        assert cache.get(key) is None
        assert cache.misses == 1
        set_disk_cache(cache)
        metrics = run_workloads(None, "ubench", True, None, HORIZON)
        assert cache.stores == 1
        # A fresh process-level cache must be served from disk, exactly.
        clear_cache()
        again = run_workloads(None, "ubench", True, None, HORIZON)
        assert cache.hits == 1
        assert again == metrics

    def test_roundtrip_is_bit_exact(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = small_key(cpu="x264")
        set_disk_cache(cache)
        metrics = run_workloads("x264", "ubench", True, None, HORIZON)
        restored = SystemMetrics.from_dict(
            json.loads(json.dumps(metrics.as_dict()))
        )
        assert restored == metrics
        clear_cache()
        assert cache_lookup(key) == metrics

    def test_fingerprint_change_invalidates(self, tmp_path):
        old = DiskCache(str(tmp_path), fingerprint="old-code")
        key = small_key()
        cache_store_key_via(old, key)
        assert old.get(key) is not None
        new = DiskCache(str(tmp_path), fingerprint="new-code")
        assert new.get(key) is None  # address differs: automatic invalidation
        assert new.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = small_key()
        cache_store_key_via(cache, key)
        with open(cache.path_for(key), "w") as handle:
            handle.write("{not json")
        assert cache.get(key) is None

    def test_tampered_fingerprint_field_rejected(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = small_key()
        cache_store_key_via(cache, key)
        path = cache.path_for(key)
        with open(path) as handle:
            entry = json.load(handle)
        entry["fingerprint"] = "someone-elses-code"
        with open(path, "w") as handle:
            json.dump(entry, handle)
        assert cache.get(key) is None

    def test_len_counts_entries(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        assert len(cache) == 0
        cache_store_key_via(cache, small_key())
        cache_store_key_via(cache, small_key(ssr=False))
        assert len(cache) == 2

    def test_code_fingerprint_is_cached_and_hexadecimal(self):
        fingerprint = code_fingerprint()
        assert fingerprint == code_fingerprint()
        int(fingerprint, 16)
        assert len(fingerprint) == 64

    def test_reset_code_fingerprint_clears_the_memo(self):
        from repro.core import reset_code_fingerprint
        from repro.core.runcache import code_fingerprint as fp

        before = fp()
        assert fp.cache_info().currsize == 1
        reset_code_fingerprint()
        assert fp.cache_info().currsize == 0
        # Same sources on disk: same digest, freshly recomputed.
        assert fp() == before

    def test_counters_are_thread_safe(self, tmp_path):
        import threading

        cache = DiskCache(str(tmp_path))
        hit_key = small_key()
        cache_store_key_via(cache, hit_key)
        miss_key = small_key(ssr=False)
        per_thread, threads = 200, 8

        def hammer():
            for _ in range(per_thread):
                assert cache.get(hit_key) is not None
                assert cache.get(miss_key) is None

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        hits, misses, stores = cache.stats()
        assert hits == per_thread * threads
        assert misses == per_thread * threads
        assert stores == 1


def cache_store_key_via(cache: DiskCache, key) -> None:
    """Simulate once (memoized) and persist through the given cache."""
    set_disk_cache(None)
    metrics = run_workloads(key[0], key[1], key[2], key[3], key[4])
    cache.put(key, metrics)
