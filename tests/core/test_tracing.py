"""Unit tests for SSR chain tracing and latency breakdowns."""

import pytest

from repro.config import SystemConfig
from repro.core import (
    STAGE_SEQUENCE,
    System,
    format_breakdown,
    latency_breakdown,
    total_mean_latency_ns,
)
from repro.iommu.request import SSR_CATALOG, SsrRequest
from repro.workloads import gpu_app


@pytest.fixture(scope="module")
def traced_system():
    system = System(SystemConfig())
    system.add_gpu_workload(gpu_app("xsbench"))
    system.run(8_000_000)
    return system


class TestStageStamps:
    def test_completed_requests_recorded(self, traced_system):
        assert len(traced_system.iommu.recent_completed) > 0

    def test_all_stages_stamped(self, traced_system):
        request = traced_system.iommu.recent_completed[-1]
        for stage in ("submitted", "accepted", "drained", "queued",
                      "service_start", "completed"):
            assert stage in request.stages, stage

    def test_stages_monotone(self, traced_system):
        order = ["submitted", "accepted", "drained", "queued",
                 "service_start", "completed"]
        for request in traced_system.iommu.recent_completed:
            times = [request.stages[s] for s in order if s in request.stages]
            assert times == sorted(times)

    def test_stage_delta_matches_latency(self, traced_system):
        request = traced_system.iommu.recent_completed[-1]
        assert request.stage_delta("submitted", "completed") == pytest.approx(
            request.latency_ns, abs=1
        )


class TestBreakdown:
    def test_breakdown_covers_all_stages(self, traced_system):
        breakdown = latency_breakdown(traced_system.iommu.recent_completed)
        assert len(breakdown) == len(STAGE_SEQUENCE)
        assert all(stage.samples > 0 for stage in breakdown)

    def test_stage_means_sum_to_total(self, traced_system):
        requests = list(traced_system.iommu.recent_completed)
        breakdown = latency_breakdown(requests)
        total = total_mean_latency_ns(requests)
        assert sum(stage.mean_ns for stage in breakdown) == pytest.approx(
            total, rel=0.02
        )

    def test_service_stage_at_least_service_cost(self, traced_system):
        breakdown = {s.name: s for s in latency_breakdown(
            traced_system.iommu.recent_completed
        )}
        config = SystemConfig().os_path
        assert breakdown["service"].mean_ns >= config.page_fault_service_ns

    def test_empty_population(self):
        breakdown = latency_breakdown([])
        assert all(stage.samples == 0 for stage in breakdown)
        assert total_mean_latency_ns([]) == 0.0

    def test_format_breakdown_renders(self, traced_system):
        text = format_breakdown(latency_breakdown(traced_system.iommu.recent_completed))
        assert "worker_scheduling" in text and "service" in text

    def test_missing_stage_skipped(self):
        request = SsrRequest(
            request_id=1, kind=SSR_CATALOG["signal"], issued_at=0
        )
        request.stages = {"submitted": 0, "completed": 100}
        breakdown = {s.name: s for s in latency_breakdown([request])}
        assert breakdown["ppr_queue_wait"].samples == 0


class TestPercentiles:
    def test_percentiles_ordered_and_bounded(self, traced_system):
        breakdown = latency_breakdown(traced_system.iommu.recent_completed)
        for stage in breakdown:
            if stage.samples == 0:
                continue
            assert stage.p50_ns <= stage.p95_ns <= stage.p99_ns <= stage.max_ns
        # The service stage always has real latency (>= the service cost).
        service = next(s for s in breakdown if s.name == "service")
        assert service.p50_ns > 0

    def test_percentiles_default_to_zero_when_empty(self):
        for stage in latency_breakdown([]):
            assert stage.p50_ns == stage.p95_ns == stage.p99_ns == 0.0

    def test_single_sample_percentiles_collapse(self):
        request = SsrRequest(request_id=1, kind=SSR_CATALOG["signal"], issued_at=0)
        request.stages = {"service_start": 0, "completed": 4000}
        breakdown = {s.name: s for s in latency_breakdown([request])}
        service = breakdown["service"]
        assert service.p50_ns == service.p95_ns == service.p99_ns == 4000.0

    def test_format_breakdown_appends_percentile_columns(self, traced_system):
        text = format_breakdown(latency_breakdown(traced_system.iommu.recent_completed))
        header = text.splitlines()[0]
        # Legacy columns keep their order; percentiles are appended.
        assert header.index("mean_us") < header.index("max_us") < header.index(
            "samples"
        ) < header.index("p50_us") < header.index("p95_us") < header.index("p99_us")
