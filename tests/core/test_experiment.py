"""Unit tests for the experiment runner and caching."""

import pytest

from repro.config import SystemConfig
from repro.core import experiment
from repro.core.experiment import (
    clear_cache,
    cpu_relative_performance,
    gpu_relative_performance,
    run_workloads,
)

HORIZON = 4_000_000


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunWorkloads:
    def test_cache_hit_returns_same_object(self):
        first = run_workloads("swaptions", "xsbench", True, horizon_ns=HORIZON)
        second = run_workloads("swaptions", "xsbench", True, horizon_ns=HORIZON)
        assert first is second

    def test_distinct_configs_not_conflated(self):
        default = run_workloads(None, "xsbench", True, horizon_ns=HORIZON)
        steered = run_workloads(
            None,
            "xsbench",
            True,
            SystemConfig().with_mitigation(steer_to_single_core=True),
            horizon_ns=HORIZON,
        )
        assert default is not steered

    def test_gpu_only_run(self):
        metrics = run_workloads(None, "ubench", True, horizon_ns=HORIZON)
        assert metrics.cpu_app is None
        assert metrics.gpu.faults_completed > 0

    def test_cpu_only_run(self):
        metrics = run_workloads("vips", None, True, horizon_ns=HORIZON)
        assert metrics.gpu is None
        assert metrics.cpu_app.instructions > 0


class TestNormalizedQuantities:
    def test_cpu_relative_performance_below_one_under_storm(self):
        value = cpu_relative_performance("x264", "ubench", horizon_ns=HORIZON)
        assert 0.2 < value < 0.95

    def test_cpu_relative_performance_without_ssrs_is_unity(self):
        # Normalizing a run against itself must give exactly 1.
        base = run_workloads("x264", "ubench", False, horizon_ns=HORIZON)
        assert base.cpu_app.instructions / base.cpu_app.instructions == 1.0

    def test_gpu_relative_performance_bounded(self):
        value = gpu_relative_performance("sssp", "streamcluster", horizon_ns=HORIZON)
        assert 0.3 < value <= 1.3
