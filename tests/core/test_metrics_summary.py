"""Tests for the human-readable metrics summary."""

from repro.config import SystemConfig
from repro.core import System
from repro.workloads import gpu_app, parsec


class TestSummary:
    def test_summary_covers_all_sections(self):
        config = SystemConfig().with_qos(enabled=True, ssr_time_threshold=0.01)
        system = System(config)
        system.add_cpu_app(parsec("swaptions"))
        system.add_gpu_workload(gpu_app("ubench"))
        metrics = system.run(6_000_000)
        text = metrics.summary()
        assert "swaptions" in text
        assert "ubench" in text
        assert "cc6" in text
        assert "qos:" in text
        assert "QoS(th_1)" in text

    def test_summary_without_workloads(self):
        metrics = System(SystemConfig()).run(1_000_000)
        text = metrics.summary()
        assert "Default" in text
        assert "gpu" not in text.splitlines()[1] if len(text.splitlines()) > 1 else True

    def test_summary_no_qos_line_when_untriggered(self):
        system = System(SystemConfig())
        system.add_gpu_workload(gpu_app("bfs"))
        metrics = system.run(3_000_000)
        assert "qos:" not in metrics.summary()
