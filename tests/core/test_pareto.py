"""Unit tests for Pareto-frontier analysis."""

from repro.core import ParetoPoint, dominates, frontier_labels, pareto_frontier


def p(label, cpu, gpu):
    return ParetoPoint(label=label, cpu_performance=cpu, gpu_performance=gpu)


class TestDominates:
    def test_strictly_better_dominates(self):
        assert dominates(p("a", 2, 2), p("b", 1, 1))

    def test_better_on_one_axis_dominates(self):
        assert dominates(p("a", 2, 1), p("b", 1, 1))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(p("a", 1, 1), p("b", 1, 1))

    def test_tradeoff_points_incomparable(self):
        assert not dominates(p("a", 2, 1), p("b", 1, 2))
        assert not dominates(p("b", 1, 2), p("a", 2, 1))


class TestFrontier:
    def test_dominated_point_excluded(self):
        points = [p("good", 2, 2), p("bad", 1, 1)]
        assert frontier_labels(points) == ["good"]

    def test_tradeoff_curve_fully_kept(self):
        points = [p("cpu-best", 3, 1), p("mid", 2, 2), p("gpu-best", 1, 3)]
        assert frontier_labels(points) == ["gpu-best", "mid", "cpu-best"]

    def test_frontier_sorted_by_cpu_performance(self):
        points = [p("a", 3, 1), p("b", 1, 3), p("c", 2, 2)]
        frontier = pareto_frontier(points)
        values = [point.cpu_performance for point in frontier]
        assert values == sorted(values)

    def test_paper_shape_default_not_optimal(self):
        """The key Figure 7/8 observation: a point can be dominated even if
        it is nobody's favourite axis."""
        default = p("Default", 1.0, 1.0)
        steer_coalesce = p("Steer+Coalesce", 1.10, 1.45)
        mono = p("Monolithic", 0.95, 2.0)
        frontier = frontier_labels([default, steer_coalesce, mono])
        assert "Default" not in frontier
        assert "Steer+Coalesce" in frontier
        assert "Monolithic" in frontier

    def test_single_point_is_frontier(self):
        assert frontier_labels([p("only", 1, 1)]) == ["only"]

    def test_duplicates_survive(self):
        points = [p("a", 2, 2), p("b", 2, 2)]
        assert set(frontier_labels(points)) == {"a", "b"}
