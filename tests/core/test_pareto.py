"""Unit tests for Pareto-frontier analysis."""

import itertools

import pytest

from repro.core import (
    ParetoPoint,
    dominates,
    frontier_labels,
    pareto_frontier,
    pareto_frontier_map,
    vector_dominates,
)


def p(label, cpu, gpu):
    return ParetoPoint(label=label, cpu_performance=cpu, gpu_performance=gpu)


class TestDominates:
    def test_strictly_better_dominates(self):
        assert dominates(p("a", 2, 2), p("b", 1, 1))

    def test_better_on_one_axis_dominates(self):
        assert dominates(p("a", 2, 1), p("b", 1, 1))

    def test_equal_points_do_not_dominate(self):
        assert not dominates(p("a", 1, 1), p("b", 1, 1))

    def test_tradeoff_points_incomparable(self):
        assert not dominates(p("a", 2, 1), p("b", 1, 2))
        assert not dominates(p("b", 1, 2), p("a", 2, 1))


class TestFrontier:
    def test_dominated_point_excluded(self):
        points = [p("good", 2, 2), p("bad", 1, 1)]
        assert frontier_labels(points) == ["good"]

    def test_tradeoff_curve_fully_kept(self):
        points = [p("cpu-best", 3, 1), p("mid", 2, 2), p("gpu-best", 1, 3)]
        assert frontier_labels(points) == ["gpu-best", "mid", "cpu-best"]

    def test_frontier_sorted_by_cpu_performance(self):
        points = [p("a", 3, 1), p("b", 1, 3), p("c", 2, 2)]
        frontier = pareto_frontier(points)
        values = [point.cpu_performance for point in frontier]
        assert values == sorted(values)

    def test_paper_shape_default_not_optimal(self):
        """The key Figure 7/8 observation: a point can be dominated even if
        it is nobody's favourite axis."""
        default = p("Default", 1.0, 1.0)
        steer_coalesce = p("Steer+Coalesce", 1.10, 1.45)
        mono = p("Monolithic", 0.95, 2.0)
        frontier = frontier_labels([default, steer_coalesce, mono])
        assert "Default" not in frontier
        assert "Steer+Coalesce" in frontier
        assert "Monolithic" in frontier

    def test_single_point_is_frontier(self):
        assert frontier_labels([p("only", 1, 1)]) == ["only"]

    def test_identical_vectors_collapse_deterministically(self):
        """Ties on both axes dedup to the lexicographically smallest label."""
        points = [p("b", 2, 2), p("a", 2, 2)]
        assert frontier_labels(points) == ["a"]
        assert frontier_labels(list(reversed(points))) == ["a"]

    def test_insertion_order_never_changes_the_frontier(self):
        """Regression: the frontier is a pure function of the point *set*."""
        points = [p("tie1", 2, 2), p("tie2", 2, 2), p("cpu", 3, 1),
                  p("gpu", 1, 3), p("dom", 1, 1)]
        expected = frontier_labels(points)
        for order in itertools.permutations(points):
            assert frontier_labels(list(order)) == expected
        assert expected == ["gpu", "tie1", "cpu"]

    def test_conflicting_points_sharing_a_label_rejected(self):
        with pytest.raises(ValueError, match="conflicting"):
            pareto_frontier([p("a", 1, 1), p("a", 2, 2)])

    def test_exact_duplicate_points_are_harmless(self):
        assert frontier_labels([p("a", 2, 2), p("a", 2, 2)]) == ["a"]


class TestVectorLayer:
    def test_vector_dominates_basics(self):
        assert vector_dominates((2, 2, 2), (1, 2, 2))
        assert not vector_dominates((1, 1, 1), (1, 1, 1))
        assert not vector_dominates((2, 1), (1, 2))

    def test_vector_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            vector_dominates((1, 2), (1, 2, 3))

    def test_frontier_map_dedups_and_sorts(self):
        items = {"z": (2.0, 2.0), "a": (2.0, 2.0), "low": (1.0, 1.0),
                 "edge": (3.0, 0.5)}
        frontier = pareto_frontier_map(items)
        assert frontier == [("a", (2.0, 2.0)), ("edge", (3.0, 0.5))]

    def test_frontier_map_order_independent(self):
        items = [("c", (1.0, 3.0)), ("b", (2.0, 2.0)), ("a", (3.0, 1.0)),
                 ("dup", (2.0, 2.0)), ("dom", (0.5, 0.5))]
        expected = pareto_frontier_map(dict(items))
        for order in itertools.permutations(items):
            assert pareto_frontier_map(dict(order)) == expected

    def test_frontier_map_supports_many_dimensions(self):
        items = {"a": (1.0, 1.0, 1.0, 9.0), "b": (2.0, 2.0, 2.0, 1.0),
                 "dominated": (1.0, 1.0, 1.0, 1.0)}
        labels = [label for label, _vector in pareto_frontier_map(items)]
        assert labels == ["a", "b"]
