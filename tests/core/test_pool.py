"""Tests for the warm execution backend: pool mechanics, equivalence,
crash isolation, and cost-model dispatch ordering.

The acceptance bar is the module's contract: warm-pool, cold-pool, and
serial results are byte-for-byte identical, a second batch spawns zero
new workers, and a failed run fails only itself.
"""

import json
import os

import pytest

from repro.config import SystemConfig
from repro.core import (
    clear_cache,
    execute_runs,
    make_run_key,
    order_longest_first,
    plan_runs,
    run_key_digest,
    set_cost_ledger,
    set_disk_cache,
    shared_pool,
    shared_pool_stats,
    shutdown_shared_pool,
)
from repro.core.experiment import cache_lookup
from repro.core.pool import TaskResult, WorkerPool
from repro.core.runcache import DEFAULT_COST_RATE, CostModel
from repro.experiments.common import UNPLANNABLE

HORIZON = 1_000_000
CPUS = ["x264", "blackscholes"]
GPUS = ["bfs", "ubench"]


@pytest.fixture(autouse=True)
def isolated_everything():
    """Fresh caches, fresh cost model, no leftover resident workers."""
    clear_cache()
    set_disk_cache(None)
    set_cost_ledger(None)
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()
    clear_cache()
    set_disk_cache(None)
    set_cost_ledger(None)


def kwargs_for(experiment_id: str) -> dict:
    kwargs = {"horizon_ns": HORIZON}
    if experiment_id in ("fig3a", "fig3b"):
        kwargs["cpu_names"] = CPUS
        kwargs["gpu_names"] = GPUS
    if experiment_id == "fig4":
        kwargs["gpu_names"] = GPUS
    return kwargs


def fig4_keys():
    keys, skipped = plan_runs(["fig4"], kwargs_for, unplannable=UNPLANNABLE)
    assert keys and skipped == []
    return keys


def snapshot(keys) -> dict:
    """Byte-exact view of the memory cache for ``keys``."""
    return {
        run_key_digest(key): json.dumps(
            cache_lookup(key).as_dict(), sort_keys=True
        )
        for key in keys
    }


# ----------------------------------------------------------------------
# Lightweight runners for direct pool-mechanics tests (module-level so
# fork workers can resolve them by reference).
# ----------------------------------------------------------------------
def echo_task(value):
    return value * 2


def faulty_task(value):
    if value == 2:
        raise ValueError(f"injected failure for value {value}")
    return value * 2


def deadly_task(value):
    if value == 1:
        os._exit(3)
    return value * 2


class TestWorkerPool:
    """Direct pool mechanics with trivial runners (no simulation)."""

    def make_pool(self, workers, **kwargs):
        kwargs.setdefault("start_method", "fork")
        kwargs.setdefault("recycle_after", 0)
        return WorkerPool(workers, **kwargs)

    def test_batch_returns_every_result(self):
        pool = self.make_pool(2, runner=echo_task)
        try:
            results = pool.run_batch([(i,) for i in range(6)])
            assert len(results) == 6
            assert all(isinstance(r, TaskResult) and r.ok for r in results)
            by_index = {r.index: r.payload for r in results}
            assert by_index == {i: i * 2 for i in range(6)}
            assert pool.stats.tasks_completed == 6
            assert pool.stats.spawned_workers == 2
        finally:
            pool.shutdown()

    def test_second_batch_reuses_workers(self):
        pool = self.make_pool(2, runner=echo_task)
        try:
            pool.run_batch([(i,) for i in range(4)])
            assert pool.stats.warm_hits == 0  # everyone spawned this batch
            pool.run_batch([(i,) for i in range(4)])
            assert pool.stats.spawned_workers == 2  # nobody new
            assert pool.stats.batches == 2
            assert pool.stats.warm_hits == 4  # all of batch 2 served warm
            assert pool.stats.warm_hit_ratio == pytest.approx(0.5)
        finally:
            pool.shutdown()

    def test_worker_recycles_after_n_tasks(self):
        pool = self.make_pool(1, recycle_after=2, runner=echo_task)
        try:
            results = pool.run_batch([(i,) for i in range(5)])
            assert sorted(r.payload for r in results) == [0, 2, 4, 6, 8]
            # 5 tasks at 2-per-life: two planned retirements, three spawns.
            assert pool.stats.recycled_workers == 2
            assert pool.stats.spawned_workers == 3
            assert pool.stats.crashed_workers == 0
        finally:
            pool.shutdown()

    def test_task_exception_fails_only_that_task(self):
        pool = self.make_pool(2, runner=faulty_task)
        try:
            results = pool.run_batch([(1,), (2,), (3,)])
            failed = [r for r in results if not r.ok]
            assert len(failed) == 1
            assert "ValueError" in failed[0].error
            assert "injected failure for value 2" in failed[0].error
            assert sorted(r.payload for r in results if r.ok) == [2, 6]
            assert pool.stats.tasks_failed == 1
            assert pool.stats.crashed_workers == 0  # the worker survived
        finally:
            pool.shutdown()

    def test_worker_death_fails_only_its_task(self):
        pool = self.make_pool(2, runner=deadly_task)
        try:
            results = pool.run_batch([(0,), (1,), (2,)])
            failed = [r for r in results if not r.ok]
            assert len(failed) == 1
            assert "died with exit code 3" in failed[0].error
            assert sorted(r.payload for r in results if r.ok) == [0, 4]
            assert pool.stats.crashed_workers >= 1
            # The pool is still serviceable after the crash.
            again = pool.run_batch([(0,), (2,)])
            assert all(r.ok for r in again)
        finally:
            pool.shutdown()

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestSharedPool:
    def test_shared_pool_is_a_singleton_per_worker_count(self):
        pool = shared_pool(2)
        assert shared_pool(2) is pool
        other = shared_pool(3)  # different strength: fresh pool
        assert other is not pool
        assert not pool.alive
        shutdown_shared_pool()
        assert not other.alive

    def test_stats_are_zero_without_a_pool(self):
        stats = shared_pool_stats()
        assert stats["spawned_workers"] == 0.0
        assert stats["live_workers"] == 0.0
        assert stats["warm_hit_ratio"] == 0.0


class TestWarmEquivalence:
    """Warm-pool, cold-pool, and serial runs agree byte for byte."""

    def test_serial_warm_cold_results_identical(self):
        keys = fig4_keys()
        report = execute_runs(keys, jobs=1)
        assert report.executed == len(keys) and not report.failed
        serial = snapshot(keys)

        # Warm: two batches through the resident pool.
        clear_cache()
        half = len(keys) // 2
        first = execute_runs(keys[:half], jobs=2)
        stats_after_first = shared_pool_stats()
        second = execute_runs(keys[half:], jobs=2)
        stats_after_second = shared_pool_stats()
        assert first.executed == half and second.executed == len(keys) - half
        assert not first.failed and not second.failed
        assert first.pool and second.pool  # warm path reports pool stats
        assert snapshot(keys) == serial

        # The second batch spawned nobody and ran entirely warm.
        assert stats_after_first["spawned_workers"] == 2.0
        assert stats_after_second["spawned_workers"] == 2.0
        assert stats_after_second["batches"] == 2.0
        assert stats_after_second["warm_hits"] == float(len(keys) - half)

        # Cold: fresh executor per batch, resident pool untouched.
        clear_cache()
        shutdown_shared_pool()
        cold = execute_runs(keys, jobs=2, warm=False)
        assert cold.executed == len(keys) and not cold.failed
        assert cold.pool == {}
        assert shared_pool_stats()["spawned_workers"] == 0.0
        assert snapshot(keys) == serial

    def test_predicted_core_s_reported_before_execution(self):
        keys = fig4_keys()
        report = execute_runs(keys, jobs=1)
        # No observations yet: every key priced at the default rate.
        assert report.predicted_core_s == pytest.approx(
            len(keys) * HORIZON * DEFAULT_COST_RATE
        )
        # The serial pass observed real timings; a re-run of the same
        # keys is all cache hits and predicts nothing.
        again = execute_runs(keys, jobs=1)
        assert again.executed == 0
        assert again.predicted_core_s == 0.0

    def test_summary_mentions_pool_when_warm(self):
        keys = fig4_keys()
        report = execute_runs(keys, jobs=2)
        assert "warm pool" in report.summary()
        assert "spawned" in report.summary()


class TestCrashIsolation:
    """A key that cannot simulate fails alone; the batch completes."""

    BOGUS = make_run_key("not-a-real-app", "bfs", True, SystemConfig(), HORIZON)

    def test_serial_path_isolates_the_failure(self):
        keys = fig4_keys()
        report = execute_runs([self.BOGUS] + keys, jobs=1)
        assert report.executed == len(keys)
        assert len(report.failed) == 1
        failed_key, error = report.failed[0]
        assert failed_key == self.BOGUS
        assert "not-a-real-app" in error
        assert all(cache_lookup(key) is not None for key in keys)
        assert cache_lookup(self.BOGUS) is None
        assert "FAILED" in report.summary()

    def test_warm_pool_path_isolates_the_failure(self):
        keys = fig4_keys()
        report = execute_runs([self.BOGUS] + keys, jobs=2)
        assert report.executed == len(keys)
        assert len(report.failed) == 1
        assert report.failed[0][0] == self.BOGUS
        assert "not-a-real-app" in report.failed[0][1]
        assert all(cache_lookup(key) is not None for key in keys)


class TestCostModel:
    KEY = make_run_key("x264", "bfs", True, SystemConfig(), HORIZON)

    def test_fallback_chain(self):
        model = CostModel()
        # 1. Nothing observed: default rate x horizon.
        assert model.predict(self.KEY) == pytest.approx(
            HORIZON * DEFAULT_COST_RATE
        )
        model.observe(self.KEY, 2.0)
        # 2. Exact digest: the observed mean, horizon-independent.
        assert model.predict(self.KEY) == pytest.approx(2.0)
        model.observe(self.KEY, 4.0)
        assert model.predict(self.KEY) == pytest.approx(3.0)
        # 3. Same (cpu, gpu, ssr) at another horizon: observed rate.
        doubled = make_run_key("x264", "bfs", True, SystemConfig(), HORIZON * 2)
        assert model.predict(doubled) == pytest.approx(6.0)
        # 4. Unseen pairing: global rate.
        stranger = make_run_key(
            "blackscholes", "ubench", False, SystemConfig(), HORIZON
        )
        assert model.predict(stranger) == pytest.approx(3.0)

    def test_nonpositive_observations_ignored(self):
        model = CostModel()
        model.observe(self.KEY, 0.0)
        model.observe(self.KEY, -1.0)
        assert model.observations == 0
        assert model.predict(self.KEY) == pytest.approx(
            HORIZON * DEFAULT_COST_RATE
        )

    def test_ledger_roundtrip(self, tmp_path):
        path = str(tmp_path / "cost_ledger.jsonl")
        writer = CostModel(path)
        writer.observe(self.KEY, 2.5)
        reader = CostModel(path)
        assert reader.observations == 1
        assert reader.predict(self.KEY) == pytest.approx(2.5)

    def test_ledger_tolerates_torn_lines(self, tmp_path):
        path = tmp_path / "cost_ledger.jsonl"
        CostModel(str(path)).observe(self.KEY, 1.5)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"digest": "truncat')  # crashed writer
        survivor = CostModel(str(path))
        assert survivor.observations == 1
        assert survivor.predict(self.KEY) == pytest.approx(1.5)


class TestDispatchOrder:
    def test_order_is_deterministic_without_observations(self):
        keys = fig4_keys()
        first = order_longest_first(keys)
        second = order_longest_first(list(reversed(keys)))
        assert first == second
        assert sorted(first, key=run_key_digest) == first  # digest tie-break
        assert set(first) == set(keys)

    def test_observed_long_runs_dispatch_first(self):
        from repro.core.runcache import cost_model

        keys = fig4_keys()
        model = cost_model()
        slow, fast = keys[-1], keys[0]
        model.observe(slow, 30.0)
        model.observe(fast, 0.01)
        ordered = order_longest_first(keys)
        assert ordered[0] == slow
        assert ordered[-1] == fast
