"""Unit tests for metric containers and aggregation."""

import pytest

from repro.core.metrics import CpuAppMetrics, GpuMetrics, SystemMetrics, geomean


def _gpu(name="sssp", progress=1000.0, completed=10):
    return GpuMetrics(
        name=name,
        progress_ns=progress,
        faults_issued=completed,
        faults_completed=completed,
        stall_ns=0.0,
        mean_ssr_latency_ns=100.0,
        max_ssr_latency_ns=200.0,
    )


def _metrics(**overrides):
    base = dict(
        horizon_ns=1_000_000,
        config_label="Default",
        cpu_app=None,
        gpu=None,
        cc6_residency=0.5,
        mode_totals_ns={},
        interrupts_per_core=[10, 10, 10, 10],
        ipis=5,
        ssr_interrupts=8,
        ssr_requests=8,
        ssr_time_ns=100_000.0,
        ssr_completed=8,
        context_switches=3,
        core_wakeups=2,
    )
    base.update(overrides)
    return SystemMetrics(**base)


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geomean([4.0, 0.0, -1.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0


class TestGpuMetrics:
    def test_real_app_metric_is_progress(self):
        assert _gpu(name="sssp", progress=777.0).performance_metric() == 777.0

    def test_ubench_metric_is_fault_count(self):
        gpu = _gpu(name="ubench", progress=777.0, completed=42)
        assert gpu.performance_metric() == 42.0


class TestSystemMetrics:
    def test_total_interrupts(self):
        assert _metrics().total_interrupts == 40

    def test_ssr_time_fraction(self):
        metrics = _metrics(ssr_time_ns=400_000.0)
        assert metrics.ssr_time_fraction == pytest.approx(0.1)

    def test_interrupt_balance_even(self):
        assert _metrics().interrupt_balance() == pytest.approx(1.0)

    def test_interrupt_balance_skewed(self):
        metrics = _metrics(interrupts_per_core=[40, 0, 0, 0])
        assert metrics.interrupt_balance() == pytest.approx(4.0)

    def test_balance_with_no_interrupts(self):
        metrics = _metrics(interrupts_per_core=[0, 0, 0, 0])
        assert metrics.interrupt_balance() == 0.0
