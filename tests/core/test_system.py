"""Unit tests for System assembly and metric extraction."""

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.workloads import gpu_app, parsec


class TestAssembly:
    def test_runs_empty_system(self):
        metrics = System(SystemConfig()).run(2_000_000)
        assert metrics.cpu_app is None
        assert metrics.gpu is None
        assert metrics.cc6_residency > 0.3

    def test_single_run_enforced(self):
        system = System(SystemConfig())
        system.run(100_000)
        with pytest.raises(RuntimeError):
            system.run(100_000)

    def test_qos_governor_created_when_enabled(self):
        config = SystemConfig().with_qos(enabled=True, ssr_time_threshold=0.05)
        system = System(config)
        assert system.kernel.qos_governor is not None

    def test_no_governor_by_default(self):
        assert System(SystemConfig()).kernel.qos_governor is None

    def test_multiple_gpus_allowed(self):
        from dataclasses import replace

        system = System(SystemConfig())
        profile = gpu_app("xsbench")
        system.add_gpu_workload(replace(profile, name="xs0"))
        system.add_gpu_workload(replace(profile, name="xs1"))
        metrics = system.run(3_000_000)
        assert len(system.gpus) == 2
        assert metrics.ssr_requests > 0


class TestMetricsExtraction:
    def test_pair_metrics_populated(self):
        system = System(SystemConfig())
        system.add_cpu_app(parsec("swaptions"))
        system.add_gpu_workload(gpu_app("xsbench"))
        metrics = system.run(5_000_000)
        assert metrics.cpu_app.name == "swaptions"
        assert metrics.cpu_app.instructions > 0
        assert metrics.gpu.name == "xsbench"
        assert metrics.gpu.progress_ns > 0
        assert metrics.ssr_completed > 0
        assert metrics.config_label == "Default"

    def test_mode_totals_conserve_time(self):
        system = System(SystemConfig())
        system.add_cpu_app(parsec("vips"))
        system.add_gpu_workload(gpu_app("sssp"))
        horizon = 5_000_000
        metrics = system.run(horizon)
        total = sum(metrics.mode_totals_ns.values())
        assert total == pytest.approx(horizon * 4, rel=1e-9)

    def test_config_label_reflects_mitigations(self):
        config = SystemConfig().with_mitigation(
            steer_to_single_core=True, coalesce_window_ns=13_000
        )
        system = System(config)
        metrics = system.run(100_000)
        assert "Intr_to_single_core" in metrics.config_label
        assert "Intr_coalescing" in metrics.config_label
