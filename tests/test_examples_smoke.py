"""Smoke tests: every example script runs end to end (tiny horizons).

Examples are part of the public surface; these tests keep them honest.
Each runs in a subprocess exactly as a user would invoke it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "4")
        assert "relative performance" in out
        assert "CC6 sleep residency" in out

    def test_mitigation_explorer(self):
        out = run_example("mitigation_explorer.py", "swaptions", "sssp", "5")
        assert "Pareto optimal" in out
        assert "Default" in out

    def test_qos_capacity_planning(self):
        out = run_example("qos_capacity_planning.py", "swaptions", "5")
        assert "threshold" in out
        assert "1%" in out

    def test_accelerator_rich_future(self):
        out = run_example("accelerator_rich_future.py", "swaptions", "xsbench", "2")
        assert "Without QoS" in out
        assert "With the QoS governor" in out

    def test_ssr_latency_anatomy(self):
        out = run_example("ssr_latency_anatomy.py")
        assert "page_fault" in out
        assert "monolithic" in out.lower()

    def test_collaborative_pipeline(self):
        out = run_example("collaborative_pipeline.py", "6")
        assert "batches consumed" in out
        assert "signal" in out

    def test_service_quickstart(self):
        out = run_example("service_quickstart.py", "1")
        assert "queue depth" in out
        assert "qos fraction" in out
        assert "deduplicated=True" in out
        assert "drained and stopped." in out
