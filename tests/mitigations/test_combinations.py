"""Unit tests for mitigation configuration builders."""

import itertools

import pytest

from repro.config import COALESCE_WINDOW_PAPER_NS, SystemConfig
from repro.core import make_run_key
from repro.core.runcache import run_key_digest, run_key_document
from repro.mitigations import (
    ALL_COMBINATIONS,
    apply_mitigations,
    coalescing,
    combination,
    monolithic,
    steering,
)


class TestBuilders:
    def test_steering(self):
        config = steering(SystemConfig(), target=2)
        assert config.mitigation.steer_to_single_core
        assert config.mitigation.steering_target == 2

    def test_coalescing_defaults_to_paper_window(self):
        config = coalescing(SystemConfig())
        assert config.mitigation.coalesce_window_ns == COALESCE_WINDOW_PAPER_NS

    def test_monolithic(self):
        assert monolithic(SystemConfig()).mitigation.monolithic_bottom_half

    def test_builders_do_not_mutate_input(self):
        base = SystemConfig()
        steering(base)
        assert not base.mitigation.steer_to_single_core

    def test_apply_all(self):
        config = apply_mitigations(SystemConfig(), steer=True, coalesce=True, mono=True)
        mitigation = config.mitigation
        assert mitigation.steer_to_single_core
        assert mitigation.coalesce_window_ns > 0
        assert mitigation.monolithic_bottom_half


class TestCombinations:
    def test_eight_combinations(self):
        assert len(ALL_COMBINATIONS) == 8

    def test_default_is_identity(self):
        assert combination(SystemConfig(), "Default") == SystemConfig()

    def test_labels_round_trip(self):
        for label in ALL_COMBINATIONS:
            config = combination(SystemConfig(), label)
            assert config.mitigation.label == label

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            combination(SystemConfig(), "Sorcery")

    def test_combinations_are_distinct(self):
        configs = {combination(SystemConfig(), label) for label in ALL_COMBINATIONS}
        assert len(configs) == 8


class TestCombinationIdentity:
    """The properties the search archive and run cache lean on."""

    def test_flags_are_the_full_boolean_cross_product(self):
        flags = set(ALL_COMBINATIONS.values())
        assert flags == set(itertools.product((False, True), repeat=3))

    def test_stable_digests_all_distinct(self):
        digests = {
            combination(SystemConfig(), label).stable_digest()
            for label in ALL_COMBINATIONS
        }
        assert len(digests) == len(ALL_COMBINATIONS)

    def test_stable_digest_ignores_construction_path(self):
        """The same semantic config digests identically however it is built."""
        via_label = combination(SystemConfig(), "Intr_to_single_core + Intr_coalescing")
        via_flags = apply_mitigations(SystemConfig(), steer=True, coalesce=True)
        via_builders = coalescing(steering(SystemConfig()))
        assert via_label.stable_digest() == via_flags.stable_digest()
        # Builders do not stamp the combination label, but the digest is
        # over semantics plus label — so only the labeled paths collide.
        assert via_builders.mitigation.steer_to_single_core
        assert via_builders.mitigation.coalesce_window_ns > 0

    def test_run_key_canonicalization_round_trip(self):
        """A run key's document round-trips and digests stably per combo."""
        fingerprint = "test-fingerprint"
        digests = set()
        for label in ALL_COMBINATIONS:
            config = combination(SystemConfig(), label)
            key = make_run_key("x264", "ubench", True, config, 1_000_000)
            document = run_key_document(key, fingerprint)
            assert document["cpu"] == "x264"
            assert document["gpu"] == "ubench"
            digest = run_key_digest(key, fingerprint)
            rebuilt = make_run_key("x264", "ubench", True, config, 1_000_000)
            assert run_key_digest(rebuilt, fingerprint) == digest
            digests.add(digest)
        assert len(digests) == len(ALL_COMBINATIONS)


class TestFigureGridAlignment:
    """The 8-combination grid is exactly what Figs. 6-8 draw from."""

    def test_fig7_defaults_to_the_full_grid(self):
        """Planning fig7 with defaults touches all eight combination configs."""
        from repro.core.experiment import planning
        from repro.experiments.fig7_pareto_ubench import run as fig7_run

        with planning() as keys:
            fig7_run(cpu_names=["x264"], horizon_ns=1_000_000)
        planned_labels = {key[3].mitigation.label for key in keys}
        expected = {
            combination(SystemConfig(), label).mitigation.label
            for label in ALL_COMBINATIONS
        }
        assert expected <= planned_labels

    def test_fig8_combos_are_a_subset_of_the_grid(self):
        from repro.experiments.fig8_pareto_apps import PAPER_FIG8_COMBOS

        assert set(PAPER_FIG8_COMBOS) <= set(ALL_COMBINATIONS)
        assert len(PAPER_FIG8_COMBOS) == len(set(PAPER_FIG8_COMBOS))

    def test_fig6_builders_match_single_mitigation_combos(self):
        from repro.experiments.fig6_mitigations import _BUILDERS

        matching = {
            "steering": "Intr_to_single_core",
            "coalescing": "Intr_coalescing",
            "monolithic": "Monolithic_bottom_half",
        }
        assert set(_BUILDERS) == set(matching)
        for builder_name, label in matching.items():
            built = _BUILDERS[builder_name](SystemConfig())
            combo = combination(SystemConfig(), label)
            assert built.mitigation == combo.mitigation


class TestConfigHelpers:
    def test_with_qos(self):
        config = SystemConfig().with_qos(enabled=True, ssr_time_threshold=0.05)
        assert config.qos.enabled
        assert config.label.endswith("QoS(th_5)")

    def test_with_seed(self):
        assert SystemConfig().with_seed(7).seed == 7

    def test_system_label_default(self):
        assert SystemConfig().label == "Default"
