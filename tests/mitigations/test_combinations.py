"""Unit tests for mitigation configuration builders."""

import pytest

from repro.config import COALESCE_WINDOW_PAPER_NS, SystemConfig
from repro.mitigations import (
    ALL_COMBINATIONS,
    apply_mitigations,
    coalescing,
    combination,
    monolithic,
    steering,
)


class TestBuilders:
    def test_steering(self):
        config = steering(SystemConfig(), target=2)
        assert config.mitigation.steer_to_single_core
        assert config.mitigation.steering_target == 2

    def test_coalescing_defaults_to_paper_window(self):
        config = coalescing(SystemConfig())
        assert config.mitigation.coalesce_window_ns == COALESCE_WINDOW_PAPER_NS

    def test_monolithic(self):
        assert monolithic(SystemConfig()).mitigation.monolithic_bottom_half

    def test_builders_do_not_mutate_input(self):
        base = SystemConfig()
        steering(base)
        assert not base.mitigation.steer_to_single_core

    def test_apply_all(self):
        config = apply_mitigations(SystemConfig(), steer=True, coalesce=True, mono=True)
        mitigation = config.mitigation
        assert mitigation.steer_to_single_core
        assert mitigation.coalesce_window_ns > 0
        assert mitigation.monolithic_bottom_half


class TestCombinations:
    def test_eight_combinations(self):
        assert len(ALL_COMBINATIONS) == 8

    def test_default_is_identity(self):
        assert combination(SystemConfig(), "Default") == SystemConfig()

    def test_labels_round_trip(self):
        for label in ALL_COMBINATIONS:
            config = combination(SystemConfig(), label)
            assert config.mitigation.label == label

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            combination(SystemConfig(), "Sorcery")

    def test_combinations_are_distinct(self):
        configs = {combination(SystemConfig(), label) for label in ALL_COMBINATIONS}
        assert len(configs) == 8


class TestConfigHelpers:
    def test_with_qos(self):
        config = SystemConfig().with_qos(enabled=True, ssr_time_threshold=0.05)
        assert config.qos.enabled
        assert config.label.endswith("QoS(th_5)")

    def test_with_seed(self):
        assert SystemConfig().with_seed(7).seed == 7

    def test_system_label_default(self):
        assert SystemConfig().label == "Default"
