"""Every hiss-* console script answers ``--version`` the same way.

One line, two facts: package version and the runcache code fingerprint —
the digest that decides whether two hosts share cached runs.  The flag
must work on every entry point (argparse exits 0) and print the same
fingerprint everywhere.
"""

import pytest

import repro
from repro.version import version_line

MAINS = [
    ("hiss-experiments", "repro.experiments.run_all"),
    ("hiss-trace", "repro.telemetry.cli"),
    ("hiss-serve", "repro.service.daemon"),
    ("hiss-client", "repro.service.client"),
    ("hiss-top", "repro.service.top"),
    ("hiss-report", "repro.profiling.cli"),
    ("hiss-sweep", "repro.search.cli"),
    ("hiss-slo", "repro.obsd.cli"),
    ("hiss-postmortem", "repro.flight.cli"),
]


class TestVersionFlag:
    @pytest.mark.parametrize("prog,module", MAINS, ids=[m[0] for m in MAINS])
    def test_version_flag_exits_zero_and_prints_the_line(
        self, prog, module, capsys
    ):
        import importlib

        main = importlib.import_module(module).main
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out.strip()
        assert out == version_line(prog)

    def test_version_line_carries_version_and_fingerprint(self):
        from repro.core.runcache import code_fingerprint

        line = version_line("hiss-x")
        assert repro.__version__ in line
        assert code_fingerprint()[:12] in line
        assert line.startswith("hiss-x ")
