"""Unit tests for the idle thread and CC6 sleep behaviour."""

import pytest

from repro.oskernel import Irq, accounting as acct
from repro.oskernel.cpu import SLEEPING

from .conftest import BusyThread


class TestSleepEntry:
    def test_idle_cores_enter_cc6_after_grace(self, kernel):
        # Run past the housekeeping daemon's initial burst; between bursts
        # every core should be in CC6.
        kernel.env.run(until=3_000_000)
        assert all(core.is_sleeping for core in kernel.cores)

    def test_cc6_residency_accumulates(self, kernel):
        kernel.env.run(until=3_000_000)
        kernel.finalize()
        assert kernel.cc6_residency(3_000_000) > 0.5

    def test_busy_core_does_not_sleep(self, kernel):
        kernel.spawn(BusyThread(kernel, "hog", 10_000_000, pinned_core=0))
        kernel.env.run(until=3_000_000)
        assert not kernel.cores[0].is_sleeping

    def test_cache_flushed_on_entry(self, kernel):
        core = kernel.cores[0]
        core.uarch.l1d.access(0x1000, "someone")
        assert core.uarch.l1d.occupancy("someone") == 1
        kernel.env.run(until=2_000_000)
        assert core.is_sleeping
        assert core.uarch.l1d.occupancy("someone") == 0


class TestWakeup:
    def test_irq_wakes_sleeping_core(self, kernel):
        kernel.env.run(until=2_000_000)
        core = kernel.cores[1]
        assert core.is_sleeping
        handled = []
        core.deliver_irq(Irq(name="wake", handler_ns=1_000,
                             action=lambda c: handled.append(kernel.env.now)))
        kernel.env.run(until=2_300_000)
        assert handled, "IRQ was not handled after wake"
        # Exit latency was paid before handling.
        assert handled[0] >= 2_000_000 + kernel.config.cstate.exit_latency_ns

    def test_wakeup_counted(self, kernel):
        kernel.env.run(until=2_000_000)
        before = kernel.counters.get(acct.CTR_CORE_WAKEUP)
        kernel.cores[0].deliver_irq(Irq(name="wake", handler_ns=100))
        kernel.env.run(until=2_500_000)
        assert kernel.counters.get(acct.CTR_CORE_WAKEUP) > before

    def test_thread_wake_on_sleeping_core_pays_exit_latency(self, kernel):
        kernel.env.run(until=2_000_000)
        thread = kernel.spawn(BusyThread(kernel, "t", 1_000, iterations=1))
        kernel.env.run(until=2_050_000)
        # Thread cannot have finished before the CC6 exit latency elapsed.
        kernel.env.run(until=2_000_000 + kernel.config.cstate.exit_latency_ns + 500_000)
        assert thread.finished

    def test_wakeup_racing_entry_transition_is_not_lost(self, kernel):
        """A thread enqueued exactly during the CC6 entry window must still
        run (regression test for the lost-wakeup hazard)."""
        config = kernel.config.cstate
        # All cores idle; schedule a thread spawn right inside the entry window.
        entry_point = config.entry_grace_ns + config.entry_latency_ns // 2
        spawned = []
        kernel.env.call_later(
            entry_point,
            lambda: spawned.append(
                kernel.spawn(BusyThread(kernel, "racer", 10_000, iterations=1))
            ),
        )
        kernel.env.run(until=entry_point + 2_000_000)
        assert spawned and spawned[0].finished


class TestTransitionAccounting:
    def test_transition_time_recorded(self, kernel):
        kernel.env.run(until=3_000_000)
        kernel.finalize()
        assert kernel.accounting.total(acct.TRANSITION) > 0

    def test_time_conservation_idle_system(self, kernel):
        horizon = 5_000_000
        kernel.env.run(until=horizon)
        kernel.finalize()
        total = kernel.accounting.grand_total()
        assert total == pytest.approx(horizon * kernel.config.cpu.num_cores, rel=1e-9)
