"""Property-based tests: time conservation under randomized thread mixes.

The core accounting invariant of the whole simulator: every nanosecond of
every core lands in exactly one bucket, under any workload mix, preemption
pattern, or sleep schedule.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.oskernel import Kernel, accounting as acct
from repro.sim import Environment, RngRegistry

from .conftest import BusyThread

_thread_spec = st.tuples(
    st.integers(min_value=1_000, max_value=2_000_000),   # run_ns
    st.integers(min_value=0, max_value=1_000_000),       # sleep_ns
    st.sampled_from([None, 0, 1, 2, 3]),                 # pinned core
)


class TestTimeConservation:
    @given(specs=st.lists(_thread_spec, min_size=0, max_size=8),
           horizon_ms=st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_every_nanosecond_accounted(self, specs, horizon_ms):
        kernel = Kernel(Environment(), SystemConfig(), RngRegistry(7))
        kernel.boot()
        for index, (run_ns, sleep_ns, pinned) in enumerate(specs):
            kernel.spawn(
                BusyThread(
                    kernel, f"t{index}", run_ns, sleep_ns=sleep_ns, pinned_core=pinned
                )
            )
        horizon = horizon_ms * 1_000_000
        kernel.env.run(until=horizon)
        kernel.finalize()
        total = kernel.accounting.grand_total()
        expected = horizon * kernel.config.cpu.num_cores
        assert total == pytest.approx(expected, rel=1e-9)

    @given(specs=st.lists(_thread_spec, min_size=1, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_productive_time_bounded_by_user_bucket(self, specs):
        kernel = Kernel(Environment(), SystemConfig(), RngRegistry(3))
        kernel.boot()
        threads = [
            kernel.spawn(BusyThread(kernel, f"t{i}", run, sleep_ns=sleep, pinned_core=pin))
            for i, (run, sleep, pin) in enumerate(specs)
        ]
        kernel.env.run(until=5_000_000)
        kernel.finalize()
        productive = sum(t.productive_ns for t in threads)
        # Productive time excludes stalls, so it can't exceed USER time.
        assert productive <= kernel.accounting.total(acct.USER) + 1e-6

    @given(horizon_ms=st.integers(min_value=1, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_cc6_plus_awake_covers_horizon_when_idle(self, horizon_ms):
        kernel = Kernel(Environment(), SystemConfig(), RngRegistry(1))
        kernel.boot()
        horizon = horizon_ms * 1_000_000
        kernel.env.run(until=horizon)
        kernel.finalize()
        total = sum(kernel.accounting.total(mode) for mode in acct.ALL_MODES)
        assert total == pytest.approx(horizon * 4, rel=1e-9)
