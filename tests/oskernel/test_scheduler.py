"""Unit tests for thread placement and preemption policy."""

import pytest

from repro.oskernel import accounting as acct
from repro.oskernel.thread import (
    KIND_KTHREAD,
    PRIO_KTHREAD,
    PRIO_NORMAL,
    Thread,
)

from .conftest import BusyThread


class TestPlacement:
    def test_threads_spread_across_cores(self, kernel):
        threads = [
            kernel.spawn(BusyThread(kernel, f"t{i}", 10_000_000)) for i in range(4)
        ]
        kernel.env.run(until=1_000_000)
        cores = {t.core.id for t in threads if t.core is not None}
        assert len(cores) == 4

    def test_pinned_thread_stays_on_core(self, kernel):
        thread = kernel.spawn(
            BusyThread(kernel, "pinned", 100_000, sleep_ns=50_000, iterations=20,
                       pinned_core=2)
        )
        seen = set()

        original = thread.on_segment_start
        thread.on_segment_start = lambda core: seen.add(core.id)
        kernel.env.run(until=10_000_000)
        assert seen == {2}

    def test_affinity_keeps_thread_on_last_core(self, kernel):
        thread = kernel.spawn(
            BusyThread(kernel, "sticky", 200_000, sleep_ns=100_000, iterations=10)
        )
        seen = set()
        thread.on_segment_start = lambda core: seen.add(core.id)
        kernel.env.run(until=10_000_000)
        assert len(seen) == 1

    def test_kthread_rotation_visits_all_cores(self, kernel):
        """Wake-balance rotation drags kthreads across every core — the
        mechanism behind the paper's IPI storm and CC6 destruction."""

        class Bouncer(Thread):
            def __init__(self, kernel):
                super().__init__(kernel, "bouncer", kind=KIND_KTHREAD,
                                 priority=PRIO_KTHREAD)
                self.cores_seen = set()

            def body(self):
                for _ in range(12):
                    yield from self.run_for(10_000)
                    self.cores_seen.add(self.core.id if self.core else self.last_core_id)
                    if self.core is not None:
                        self._release_cpu(requeue=False)
                    yield from self.sleep(50_000)

        bouncer = kernel.spawn(Bouncer(kernel))
        kernel.env.run(until=5_000_000)
        assert bouncer.cores_seen == {0, 1, 2, 3}


class TestPreemption:
    def test_kthread_preempts_user_immediately(self, kernel):
        user = kernel.spawn(BusyThread(kernel, "user", 20_000_000))
        kernel.env.run(until=1_000_000)

        class Urgent(Thread):
            done_at = None

            def __init__(self, kernel):
                super().__init__(kernel, "urgent", kind=KIND_KTHREAD,
                                 priority=PRIO_KTHREAD)

            def body(self):
                yield from self.run_for(5_000)
                Urgent.done_at = self.env.now

        # Fill every core with users so the kthread must preempt.
        for i in range(3):
            kernel.spawn(BusyThread(kernel, f"extra{i}", 20_000_000))
        kernel.env.run(until=2_000_000)
        kernel.spawn(Urgent(kernel))
        kernel.env.run(until=3_000_000)
        assert Urgent.done_at is not None
        assert Urgent.done_at - 2_000_000 < 100_000  # near-immediate dispatch

    def test_same_priority_wakeup_bounded_by_granularity(self, kernel):
        for i in range(4):
            kernel.spawn(BusyThread(kernel, f"hog{i}", 50_000_000))
        kernel.env.run(until=2_000_000)
        waiter = kernel.spawn(BusyThread(kernel, "late", 10_000, iterations=1))
        kernel.env.run(until=4_000_000)
        assert waiter.finished
        granularity = kernel.config.scheduler.wakeup_granularity_ns
        # Started within a few granularity periods despite 4 busy hogs.
        assert waiter.productive_ns > 0

    def test_timeslice_rotation_shares_core(self, kernel):
        # Two threads pinned to one core must both make progress.
        a = kernel.spawn(BusyThread(kernel, "a", 30_000_000, pinned_core=0))
        b = kernel.spawn(BusyThread(kernel, "b", 30_000_000, pinned_core=0))
        kernel.env.run(until=12_000_000)
        kernel.finalize()
        assert a.productive_ns > 2_000_000
        assert b.productive_ns > 2_000_000
        total = a.productive_ns + b.productive_ns
        assert total == pytest.approx(12_000_000, rel=0.1)
