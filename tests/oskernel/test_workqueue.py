"""Unit tests for work queues and kworkers."""

import pytest

from repro.oskernel import WorkItem, accounting as acct

from .conftest import BusyThread


class TestQueueWork:
    def test_item_serviced_and_callback_runs(self, kernel):
        done = []
        item = WorkItem(name="w", service_ns=5_000, on_done=lambda k: done.append(k.env.now))
        kernel.workqueues.queue_work(0, item)
        kernel.env.run(until=1_000_000)
        assert len(done) == 1
        assert done[0] >= 5_000

    def test_local_core_preferred(self, kernel):
        target = kernel.workqueues.queue_work(2, WorkItem(name="w", service_ns=100))
        assert target == 2

    def test_spill_when_local_backlogged(self, kernel):
        # Saturate core 0's queue beyond the spill threshold.
        from repro.oskernel.workqueue import SPILL_BACKLOG_THRESHOLD

        targets = [
            kernel.workqueues.queue_work(0, WorkItem(name=f"w{i}", service_ns=100))
            for i in range(SPILL_BACKLOG_THRESHOLD + 3)
        ]
        assert set(targets) != {0}

    def test_queue_insertion_conserves_time(self, kernel):
        # Insertion cost is charged by the enqueuing context's timed work,
        # never directly (that would fabricate time).
        before = kernel.accounting.grand_total()
        kernel.workqueues.queue_work(1, WorkItem(name="w", service_ns=100))
        assert kernel.accounting.grand_total() == before

    def test_ssr_items_accumulate_ssr_time(self, kernel):
        before = kernel.ssr_accounting.total_ns
        kernel.workqueues.queue_work(
            0, WorkItem(name="w", service_ns=7_000, is_ssr=True)
        )
        kernel.env.run(until=1_000_000)
        assert kernel.ssr_accounting.total_ns >= before + 7_000

    def test_items_serviced_in_order_per_core(self, kernel):
        order = []
        for i in range(3):
            kernel.workqueues.queue_work(
                0,
                WorkItem(name=f"w{i}", service_ns=1_000,
                         on_done=lambda k, i=i: order.append(i)),
            )
        kernel.env.run(until=1_000_000)
        assert order == [0, 1, 2]

    def test_worker_items_counted(self, kernel):
        kernel.workqueues.queue_work(3, WorkItem(name="w", service_ns=100))
        kernel.env.run(until=1_000_000)
        assert kernel.workqueues.workers[3].items_serviced == 1


class TestWorkerSchedulingUnderLoad:
    def test_worker_not_starved_by_user_thread(self, kernel):
        kernel.spawn(BusyThread(kernel, "hog", 50_000_000, pinned_core=0))
        kernel.env.run(until=1_000_000)
        done_at = []
        kernel.workqueues.queue_work(
            0, WorkItem(name="w", service_ns=2_000, on_done=lambda k: done_at.append(k.env.now))
        )
        kernel.env.run(until=2_000_000)
        assert done_at, "worker starved behind a busy user thread"
        latency = done_at[0] - 1_000_000
        # Bounded by a small multiple of the wakeup granularity.
        assert latency < 4 * kernel.config.scheduler.wakeup_granularity_ns
