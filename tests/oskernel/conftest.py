"""Shared fixtures for OS-kernel tests."""

import pytest

from repro.config import SystemConfig
from repro.oskernel import Kernel, Thread
from repro.sim import Environment, RngRegistry


@pytest.fixture
def kernel():
    """A booted 4-core kernel on a fresh environment."""
    instance = Kernel(Environment(), SystemConfig(), RngRegistry(1))
    instance.boot()
    return instance


@pytest.fixture
def env(kernel):
    return kernel.env


class BusyThread(Thread):
    """Runs for a fixed productive duration, then optionally sleeps, looping."""

    def __init__(self, kernel, name, run_ns, sleep_ns=0, iterations=None, **kwargs):
        super().__init__(kernel, name, **kwargs)
        self.run_ns = run_ns
        self.sleep_ns = sleep_ns
        self.iterations = iterations
        self.loops_done = 0

    def body(self):
        while self.iterations is None or self.loops_done < self.iterations:
            yield from self.run_for(self.run_ns)
            self.loops_done += 1
            if self.sleep_ns:
                yield from self.sleep(self.sleep_ns)


@pytest.fixture
def busy_thread_factory(kernel):
    def make(name="busy", run_ns=1_000_000, **kwargs):
        return kernel.spawn(BusyThread(kernel, name, run_ns, **kwargs))

    return make
