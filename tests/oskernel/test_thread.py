"""Unit tests for the thread CPU protocol."""

import pytest

from repro.oskernel import Thread, accounting as acct
from repro.oskernel.thread import KIND_USER, PRIO_NORMAL

from .conftest import BusyThread


class TestLifecycle:
    def test_thread_runs_to_completion(self, kernel):
        thread = kernel.spawn(BusyThread(kernel, "t", 500_000, iterations=1))
        kernel.env.run(until=2_000_000)
        assert thread.finished
        assert thread.productive_ns == pytest.approx(500_000, rel=0.01)

    def test_double_start_rejected(self, kernel):
        thread = BusyThread(kernel, "t", 1, iterations=1)
        thread.start()
        with pytest.raises(RuntimeError):
            thread.start()

    def test_unknown_kind_rejected(self, kernel):
        with pytest.raises(ValueError):
            Thread(kernel, "t", kind="phantom")

    def test_body_must_be_overridden(self, kernel):
        thread = Thread(kernel, "t").start()
        thread.process.defuse()
        kernel.env.run(until=1000)
        assert not thread.process.ok

    def test_finished_thread_releases_core(self, kernel):
        thread = kernel.spawn(BusyThread(kernel, "t", 100, iterations=1))
        kernel.env.run(until=1_000_000)
        assert thread.core is None


class TestProductiveTime:
    def test_wall_time_includes_overheads(self, kernel):
        """With four single-minded threads on four cores, productive time
        is close to wall time; with eight threads it halves per thread."""
        threads = [
            kernel.spawn(BusyThread(kernel, f"t{i}", 50_000_000))
            for i in range(8)
        ]
        kernel.env.run(until=10_000_000)
        kernel.finalize()
        shares = [t.productive_ns / 10_000_000 for t in threads]
        assert sum(shares) == pytest.approx(4.0, rel=0.1)
        # Fair-ish: no thread should get a full core or be starved.
        assert all(0.2 < share < 0.9 for share in shares)

    def test_sleep_consumes_no_cpu(self, kernel):
        thread = kernel.spawn(
            BusyThread(kernel, "t", 100_000, sleep_ns=900_000, iterations=5)
        )
        kernel.env.run(until=6_000_000)
        assert thread.finished
        assert thread.productive_ns == pytest.approx(500_000, rel=0.01)


class TestPollution:
    def test_disturbance_becomes_stall(self, kernel):
        # Two run_for calls: the disturbance recorded during the first is
        # repaid as stall at the start of the second segment.
        thread = kernel.spawn(BusyThread(kernel, "t", 1_000_000, iterations=2))
        thread.cache_coverage = 1.0
        thread.reuse_probability = 1.0
        kernel.env.run(until=500_000)  # thread is mid-first-run
        thread.add_disturbance(lines_evicted=100, entries_retrained=0)
        kernel.env.run(until=6_000_000)
        assert thread.finished
        assert thread.pollution_stall_ns > 0
        assert thread.extra_misses > 0

    def test_no_charge_without_disturbance(self, kernel):
        thread = kernel.spawn(BusyThread(kernel, "t", 1_000_000, iterations=1))
        kernel.env.run(until=3_000_000)
        assert thread.pollution_stall_ns == 0.0

    def test_stall_extends_wall_time(self, kernel):
        quiet = BusyThread(kernel, "quiet", 1_000_000, iterations=1)
        polluted = BusyThread(kernel, "polluted", 1_000_000, iterations=1)
        polluted.cache_coverage = 1.0
        polluted.reuse_probability = 1.0
        polluted.add_disturbance(lines_evicted=2000, entries_retrained=500)
        kernel.spawn(quiet)
        kernel.spawn(polluted)
        kernel.env.run(until=10_000_000)
        assert quiet.finished and polluted.finished
        # Both did the same productive work; the polluted one needed longer.
        assert polluted.pollution_stall_ns > 10_000


class TestWait:
    def test_wait_returns_event_value(self, kernel):
        done = kernel.env.event()

        class Waiter(Thread):
            def body(self):
                value = yield from self.wait(done)
                self.got = value

        thread = kernel.spawn(Waiter(kernel, "w"))
        kernel.env.call_later(1000, lambda: done.succeed("payload"))
        kernel.env.run(until=10_000)
        assert thread.got == "payload"

    def test_wait_releases_cpu(self, kernel):
        gate = kernel.env.event()

        class Waiter(Thread):
            def body(self):
                yield from self.run_for(1000)
                yield from self.wait(gate)

        thread = kernel.spawn(Waiter(kernel, "w"))
        kernel.env.run(until=100_000)
        assert thread.core is None
        assert not thread.queued
