"""Unit tests for time accounting and counters."""

import pytest

from repro.oskernel import CounterSet, SsrAccounting, TimeAccounting
from repro.oskernel import accounting as acct


class TestTimeAccounting:
    def test_add_and_read(self):
        accounting = TimeAccounting(2)
        accounting.add(0, acct.USER, 100)
        accounting.add(0, acct.USER, 50)
        accounting.add(1, acct.KERNEL, 30)
        assert accounting.core_mode(0, acct.USER) == 150
        assert accounting.total(acct.USER) == 150
        assert accounting.total(acct.KERNEL) == 30

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimeAccounting(1).add(0, acct.USER, -1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            TimeAccounting(1).add(0, "napping", 10)

    def test_out_of_range_core_rejected(self):
        accounting = TimeAccounting(2)
        # A negative index would silently charge the *last* core through
        # Python list indexing, corrupting time conservation undetectably.
        with pytest.raises(ValueError):
            accounting.add(-1, acct.USER, 10)
        with pytest.raises(ValueError):
            accounting.add(2, acct.USER, 10)
        assert accounting.grand_total() == 0  # nothing landed anywhere

    def test_out_of_range_core_rejected_on_reads(self):
        accounting = TimeAccounting(2)
        with pytest.raises(ValueError):
            accounting.core_total(-1)
        with pytest.raises(ValueError):
            accounting.core_mode(2, acct.USER)

    def test_grand_total(self):
        accounting = TimeAccounting(2)
        accounting.add(0, acct.USER, 10)
        accounting.add(1, acct.CC6, 20)
        assert accounting.grand_total() == 30

    def test_residency(self):
        accounting = TimeAccounting(4)
        for core in range(4):
            accounting.add(core, acct.CC6, 50)
        assert accounting.residency(acct.CC6, 100) == pytest.approx(0.5)

    def test_residency_zero_horizon(self):
        assert TimeAccounting(1).residency(acct.CC6, 0) == 0.0

    def test_snapshot(self):
        accounting = TimeAccounting(1)
        accounting.add(0, acct.IRQ, 5)
        assert accounting.snapshot() == {0: {acct.IRQ: 5}}


class TestSsrAccounting:
    def test_totals_and_window(self):
        ssr = SsrAccounting()
        ssr.add(100)
        ssr.add(50)
        assert ssr.total_ns == 150
        assert ssr.take_window() == 150
        assert ssr.take_window() == 0
        ssr.add(25)
        assert ssr.take_window() == 25
        assert ssr.total_ns == 175

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SsrAccounting().add(-5)

    def test_completions(self):
        ssr = SsrAccounting()
        ssr.note_completion()
        ssr.note_completion(3)
        assert ssr.completed == 4


class TestCounterSet:
    def test_bump_and_get(self):
        counters = CounterSet()
        counters.bump("x")
        counters.bump("x", 4)
        assert counters.get("x") == 5
        assert counters.get("missing") == 0

    def test_per_core(self):
        counters = CounterSet()
        counters.bump("irq:0", 2)
        counters.bump("irq:2", 7)
        assert counters.per_core("irq", 4) == [2, 0, 7, 0]

    def test_as_dict(self):
        counters = CounterSet()
        counters.bump("a")
        assert counters.as_dict() == {"a": 1}
