"""Unit tests for Core internals: segments, pick order, should_yield."""

import pytest

from repro.oskernel import Irq, accounting as acct
from repro.oskernel.thread import PRIO_KTHREAD, PRIO_NORMAL

from .conftest import BusyThread


class TestSegments:
    def test_nested_segment_rejected(self, kernel):
        core = kernel.cores[0]
        core.begin_segment(acct.USER, None, 0.0)
        with pytest.raises(RuntimeError, match="nested"):
            core.begin_segment(acct.IRQ, None, 0.0)
        core.end_segment()

    def test_end_without_begin_rejected(self, kernel):
        with pytest.raises(RuntimeError, match="without begin"):
            kernel.cores[0].end_segment()

    def _bare_kernel(self):
        # Unbooted kernel: no idle threads competing for the segments.
        from repro.config import SystemConfig
        from repro.oskernel import Kernel
        from repro.sim import Environment, RngRegistry

        return Kernel(Environment(), SystemConfig(), RngRegistry(0))

    def test_segment_duration_accounted(self):
        kernel = self._bare_kernel()
        core = kernel.cores[0]
        core.begin_segment(acct.KERNEL, None, 0.0)
        kernel.env.run(until=1_234)
        assert core.end_segment() == 1_234
        assert kernel.accounting.core_mode(0, acct.KERNEL) == 1_234

    def test_finalize_closes_open_segment(self):
        kernel = self._bare_kernel()
        core = kernel.cores[3]
        core.begin_segment(acct.IRQ, None, 0.0)
        kernel.env.run(until=500)
        core.finalize()
        assert kernel.accounting.core_mode(3, acct.IRQ) == 500

    def test_finalize_without_segment_is_noop(self, kernel):
        kernel.cores[3].finalize()


class TestPickOrder:
    def test_kthread_beats_normal(self, kernel):
        core = kernel.cores[0]
        normal = BusyThread(kernel, "n", 1_000)
        urgent = BusyThread(kernel, "k", 1_000, priority=PRIO_KTHREAD)
        core.runqueue[PRIO_NORMAL].append(normal)
        core.runqueue[PRIO_KTHREAD].append(urgent)
        normal.queued = urgent.queued = True
        assert core._pick() is urgent
        assert core._pick() is normal

    def test_fifo_within_priority(self, kernel):
        core = kernel.cores[0]
        first = BusyThread(kernel, "first", 1)
        second = BusyThread(kernel, "second", 1)
        core.runqueue[PRIO_NORMAL].append(first)
        core.runqueue[PRIO_NORMAL].append(second)
        first.queued = second.queued = True
        assert core._pick() is first

    def test_pick_clears_queued_flag(self, kernel):
        core = kernel.cores[0]
        thread = BusyThread(kernel, "t", 1)
        core.runqueue[PRIO_NORMAL].append(thread)
        thread.queued = True
        core._pick()
        assert not thread.queued


class TestLoad:
    def test_idle_core_load_zero(self, kernel):
        kernel.env.run(until=10_000)
        # Cores run idle threads; load must not count them.
        assert any(core.load() == 0 for core in kernel.cores)

    def test_busy_core_counts_current_and_queued(self, kernel):
        a = kernel.spawn(BusyThread(kernel, "a", 50_000_000, pinned_core=2))
        b = kernel.spawn(BusyThread(kernel, "b", 50_000_000, pinned_core=2))
        kernel.env.run(until=100_000)
        assert kernel.cores[2].load() == 2


class TestContextSwitchCost:
    def test_first_grant_free(self, kernel):
        core = kernel.cores[0]
        thread = BusyThread(kernel, "t", 1)
        assert core.take_context_switch_cost(thread) == 0

    def test_same_thread_regrant_free(self, kernel):
        core = kernel.cores[0]
        thread = BusyThread(kernel, "t", 1)
        core.last_thread = thread
        assert core.take_context_switch_cost(thread) == 0

    def test_different_thread_charged(self, kernel):
        core = kernel.cores[0]
        core.last_thread = BusyThread(kernel, "old", 1)
        cost = core.take_context_switch_cost(BusyThread(kernel, "new", 1))
        assert cost == kernel.config.scheduler.context_switch_ns
