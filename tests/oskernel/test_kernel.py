"""Unit tests for the kernel facade and housekeeping."""

import pytest

from repro.config import SystemConfig
from repro.oskernel import Kernel, accounting as acct
from repro.sim import Environment, RngRegistry

from .conftest import BusyThread


class TestBoot:
    def test_double_boot_rejected(self, kernel):
        with pytest.raises(RuntimeError):
            kernel.boot()

    def test_boot_starts_idle_threads(self, kernel):
        kernel.env.run(until=10_000)
        # Idle threads hold the cores (the housekeeping daemon may occupy
        # at most one).
        idle_held = sum(
            1
            for core in kernel.cores
            if core.current is not None and core.current.kind == "idle"
        )
        assert idle_held >= 3

    def test_spawn_registers_thread(self, kernel):
        thread = kernel.spawn(BusyThread(kernel, "reg", 1_000, iterations=1))
        assert kernel.thread_registry["reg"] is thread


class TestHousekeeping:
    def test_timer_ticks_fire_on_awake_cores(self, kernel):
        kernel.spawn(BusyThread(kernel, "hog", 50_000_000, pinned_core=0))
        kernel.env.run(until=20_000_000)
        # Core 0 stayed awake: it took several timer ticks.
        assert kernel.counters.get(f"{acct.CTR_IRQ}:0") >= 3

    def test_ticks_suppressed_while_sleeping(self, kernel):
        kernel.env.run(until=20_000_000)
        # All cores asleep most of the run: almost no tick IRQs (NOHZ).
        total_irqs = sum(kernel.interrupts_per_core())
        assert total_irqs < 20

    def test_daemon_consumes_kernel_time(self, kernel):
        kernel.env.run(until=30_000_000)
        kernel.finalize()
        assert kernel.accounting.total(acct.KERNEL) > 0


class TestIntrospection:
    def test_cc6_residency_bounds(self, kernel):
        kernel.env.run(until=5_000_000)
        kernel.finalize()
        assert 0.0 <= kernel.cc6_residency(5_000_000) <= 1.0

    def test_interrupts_per_core_length(self, kernel):
        assert len(kernel.interrupts_per_core()) == 4

    def test_time_conservation_with_threads(self, kernel):
        for i in range(6):
            kernel.spawn(
                BusyThread(kernel, f"t{i}", 700_000, sleep_ns=300_000, iterations=8)
            )
        horizon = 12_000_000
        kernel.env.run(until=horizon)
        kernel.finalize()
        assert kernel.accounting.grand_total() == pytest.approx(
            horizon * 4, rel=1e-9
        )
