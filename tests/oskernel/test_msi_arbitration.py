"""Tests for the MSI arbitration ablation (round-robin-all vs default)."""

import pytest

from dataclasses import replace

from repro.config import SystemConfig
from repro.core import System
from repro.oskernel import RoundRobinAllDeliveryPolicy
from repro.workloads import gpu_app

HORIZON = 10_000_000


def rr_all_config():
    base = SystemConfig()
    return replace(base, iommu=replace(base.iommu, msi_arbitration="round_robin_all"))


class TestArbitrationSelection:
    def test_default_is_lowest_priority(self):
        system = System(SystemConfig())
        assert not isinstance(
            system.kernel.irq_controller.policy, RoundRobinAllDeliveryPolicy
        )

    def test_round_robin_all_selected(self):
        system = System(rr_all_config())
        assert isinstance(
            system.kernel.irq_controller.policy, RoundRobinAllDeliveryPolicy
        )

    def test_unknown_mode_rejected(self):
        base = SystemConfig()
        bad = replace(base, iommu=replace(base.iommu, msi_arbitration="telepathy"))
        with pytest.raises(ValueError):
            System(bad)

    def test_steering_overrides_arbitration(self):
        config = rr_all_config().with_mitigation(steer_to_single_core=True)
        system = System(config)
        from repro.oskernel import SingleCoreDeliveryPolicy

        assert isinstance(
            system.kernel.irq_controller.policy, SingleCoreDeliveryPolicy
        )


class TestArbitrationBehaviour:
    def test_round_robin_all_destroys_monolithic_sleep(self):
        """The ablation behind DESIGN.md 5.1: with the monolithic driver
        (no kthread rotation waking cores), the default lowest-priority
        arbitration localizes handling and preserves sleep; naive
        round-robin delivery wakes every core and erases it."""

        def cc6(config):
            system = System(config.with_mitigation(monolithic_bottom_half=True))
            system.add_gpu_workload(gpu_app("ubench"))
            return system.run(HORIZON).cc6_residency

        default = cc6(SystemConfig())
        naive = cc6(rr_all_config())
        assert default > 0.4
        assert naive < default - 0.3

    def test_round_robin_all_spreads_perfectly(self):
        system = System(rr_all_config())
        system.add_gpu_workload(gpu_app("ubench"))
        metrics = system.run(HORIZON)
        assert metrics.interrupt_balance() < 1.2
