"""Unit tests for IRQ delivery, policies, and IPIs."""

import pytest

from repro.oskernel import (
    Irq,
    SingleCoreDeliveryPolicy,
    SpreadDeliveryPolicy,
    accounting as acct,
)

from .conftest import BusyThread


class TestIrqDelivery:
    def test_irq_handler_charged_to_irq_mode(self, kernel):
        kernel.spawn(BusyThread(kernel, "victim", 10_000_000))
        kernel.env.run(until=100_000)
        fired = []
        irq = Irq(name="test", handler_ns=2_000, action=lambda core: fired.append(core.id))
        target = kernel.irq_controller.raise_msi(irq)
        before = kernel.accounting.total(acct.IRQ)
        kernel.env.run(until=200_000)
        assert fired == [target.id]
        assert kernel.accounting.total(acct.IRQ) >= before + 2_000

    def test_irq_counted_per_core(self, kernel):
        kernel.env.run(until=100_000)
        irq = Irq(name="test", handler_ns=500)
        target = kernel.irq_controller.raise_msi(irq)
        assert kernel.counters.get(f"{acct.CTR_IRQ}:{target.id}") >= 1

    def test_ssr_irq_accumulates_ssr_time(self, kernel):
        kernel.env.run(until=100_000)
        before = kernel.ssr_accounting.total_ns
        kernel.irq_controller.raise_msi(Irq(name="ssr", handler_ns=1_000, is_ssr=True))
        kernel.env.run(until=200_000)
        assert kernel.ssr_accounting.total_ns >= before + 1_000

    def test_irq_interrupts_running_user_thread(self, kernel):
        thread = kernel.spawn(BusyThread(kernel, "u", 5_000_000, iterations=1))
        kernel.env.run(until=1_000_000)
        assert thread.core is not None
        core = thread.core
        core.deliver_irq(Irq(name="poke", handler_ns=10_000))
        kernel.env.run(until=1_050_000)
        assert not core.has_pending_irqs()

    def test_mode_switch_charged_for_user_victims(self, kernel):
        kernel.spawn(BusyThread(kernel, "u", 10_000_000, pinned_core=0))
        # Run past the housekeeping daemon's initial burst so the user
        # thread is the one occupying core 0.
        kernel.env.run(until=1_500_000)
        assert kernel.cores[0].current is not None
        assert kernel.cores[0].current.kind == "user"
        before = kernel.accounting.core_mode(0, acct.SWITCH)
        kernel.cores[0].deliver_irq(Irq(name="poke", handler_ns=1_000))
        kernel.env.run(until=1_600_000)
        assert kernel.accounting.core_mode(0, acct.SWITCH) > before


class TestDeliveryPolicies:
    def test_single_core_policy(self, kernel):
        policy = SingleCoreDeliveryPolicy(target=3)
        for _ in range(5):
            assert policy.select(kernel).id == 3

    def test_spread_policy_avoids_sleeping_cores(self, kernel):
        kernel.env.run(until=2_000_000)  # let everyone fall asleep
        sleeping = [c.id for c in kernel.cores if c.is_sleeping]
        assert len(sleeping) == 4
        policy = SpreadDeliveryPolicy()
        chosen = policy.select(kernel)
        # Everyone asleep: policy picks (and implicitly wakes) exactly one.
        assert chosen.id in sleeping

    def test_spread_policy_rotates_over_busy_cores(self, kernel):
        for i in range(4):
            kernel.spawn(BusyThread(kernel, f"t{i}", 50_000_000))
        kernel.env.run(until=1_000_000)
        policy = SpreadDeliveryPolicy()
        chosen = [policy.select(kernel).id for _ in range(8)]
        assert set(chosen) == {0, 1, 2, 3}

    def test_spread_policy_sticks_to_idle_core(self, kernel):
        kernel.spawn(BusyThread(kernel, "t", 50_000_000, pinned_core=0))
        kernel.env.run(until=50_000)  # cores 1-3 awake-idle (grace period)
        policy = SpreadDeliveryPolicy()
        first = policy.select(kernel)
        second = policy.select(kernel)
        assert first.id != 0
        assert second.id == first.id  # sticky


class TestIpis:
    def test_resched_ipi_counts_and_charges_receiver(self, kernel):
        kernel.env.run(until=100_000)
        before_ipi = kernel.ipis_total()
        before_irq = kernel.accounting.core_mode(1, acct.IRQ)
        kernel.irq_controller.send_resched_ipi(target_core_id=1, origin_core_id=0)
        kernel.env.run(until=300_000)
        assert kernel.ipis_total() == before_ipi + 1
        assert (
            kernel.accounting.core_mode(1, acct.IRQ)
            >= before_irq + kernel.config.os_path.ipi_receive_ns
        )

    def test_wake_ipi_wakes_sleeping_core(self, kernel):
        kernel.env.run(until=2_000_000)
        assert kernel.cores[2].is_sleeping
        kernel.irq_controller.send_wake_ipi(2)
        kernel.env.run(
            until=2_000_000
            + kernel.config.cstate.exit_latency_ns
            + kernel.config.os_path.ipi_receive_ns
            + 200_000
        )
        assert not kernel.cores[2].is_sleeping or kernel.counters.get(acct.CTR_CORE_WAKEUP) > 0
