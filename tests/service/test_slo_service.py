"""SLO engine wired into the serving tier.

The ISSUE's acceptance behaviors: an injected tail-latency regression
produces an AlertEvent visible in both ``GET /v1/alerts`` and the ops
JSONL stream (and a healthy run stays quiet); with the engine disabled
the daemon's served results and job documents are byte-identical to an
enabled run; ``/v1/alerts`` 404s when alerting is off; ``slo.*`` gauges
appear only when alerting is on; and ``/metrics?format=text`` serves the
OpenMetrics content type on the wire.

Determinism note: services here use a huge ``slo_interval_s`` so the
background thread never ticks mid-test; evaluation happens via explicit
``tick()`` calls (and the final synchronous tick in ``stop()``), so no
test depends on timer scheduling.
"""

import io
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core import clear_cache, set_disk_cache
from repro.obsd import SloSpec
from repro.service import HissService, ServiceClient
from repro.service.obs import OpsLog, ops_document
from repro.telemetry.export import METRICS_TEXT_CONTENT_TYPE

#: Small but parallelizable: fig4 --quick at 1 ms plans 8 unique runs.
SPEC_ARGS = dict(experiments=["fig4"], quick=True, horizon_ms=1.0)

#: A cold fig4 --quick serve takes well over 50 ms end to end, so this
#: threshold is a guaranteed "tail regression" without any fault
#: injection; the loose spec is one no real serve can breach.
TIGHT = SloSpec(name="e2e-tight", kind="latency", metric="e2e_s",
                percentile=99, threshold_s=0.05)
LOOSE = SloSpec(name="e2e-loose", kind="latency", metric="e2e_s",
                percentile=99, threshold_s=600.0)


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_disk_cache(None)
    yield
    clear_cache()
    set_disk_cache(None)


def _serve(**kwargs):
    kwargs.setdefault("qos_threshold", 10.0)
    kwargs.setdefault("slo_interval_s", 3600.0)
    return HissService(port=0, **kwargs)


def _run_one_job(svc):
    client = ServiceClient(svc.url, timeout_s=30)
    body = client.submit(**SPEC_ARGS)
    doc = client.wait(body["job"]["id"], timeout_s=120)
    assert doc["state"] == "done"
    return client, body


def _http(url):
    request = urllib.request.Request(url)
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, dict(response.headers), response.read()


class TestBurnRateAlerting:
    def test_injected_tail_regression_raises_an_alert(self):
        stream = io.StringIO()
        with _serve(slos=[TIGHT], ops_log=OpsLog(stream)) as svc:
            client, _body = _run_one_job(svc)
            svc.slo_engine.tick(time.time(), svc)
            alerts = client.alerts()
            assert alerts["firing"] == ["e2e-tight"]
            row = next(r for r in alerts["evaluations"]
                       if r["name"] == "e2e-tight")
            assert row["windows"]["fast"]["burn"] >= TIGHT.burn_factor
            history = alerts["history"]
            assert history and history[-1]["slo"] == "e2e-tight"
            assert history[-1]["state"] == "firing"
        # The edge-triggered alert also landed in the ops JSONL stream.
        records = [json.loads(l) for l in stream.getvalue().splitlines()]
        alerts_logged = [r for r in records if r["event"] == "slo.alert"]
        assert len(alerts_logged) == 1
        assert alerts_logged[0]["slo"] == "e2e-tight"
        assert alerts_logged[0]["severity"] == TIGHT.severity

    def test_healthy_run_stays_quiet(self):
        stream = io.StringIO()
        with _serve(slos=[LOOSE], ops_log=OpsLog(stream)) as svc:
            client, _body = _run_one_job(svc)
            svc.slo_engine.tick(time.time(), svc)
            alerts = client.alerts()
            assert alerts["firing"] == []
            assert alerts["history"] == []
        records = [json.loads(l) for l in stream.getvalue().splitlines()]
        assert not [r for r in records if r["event"].startswith("slo.")]

    def test_alert_resolves_when_the_tail_recovers(self):
        with _serve(slos=[TIGHT]) as svc:
            client, _body = _run_one_job(svc)
            svc.slo_engine.tick(time.time(), svc)
            assert client.alerts()["firing"] == ["e2e-tight"]
            # Quiet window: the next ticks see no new e2e observations,
            # so the fast window empties and the rule stops firing.
            now = time.time()
            for offset in (400.0, 800.0):
                svc.slo_engine.tick(now + offset, svc)
            alerts = client.alerts()
            assert alerts["firing"] == []
            states = [row["state"] for row in alerts["history"]]
            assert states == ["firing", "resolved"]

    def test_stop_runs_a_final_synchronous_tick(self):
        stream = io.StringIO()
        with _serve(slos=[TIGHT], ops_log=OpsLog(stream)) as svc:
            _run_one_job(svc)
            assert svc.slo_engine.ticks == 0  # interval is huge: no timer tick
        records = [json.loads(l) for l in stream.getvalue().splitlines()]
        # stop() evaluated once on the drained service and saw the breach.
        assert [r["slo"] for r in records if r["event"] == "slo.alert"] == [
            "e2e-tight"
        ]


class TestDisabledIsFree:
    def _served_documents(self, slos):
        clear_cache()
        with _serve(jobs=2, slos=slos) as svc:
            client, body = _run_one_job(svc)
            job_id = body["job"]["id"]
            status_doc = client.status(job_id)
            _status, _headers, result = _http(f"{svc.url}/v1/jobs/{job_id}/result")
            return status_doc, result

    def test_served_bytes_identical_with_and_without_slos(self):
        doc_on, result_on = self._served_documents([TIGHT, LOOSE])
        doc_off, result_off = self._served_documents(None)
        # Result bodies: only elapsed_s is wall-clock bookkeeping.
        results = [json.loads(raw) for raw in (result_on, result_off)]
        for doc in results:
            for row in doc:
                row["elapsed_s"] = 0.0
        assert json.dumps(results[0], sort_keys=True) == json.dumps(
            results[1], sort_keys=True
        )
        # Job documents: identical after dropping per-serve identifiers
        # and wall-clock stamps.
        for doc in (doc_on, doc_off):
            for volatile in ("trace_id", "created_s", "started_s", "finished_s"):
                doc.pop(volatile, None)
        assert doc_on == doc_off

    def test_alerts_endpoint_404s_when_disabled(self):
        with _serve() as svc:
            assert svc.slo_engine is None
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _http(f"{svc.url}/v1/alerts")
            assert excinfo.value.code == 404
            body = json.loads(excinfo.value.read())
            assert body["error"] == "slo-disabled"

    def test_slo_gauges_present_only_when_enabled(self):
        with _serve(slos=[LOOSE]) as svc:
            svc.slo_engine.tick(time.time(), svc)
            gauges = ServiceClient(svc.url, timeout_s=30).metrics()["gauges"]
            assert gauges["slo.specs"] == 1.0
            assert gauges["slo.firing"] == 0.0
            assert "slo.e2e-loose.burn_fast" in gauges
        with _serve() as svc:
            gauges = ServiceClient(svc.url, timeout_s=30).metrics()["gauges"]
            assert not [name for name in gauges if name.startswith("slo.")]

    def test_ops_document_reports_slo_state(self):
        with _serve(slos=[TIGHT]) as svc:
            _run_one_job(svc)
            svc.slo_engine.tick(time.time(), svc)
            ops = ops_document(svc)
            assert ops["slo"]["enabled"] is True
            assert ops["slo"]["specs"] == 1
            assert ops["slo"]["firing"] == ["e2e-tight"]
        with _serve() as svc:
            assert ops_document(svc)["slo"] == {"enabled": False}


class TestMetricsContentType:
    def test_text_metrics_serve_openmetrics_content_type(self):
        with _serve() as svc:
            _status, headers, body = _http(f"{svc.url}/metrics?format=text")
            assert headers["Content-Type"] == METRICS_TEXT_CONTENT_TYPE
            assert b"# TYPE" in body
            _status, headers, _body = _http(f"{svc.url}/metrics")
            assert headers["Content-Type"].startswith("application/json")
