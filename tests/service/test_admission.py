"""Unit tests for the bounded queue and the service QoS governor.

Both take injectable clocks, so every scenario here is deterministic:
no sleeps, no timing margins.
"""

import pytest

from repro.service import AdmissionController, RejectedJob, ServiceGovernor


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_governor(clock, **overrides):
    kwargs = dict(
        threshold=0.5,
        capacity_cores=2,
        sample_period_s=1.0,
        window_s=1.0,  # alpha == 1: the sample replaces the EWMA outright
        initial_delay_s=0.5,
        max_delay_s=4.0,
        clock=clock,
    )
    kwargs.update(overrides)
    return ServiceGovernor(**kwargs)


class TestServiceGovernor:
    def test_idle_governor_admits(self):
        clock = FakeClock()
        governor = make_governor(clock)
        clock.advance(2.0)
        assert governor.admission_delay_s() == 0.0
        assert not governor.over_threshold

    def test_fraction_tracks_busy_share(self):
        clock = FakeClock()
        governor = make_governor(clock)
        # 2 cores for 10s = 20 core-seconds capacity; 5 busy = 25%.
        governor.note_busy(5.0)
        clock.advance(10.0)
        assert governor.admission_delay_s() == 0.0
        assert governor.fraction == pytest.approx(0.25)

    def test_backoff_doubles_to_ceiling_then_resets(self):
        clock = FakeClock()
        governor = make_governor(clock)
        governor.note_busy(30.0)  # 150% of a 10s window: way over threshold
        clock.advance(10.0)
        delays = [governor.admission_delay_s() for _ in range(5)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 4.0]  # Fig. 11 shape, capped
        assert governor.throttle_events == 5
        # Load drains: next window shows idle, delay resets to 0.
        clock.advance(10.0)
        assert governor.admission_delay_s() == 0.0
        assert governor.delay_s == 0.0

    def test_ewma_smooths_across_windows(self):
        clock = FakeClock()
        governor = make_governor(clock, window_s=20.0)
        governor.note_busy(20.0)  # 100% of the first 10s window
        clock.advance(10.0)
        governor.admission_delay_s()
        first = governor.fraction
        assert first == pytest.approx(0.5)  # alpha = 10/20
        clock.advance(10.0)  # idle window decays it, not zeroes it
        governor.admission_delay_s()
        assert 0.0 < governor.fraction < first

    def test_resample_respects_period(self):
        clock = FakeClock()
        governor = make_governor(clock, sample_period_s=5.0)
        governor.note_busy(100.0)
        clock.advance(1.0)  # under the sample period: no sample taken yet
        assert governor.admission_delay_s() == 0.0
        assert governor.fraction == 0.0

    def test_negative_busy_rejected(self):
        with pytest.raises(ValueError):
            make_governor(FakeClock()).note_busy(-1.0)


class TestAdmissionController:
    def test_bounded_queue_rejects_overflow(self):
        admission = AdmissionController(queue_limit=2)
        admission.try_admit("a")
        admission.try_admit("b")
        with pytest.raises(RejectedJob) as excinfo:
            admission.try_admit("c")
        assert excinfo.value.reason == "queue-full"
        assert excinfo.value.retry_after_s > 0
        assert admission.rejected_queue_full == 1
        assert admission.depth() == 2

    def test_retry_after_scales_with_backlog_estimate(self):
        admission = AdmissionController(queue_limit=4)
        for job_id in "abcd":
            admission.try_admit(job_id)
        admission.note_service_time(10.0)
        with pytest.raises(RejectedJob) as excinfo:
            admission.try_admit("e")
        # 4 queued jobs at the EWMA'd service time: a real hint, not a floor.
        assert excinfo.value.retry_after_s > 4.0

    def test_take_batch_drains_fifo(self):
        admission = AdmissionController(queue_limit=8)
        for job_id in "abc":
            admission.try_admit(job_id)
        assert admission.take_batch(timeout_s=0) == ["a", "b", "c"]
        assert admission.take_batch(timeout_s=0) == []

    def test_take_batch_respects_max_items(self):
        admission = AdmissionController(queue_limit=8)
        for job_id in "abc":
            admission.try_admit(job_id)
        assert admission.take_batch(max_items=2, timeout_s=0) == ["a", "b"]
        assert admission.take_batch(timeout_s=0) == ["c"]

    def test_requeue_front_preserves_order(self):
        admission = AdmissionController(queue_limit=8)
        for job_id in "abc":
            admission.try_admit(job_id)
        batch = admission.take_batch(timeout_s=0)
        admission.requeue_front(batch)
        assert admission.take_batch(timeout_s=0) == ["a", "b", "c"]

    def test_governor_gate_precedes_queue(self):
        clock = FakeClock()
        governor = make_governor(clock, threshold=0.0)
        governor.note_busy(5.0)
        clock.advance(10.0)
        admission = AdmissionController(queue_limit=8, governor=governor)
        with pytest.raises(RejectedJob) as excinfo:
            admission.try_admit("a")
        assert excinfo.value.reason == "qos-backpressure"
        assert admission.rejected_backpressure == 1
        assert admission.depth() == 0
