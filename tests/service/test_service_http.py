"""End-to-end service tests over a real socket on an ephemeral port.

These drive the daemon exactly as a client would — HTTP requests against
``127.0.0.1:<ephemeral>`` — and assert the ISSUE's acceptance behaviors:
submit→poll→fetch, RunKey dedupe, warm-cache jobs with zero simulations,
bounded-queue 429 + ``Retry-After``, QoS back-off under a burst, graceful
drain, and byte-for-byte equality with the CLI's ``--json`` output.
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core import clear_cache, set_disk_cache
from repro.service import HissService, ServiceClient, ServiceRejected

#: Small but non-trivial: fig4 --quick at 1 ms plans 8 unique runs.
SPEC = {"experiments": ["fig4"], "quick": True, "horizon_ms": 1.0}


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_disk_cache(None)
    yield
    clear_cache()
    set_disk_cache(None)


@contextmanager
def service(**kwargs):
    kwargs.setdefault("qos_threshold", 10.0)  # backpressure off unless asked
    svc = HissService(port=0, **kwargs)
    svc.start()
    try:
        yield svc, ServiceClient(svc.url, timeout_s=30)
    finally:
        if not getattr(svc, "_test_stopped", False):
            svc.stop()


class TestEndToEnd:
    def test_submit_poll_fetch(self):
        with service() as (svc, client):
            assert client.health()["status"] == "ok"
            body = client.submit(**_spec_args(SPEC))
            assert body["deduplicated"] is False
            job = body["job"]
            assert job["state"] in ("queued", "running", "done")
            assert job["planned_runs"] == 8
            doc = client.wait(job["id"], timeout_s=120)
            assert doc["state"] == "done"
            assert doc["runs_executed"] == 8 and doc["runs_cached"] == 0
            results = client.result(job["id"])
            assert [r["experiment_id"] for r in results] == ["fig4"]
            assert results[0]["rows"]  # a real table came back

    def test_duplicate_submission_dedupes_by_runkey(self):
        with service() as (svc, client):
            first = client.submit(**_spec_args(SPEC))
            second = client.submit(**_spec_args(SPEC))
            assert second["deduplicated"] is True
            assert second["job"]["id"] == first["job"]["id"]
            assert second["job"]["submissions"] == 2
            # A different grid is different work: no dedupe.
            other = client.submit(["fig4"], quick=True, horizon_ms=1.5)
            assert other["deduplicated"] is False
            assert other["job"]["id"] != first["job"]["id"]
            client.wait(other["job"]["id"], timeout_s=120)

    def test_warm_cache_job_runs_zero_simulations(self):
        with service() as (svc, client):
            first = client.submit(**_spec_args(SPEC))
            done = client.wait(first["job"]["id"], timeout_s=120)
            assert done["runs_executed"] == 8
            client.evict(first["job"]["id"])  # forget the twin, keep the cache
            second = client.submit(**_spec_args(SPEC))
            assert second["deduplicated"] is False
            doc = client.wait(second["job"]["id"], timeout_s=120)
            assert doc["state"] == "done"
            assert doc["runs_executed"] == 0
            assert doc["runs_cached"] == 8
            # Both served the identical document.
            assert client.result(second["job"]["id"]) is not None

    def test_queue_full_yields_429_with_retry_after(self):
        with service(queue_limit=1) as (svc, client):
            svc.scheduler.pause()
            time.sleep(0.05)
            client.submit(["table1"])
            request = urllib.request.Request(
                svc.url + "/v1/jobs",
                data=json.dumps({"experiment": "ipi", "horizon_ms": 1.0}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            error = excinfo.value
            assert error.code == 429
            assert float(error.headers["Retry-After"]) > 0
            body = json.loads(error.read())
            assert body["error"] == "queue-full"
            svc.scheduler.resume()

    def test_qos_backoff_kicks_in_under_burst(self):
        with service(
            qos_threshold=0.0, qos_sample_period_s=0.01, qos_window_s=0.01
        ) as (svc, client):
            first = client.submit(**_spec_args(SPEC))
            assert client.wait(first["job"]["id"], timeout_s=120)["state"] == "done"
            time.sleep(0.05)  # let the governor sample the burst's window
            delays = []
            for horizon in (2.0, 3.0, 4.0):  # distinct work, so no dedupe
                with pytest.raises(ServiceRejected) as excinfo:
                    client.submit(["fig4"], quick=True, horizon_ms=horizon)
                assert excinfo.value.reason == "qos-backpressure"
                delays.append(excinfo.value.retry_after_s)
            # The Fig. 11 shape: refusals double the advertised delay.
            assert delays[1] == pytest.approx(delays[0] * 2)
            assert delays[2] == pytest.approx(delays[1] * 2)
            assert svc.governor.throttle_events >= 3

    def test_graceful_shutdown_drains_queued_jobs(self):
        with service(queue_limit=8) as (svc, client):
            svc.scheduler.pause()
            time.sleep(0.05)
            ids = [
                client.submit(["table1"])["job"]["id"],
                client.submit(["fig4"], quick=True, horizon_ms=1.0)["job"]["id"],
            ]
            svc.stop(drain=True)
            svc._test_stopped = True
            for job_id in ids:
                job = svc.store.get(job_id)
                assert job is not None and job.state == "done"
                assert job.results
            # Draining servers refuse new work with 503.
            status, body, _headers = svc.submit_document({"experiment": "table1"})
            assert status == 503 and body["error"] == "draining"

    def test_served_result_matches_cli_json_byte_for_byte(self, tmp_path):
        cli_path = tmp_path / "cli.json"
        repo_src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_src) + os.pathsep + env.get("PYTHONPATH", "")
        subprocess.run(
            [
                sys.executable, "-m", "repro.experiments.run_all",
                "fig4", "--quick", "--horizon-ms", "1", "--json", str(cli_path),
            ],
            check=True, env=env, stdout=subprocess.DEVNULL, timeout=600,
        )
        cli_doc = json.loads(cli_path.read_text())
        with service() as (svc, client):
            body = client.submit(**_spec_args(SPEC))
            client.wait(body["job"]["id"], timeout_s=240)
            served_doc = client.result(body["job"]["id"])
        # elapsed_s is wall-clock bookkeeping, not simulated output; all
        # simulated numbers must agree to the last byte.
        for doc in (cli_doc, served_doc):
            for result in doc:
                result["elapsed_s"] = 0.0
        assert json.dumps(cli_doc, sort_keys=True) == json.dumps(
            served_doc, sort_keys=True
        )


class TestApiSurface:
    def test_experiments_endpoint_covers_registry(self):
        from repro.experiments.common import REGISTRY, UNPLANNABLE

        with service() as (svc, client):
            doc = client.experiments()
            ids = {e["id"] for e in doc["experiments"]}
            assert ids == set(REGISTRY)
            by_id = {e["id"]: e for e in doc["experiments"]}
            for experiment_id in UNPLANNABLE:
                assert by_id[experiment_id]["plannable"] is False

    def test_bad_spec_is_400(self):
        with service() as (svc, client):
            status, body, _ = svc.submit_document({"experiment": "figZZ"})
            assert status == 400 and body["error"] == "bad-spec"
            status, body, _ = svc.submit_document({"experiment": "fig4", "x": 1})
            assert status == 400

    def test_unknown_job_is_404_and_unfinished_result_is_409(self):
        with service() as (svc, client):
            with pytest.raises(Exception) as excinfo:
                client.status("job-nope")
            assert getattr(excinfo.value, "status", None) == 404
            svc.scheduler.pause()
            time.sleep(0.05)
            body = client.submit(["table1"])
            with pytest.raises(Exception) as excinfo:
                client.result(body["job"]["id"])
            assert getattr(excinfo.value, "status", None) == 409
            svc.scheduler.resume()

    def test_metrics_json_and_text(self):
        with service() as (svc, client):
            body = client.submit(["table1"])
            client.wait(body["job"]["id"], timeout_s=60)
            doc = client.metrics()
            assert doc["counters"]["service.jobs.submitted"] == 1
            assert doc["counters"]["service.jobs.completed"] == 1
            assert "service.queue.depth" in doc["gauges"]
            assert "service.qos.fraction" in doc["gauges"]
            text = client.metrics(text=True)
            assert "service.jobs.completed 1" in text
            assert "service.queue.depth" in text

    def test_jobs_listing(self):
        with service() as (svc, client):
            body = client.submit(["table1"])
            client.wait(body["job"]["id"], timeout_s=60)
            listing = client.jobs()
            assert [j["id"] for j in listing["jobs"]] == [body["job"]["id"]]


def _spec_args(spec):
    return dict(
        experiments=spec["experiments"],
        quick=spec["quick"],
        horizon_ms=spec["horizon_ms"],
    )
