"""hiss-top plain rendering against a fixed, checked-in ops document.

``render_ops`` is a pure function, so a canned ``/v1/ops`` document plus
a golden frame pin the whole console layout — any formatting drift shows
up as a readable text diff, with no server or terminal in the loop.
"""

import json
import pathlib

from repro.service.top import render_ops

DATA = pathlib.Path(__file__).parent / "data"


def _fixture():
    return json.loads((DATA / "ops_fixture.json").read_text())


class TestTopGoldenFrame:
    def test_frame_matches_checked_in_golden(self):
        golden = (DATA / "top_render.txt").read_text()
        assert render_ops(_fixture()) == golden

    def test_rendering_is_deterministic(self):
        doc = _fixture()
        assert render_ops(doc) == render_ops(doc)

    def test_alerts_pane_shows_firing_and_history(self):
        frame = render_ops(_fixture())
        assert "2 FIRING: e2e-p99, pool-warm-hits" in frame
        assert "firing    queue-wait-p95       burn 15.1x/14.6x" in frame
        assert "resolved  queue-wait-p95" in frame

    def test_alerts_pane_quiet_when_nothing_fires(self):
        doc = _fixture()
        doc["slo"]["firing"] = []
        doc["slo"]["history"] = []
        frame = render_ops(doc)
        assert "all objectives met" in frame
        assert "FIRING" not in frame

    def test_slo_pane_absent_when_disabled(self):
        doc = _fixture()
        doc["slo"] = {"enabled": False}
        frame = render_ops(doc)
        assert "slo " not in frame
        assert "objective(s)" not in frame
        # Everything else still renders.
        assert "hiss-top" in frame and "latency" in frame

    def test_history_pane_caps_at_three_rows(self):
        doc = _fixture()
        doc["slo"]["history"] = [
            {"state": "firing", "slo": f"slo-{i}", "burn_fast": 20.0,
             "burn_slow": 15.0, "detail": "d"}
            for i in range(6)
        ]
        frame = render_ops(doc)
        assert "slo-5" in frame and "slo-3" in frame
        assert "slo-2" not in frame
