"""Size-based rotation for path-backed ops JSONL logs.

Includes rotation x postmortem interplay: the flight recorder writes
bundles *next to* a rotating ops log, and rotation mid-capture must
never tear a bundle or drop its ``postmortem.written`` ops event.
"""

import json
import os
import threading

import pytest

from repro.flight import (
    FlightRecorder,
    PostmortemStore,
    TriggerSpec,
    validate_postmortem,
)
from repro.service.obs import OpsLog


def _lines(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestRotation:
    def test_rotates_when_the_live_file_crosses_max_bytes(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path), max_bytes=200)
        for index in range(10):
            log.log("tick", n=index)
        log.close()
        assert log.rotations >= 1
        assert os.path.exists(f"{path}.1")
        # The live file restarted below the limit after the last rotation.
        assert os.path.getsize(path) < 200

    def test_backups_shift_and_cap_at_keep_n(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path), max_bytes=80, backups=2)
        for index in range(40):
            log.log("tick", n=index)
        log.close()
        assert log.rotations > 3  # enough churn to exercise the cap
        assert os.path.exists(f"{path}.1")
        assert os.path.exists(f"{path}.2")
        assert not os.path.exists(f"{path}.3")

    def test_rotation_preserves_order_and_loses_only_evicted_lines(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path), max_bytes=120, backups=8)
        total = 25
        for index in range(total):
            log.log("tick", n=index)
        log.close()
        files = [f"{path}.{i}" for i in range(log.rotations, 0, -1)]
        files = [f for f in files if os.path.exists(f)] + [str(path)]
        collected = [record["n"] for f in files for record in _lines(f)]
        assert collected == list(range(total))  # oldest backup -> live file

    def test_no_torn_json_lines_in_any_generation(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path), max_bytes=150, backups=4)

        def writer(worker):
            for index in range(50):
                log.log("tick", worker=worker, n=index, pad="x" * 20)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        survivors = 0
        for name in os.listdir(tmp_path):
            # Every line in every generation parses as a complete record.
            for record in _lines(tmp_path / name):
                assert record["event"] == "tick"
                survivors += 1
        # Generations beyond keep-N were evicted whole; nothing was torn.
        assert 0 < survivors <= log.lines

    def test_no_rotation_without_max_bytes(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path))
        for index in range(200):
            log.log("tick", n=index)
        log.close()
        assert log.rotations == 0
        assert not os.path.exists(f"{path}.1")
        assert len(_lines(path)) == 200

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_bytes"):
            OpsLog(None, max_bytes=0)
        with pytest.raises(ValueError, match="backups"):
            OpsLog(None, backups=0)


class TestRotationWithPostmortems:
    def _recorder(self, tmp_path, log, keep=50):
        store = PostmortemStore(str(tmp_path / "pm"), keep=keep)
        recorder = FlightRecorder(
            store,
            triggers=(
                TriggerSpec("manual", "manual", debounce_s=0.0, max_per_hour=1000),
            ),
            ops_log=log,
        )
        log.tee = recorder.observe
        return recorder

    def test_rotation_mid_capture_never_tears_a_bundle(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        # Tiny max_bytes: nearly every record (including each capture's
        # own postmortem.written event) forces a rotation.
        log = OpsLog.open_path(str(path), max_bytes=120, backups=100)
        recorder = self._recorder(tmp_path, log)
        captures = 24
        for index in range(captures):
            log.log("tick", n=index, pad="x" * 30)
            assert recorder.trigger_manual(f"capture {index}", at_s=float(index))
        log.close()
        assert log.rotations > captures // 2  # rotation churn was real
        # Every bundle on disk is whole and validates.
        bundles = recorder.store.paths()
        assert len(bundles) == captures
        for bundle_path in bundles:
            with open(bundle_path) as handle:
                assert validate_postmortem(json.load(handle)) == []
        assert recorder.capture_errors == 0

    def test_postmortem_written_events_survive_across_generations(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path), max_bytes=150, backups=200)
        recorder = self._recorder(tmp_path, log)
        captures = 16
        for index in range(captures):
            assert recorder.trigger_manual(f"capture {index}", at_s=float(index))
        log.close()
        written = []
        for name in os.listdir(tmp_path):
            full = tmp_path / name
            if not full.is_file():
                continue
            for record in _lines(full):
                if record["event"] == "postmortem.written":
                    written.append(record)
        # Backups are deep enough that nothing was evicted: one whole
        # postmortem.written line per capture, spread over generations.
        assert len(written) == captures
        ids = sorted(record["id"] for record in written)
        assert ids == sorted(f"pm-{i:06d}-manual" for i in range(captures))

    def test_concurrent_captures_and_rotation_stay_whole(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path), max_bytes=200, backups=8)
        recorder = self._recorder(tmp_path, log, keep=100)

        def chatter():
            for index in range(60):
                log.log("tick", n=index, pad="y" * 25)

        def capture(base):
            for index in range(8):
                recorder.trigger_manual("stress", at_s=base + float(index))

        threads = [threading.Thread(target=chatter) for _ in range(2)] + [
            threading.Thread(target=capture, args=(100.0 * w,)) for w in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        assert recorder.capture_errors == 0
        for bundle_path in recorder.store.paths():
            with open(bundle_path) as handle:
                assert validate_postmortem(json.load(handle)) == []
        # Rotation kept every surviving ops line parseable.
        for name in os.listdir(tmp_path):
            full = tmp_path / name
            if full.is_file():
                _lines(full)
