"""Size-based rotation for path-backed ops JSONL logs."""

import json
import os
import threading

import pytest

from repro.service.obs import OpsLog


def _lines(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestRotation:
    def test_rotates_when_the_live_file_crosses_max_bytes(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path), max_bytes=200)
        for index in range(10):
            log.log("tick", n=index)
        log.close()
        assert log.rotations >= 1
        assert os.path.exists(f"{path}.1")
        # The live file restarted below the limit after the last rotation.
        assert os.path.getsize(path) < 200

    def test_backups_shift_and_cap_at_keep_n(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path), max_bytes=80, backups=2)
        for index in range(40):
            log.log("tick", n=index)
        log.close()
        assert log.rotations > 3  # enough churn to exercise the cap
        assert os.path.exists(f"{path}.1")
        assert os.path.exists(f"{path}.2")
        assert not os.path.exists(f"{path}.3")

    def test_rotation_preserves_order_and_loses_only_evicted_lines(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path), max_bytes=120, backups=8)
        total = 25
        for index in range(total):
            log.log("tick", n=index)
        log.close()
        files = [f"{path}.{i}" for i in range(log.rotations, 0, -1)]
        files = [f for f in files if os.path.exists(f)] + [str(path)]
        collected = [record["n"] for f in files for record in _lines(f)]
        assert collected == list(range(total))  # oldest backup -> live file

    def test_no_torn_json_lines_in_any_generation(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path), max_bytes=150, backups=4)

        def writer(worker):
            for index in range(50):
                log.log("tick", worker=worker, n=index, pad="x" * 20)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        survivors = 0
        for name in os.listdir(tmp_path):
            # Every line in every generation parses as a complete record.
            for record in _lines(tmp_path / name):
                assert record["event"] == "tick"
                survivors += 1
        # Generations beyond keep-N were evicted whole; nothing was torn.
        assert 0 < survivors <= log.lines

    def test_no_rotation_without_max_bytes(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path))
        for index in range(200):
            log.log("tick", n=index)
        log.close()
        assert log.rotations == 0
        assert not os.path.exists(f"{path}.1")
        assert len(_lines(path)) == 200

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_bytes"):
            OpsLog(None, max_bytes=0)
        with pytest.raises(ValueError, match="backups"):
            OpsLog(None, backups=0)
