"""Unit tests for job specs and the TTL'd, deduping job store."""

import pytest

import repro.experiments  # noqa: F401 - populates the registry
from repro.experiments.common import REGISTRY
from repro.service import BadSpec, DONE, FAILED, JobSpec, JobStore, QUEUED


class TestJobSpec:
    def test_single_experiment_field(self):
        spec = JobSpec.from_document({"experiment": "fig4"}, REGISTRY)
        assert spec.experiments == ("fig4",)
        assert spec.quick is False and spec.horizon_ms is None

    def test_full_document(self):
        spec = JobSpec.from_document(
            {"experiments": ["fig4", "fig3a"], "quick": True, "horizon_ms": 2},
            REGISTRY,
        )
        assert spec.experiments == ("fig4", "fig3a")
        assert spec.quick is True
        assert spec.horizon_ms == 2.0

    @pytest.mark.parametrize(
        "doc",
        [
            None,
            [],
            {},
            {"experiments": []},
            {"experiments": ["figZZ"]},
            {"experiment": "fig4", "quick": "yes"},
            {"experiment": "fig4", "horizon_ms": -1},
            {"experiment": "fig4", "horizon_ms": "fast"},
            {"experiment": "fig4", "jobs": 4},
        ],
    )
    def test_bad_documents_rejected(self, doc):
        with pytest.raises(BadSpec):
            JobSpec.from_document(doc, REGISTRY)

    def test_canonical_json_is_stable(self):
        a = JobSpec.from_document({"experiments": ["fig4"], "quick": True}, REGISTRY)
        b = JobSpec.from_document({"quick": True, "experiments": ["fig4"]}, REGISTRY)
        assert a.canonical_json() == b.canonical_json()


def _admit_all(job_id):
    pass


def _spec(experiment="fig4"):
    return JobSpec.from_document({"experiment": experiment}, REGISTRY)


class TestJobStore:
    def test_submit_and_get(self):
        store = JobStore(ttl_s=60)
        job, deduped = store.submit(_spec(), "k1", [], [], _admit_all)
        assert not deduped
        assert job.state == QUEUED
        assert store.get(job.id) is job

    def test_duplicate_submission_dedupes(self):
        store = JobStore(ttl_s=60)
        job, _ = store.submit(_spec(), "k1", [], [], _admit_all)
        twin, deduped = store.submit(_spec(), "k1", [], [], _admit_all)
        assert deduped and twin is job
        assert job.submissions == 2

    def test_failed_jobs_do_not_dedupe(self):
        store = JobStore(ttl_s=60)
        job, _ = store.submit(_spec(), "k1", [], [], _admit_all)
        job.state = FAILED
        fresh, deduped = store.submit(_spec(), "k1", [], [], _admit_all)
        assert not deduped and fresh is not job

    def test_rejected_admission_leaves_no_trace(self):
        store = JobStore(ttl_s=60)

        def refuse(job_id):
            raise RuntimeError("queue full")

        with pytest.raises(RuntimeError):
            store.submit(_spec(), "k1", [], [], refuse)
        assert store.jobs() == []
        # The dedupe slot was not burned: a retry can still create the job.
        job, deduped = store.submit(_spec(), "k1", [], [], _admit_all)
        assert not deduped

    def test_ttl_evicts_terminal_jobs_only(self):
        clock = [100.0]
        store = JobStore(ttl_s=10, clock=lambda: clock[0])
        done, _ = store.submit(_spec("fig4"), "k1", [], [], _admit_all)
        queued, _ = store.submit(_spec("fig3a"), "k2", [], [], _admit_all)
        done.state = DONE
        done.finished_s = 100.0
        clock[0] = 111.0
        assert store.get(done.id) is None
        assert store.get(queued.id) is queued
        assert store.evicted == 1
        # The dedupe key died with the job: same work creates a fresh job.
        fresh, deduped = store.submit(_spec("fig4"), "k1", [], [], _admit_all)
        assert not deduped and fresh.id != done.id

    def test_explicit_evict(self):
        store = JobStore(ttl_s=60)
        job, _ = store.submit(_spec(), "k1", [], [], _admit_all)
        assert store.evict(job.id)
        assert not store.evict(job.id)
        assert store.get(job.id) is None

    def test_counts_by_state(self):
        store = JobStore(ttl_s=60)
        a, _ = store.submit(_spec("fig4"), "k1", [], [], _admit_all)
        b, _ = store.submit(_spec("fig3a"), "k2", [], [], _admit_all)
        a.state = DONE
        assert store.counts() == {DONE: 1, QUEUED: 1}
