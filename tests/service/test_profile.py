"""Serving interference profiles: spec validation, forced re-execution,
the ``/v1/jobs/<id>/profile`` endpoint, and bundle integrity."""

from contextlib import contextmanager

import pytest

from repro.core import clear_cache, set_disk_cache
from repro.profiling import validate_profile
from repro.service import HissService, ServiceClient, ServiceError
from repro.service.jobs import BadSpec, JobSpec

SPEC = {"experiments": ["fig4"], "quick": True, "horizon_ms": 1.0}


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_disk_cache(None)
    yield
    clear_cache()
    set_disk_cache(None)


@contextmanager
def service(**kwargs):
    kwargs.setdefault("qos_threshold", 10.0)
    svc = HissService(port=0, **kwargs)
    svc.start()
    try:
        yield svc, ServiceClient(svc.url, timeout_s=30)
    finally:
        svc.stop()


class TestSpec:
    def test_profile_field_parses(self):
        from repro.experiments.common import REGISTRY

        spec = JobSpec.from_document(dict(SPEC, profile=True), REGISTRY)
        assert spec.profile is True
        assert spec.as_dict()["profile"] is True
        # Default is off, and profiled work is distinct work for dedupe.
        plain = JobSpec.from_document(dict(SPEC), REGISTRY)
        assert plain.profile is False
        assert plain.canonical_json() != spec.canonical_json()

    def test_profile_must_be_boolean(self):
        from repro.experiments.common import REGISTRY

        with pytest.raises(BadSpec):
            JobSpec.from_document(dict(SPEC, profile="yes"), REGISTRY)


class TestProfileEndpoint:
    def test_profiled_job_serves_valid_bundle(self):
        with service() as (svc, client):
            body = client.submit(["fig4"], quick=True, horizon_ms=1.0,
                                 profile=True)
            job_id = body["job"]["id"]
            doc = client.wait(job_id, timeout_s=120)
            assert doc["state"] == "done"
            assert doc["profiled_runs"] == doc["planned_runs"] == 8
            assert doc["profile_url"] == f"/v1/jobs/{job_id}/profile"
            bundle = client.profile(job_id)
            assert validate_profile(bundle) == []
            assert len(bundle["runs"]) == 8
            assert bundle["meta"]["job"] == job_id
            assert bundle["meta"]["spec"]["profile"] is True
            # Stable document: runs sorted by label.
            labels = [run["run"] for run in bundle["runs"]]
            assert labels == sorted(labels)

    def test_warm_cache_is_reexecuted_for_profiles(self):
        with service() as (svc, client):
            plain = client.submit(**_spec_args(SPEC))
            client.wait(plain["job"]["id"], timeout_s=120)
            profiled = client.submit(["fig4"], quick=True, horizon_ms=1.0,
                                     profile=True)
            assert profiled["deduplicated"] is False  # distinct work
            doc = client.wait(profiled["job"]["id"], timeout_s=120)
            assert doc["state"] == "done"
            # Every run was re-simulated: a profile only exists for an
            # executed run.
            assert doc["runs_cached"] == 0
            assert doc["runs_executed"] == 8
            assert len(client.profile(profiled["job"]["id"])["runs"]) == 8

    def test_unprofiled_job_profile_409(self):
        with service() as (svc, client):
            body = client.submit(**_spec_args(SPEC))
            client.wait(body["job"]["id"], timeout_s=120)
            with pytest.raises(ServiceError) as excinfo:
                client.profile(body["job"]["id"])
            assert excinfo.value.status == 409

    def test_results_identical_with_and_without_profiling(self):
        with service() as (svc, client):
            profiled = client.submit(["fig4"], quick=True, horizon_ms=1.0,
                                     profile=True)
            doc = client.wait(profiled["job"]["id"], timeout_s=120)
            assert doc["state"] == "done"
            profiled_results = client.result(profiled["job"]["id"])
            clear_cache()
            plain = client.submit(**_spec_args(SPEC))
            client.wait(plain["job"]["id"], timeout_s=120)
            plain_results = client.result(plain["job"]["id"])
            # Byte-for-byte modulo the wall-clock elapsed_s stamp.
            strip = lambda docs: [  # noqa: E731
                {k: v for k, v in d.items() if k != "elapsed_s"} for d in docs
            ]
            assert strip(plain_results) == strip(profiled_results)


def _spec_args(spec):
    return {
        "experiments": spec["experiments"],
        "quick": spec["quick"],
        "horizon_ms": spec["horizon_ms"],
    }
