"""Serving-tier behavior of the warm execution backend.

Drives the scheduler directly (no HTTP, no drain thread) to pin down
what the ISSUE promises: a job whose planned run fails is FAILED with
the worker's traceback while its batch siblings complete, the cost
model's batch estimate is charged to the governor before execution, and
the pool's lifetime counters surface through the service gauges.
"""

import pytest

from repro.config import SystemConfig
from repro.core import (
    clear_cache,
    make_run_key,
    set_cost_ledger,
    set_disk_cache,
    shared_pool_stats,
    shutdown_shared_pool,
)
from repro.experiments.common import REGISTRY
from repro.service import DONE, FAILED, JobScheduler, JobSpec, JobStore
from repro.service.admission import AdmissionController, ServiceGovernor
from repro.service.scheduler import dedupe_key_for, plan_spec
from repro.telemetry import MetricsRegistry

HORIZON = 1_000_000
BOGUS_KEY = make_run_key("not-a-real-app", "bfs", True, SystemConfig(), HORIZON)


@pytest.fixture(autouse=True)
def isolated_everything():
    clear_cache()
    set_disk_cache(None)
    set_cost_ledger(None)
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()
    clear_cache()
    set_disk_cache(None)
    set_cost_ledger(None)


def make_scheduler(jobs=2, governor=None):
    store = JobStore(ttl_s=600)
    admission = AdmissionController(queue_limit=16, governor=governor)
    metrics = MetricsRegistry()
    scheduler = JobScheduler(
        store, admission, metrics, jobs=jobs, governor=governor, trace=False
    )
    return store, scheduler, metrics


def submit(store, spec, run_keys, tag):
    job, deduped = store.submit(spec, tag, run_keys, [], lambda _job_id: None)
    assert not deduped
    return job


def fig4_spec():
    return JobSpec.from_document(
        {"experiment": "fig4", "quick": True, "horizon_ms": 1.0}, REGISTRY
    )


class TestBatchCrashIsolation:
    def test_failed_run_fails_only_the_jobs_that_planned_it(self):
        governor = ServiceGovernor(threshold=10.0, capacity_cores=2)
        store, scheduler, metrics = make_scheduler(governor=governor)
        spec = fig4_spec()
        run_keys, serial_only = plan_spec(spec)
        assert run_keys and not serial_only

        sibling = submit(store, spec, run_keys, dedupe_key_for(spec, run_keys))
        broken = submit(store, spec, run_keys + [BOGUS_KEY], "broken-twin")

        scheduler._run_batch([broken.id, sibling.id])

        # The broken job failed with the worker's actual traceback...
        assert broken.state == FAILED
        assert "planned runs failed" in broken.error
        assert "not-a-real-app" in broken.error
        # ...while its batch sibling rendered its tables untouched.
        assert sibling.state == DONE
        assert sibling.error is None
        assert sibling.results and sibling.results[0]["rows"]
        assert metrics.counter("service.runs.failed").value == 1
        assert metrics.counter("service.jobs.failed").value == 1
        assert metrics.counter("service.jobs.completed").value == 1

    def test_prediction_charged_to_governor_before_execution(self):
        governor = ServiceGovernor(threshold=10.0, capacity_cores=2)
        store, scheduler, _ = make_scheduler(governor=governor)
        spec = fig4_spec()
        run_keys, _ = plan_spec(spec)
        job = submit(store, spec, run_keys, dedupe_key_for(spec, run_keys))

        scheduler._run_batch([job.id])

        assert job.state == DONE
        # The cost model priced the pending keys and the scheduler
        # charged that estimate up front (it is a lifetime total, so it
        # survives the post-batch true-up).
        assert governor.predicted_core_s > 0.0
        assert governor.snapshot()["predicted_core_s"] == governor.predicted_core_s

    def test_note_predicted_rejects_negative(self):
        governor = ServiceGovernor()
        with pytest.raises(ValueError):
            governor.note_predicted(-0.1)


class TestPoolGauges:
    def test_batches_share_the_resident_pool(self):
        store, scheduler, _ = make_scheduler(jobs=2)
        spec = fig4_spec()
        run_keys, _ = plan_spec(spec)
        first = submit(store, spec, run_keys, dedupe_key_for(spec, run_keys))
        scheduler._run_batch([first.id])
        assert first.state == DONE
        spawned_after_first = shared_pool_stats()["spawned_workers"]
        assert spawned_after_first == 2.0

        # Different horizon => disjoint run keys => real second batch.
        other = JobSpec.from_document(
            {"experiment": "fig4", "quick": True, "horizon_ms": 1.5}, REGISTRY
        )
        other_keys, _ = plan_spec(other)
        assert not set(other_keys) & set(run_keys)
        second = submit(store, other, other_keys, dedupe_key_for(other, other_keys))
        scheduler._run_batch([second.id])
        assert second.state == DONE

        stats = shared_pool_stats()
        assert stats["spawned_workers"] == spawned_after_first  # zero new
        assert stats["batches"] == 2.0
        assert stats["warm_hits"] >= 1.0
        assert stats["warm_hit_ratio"] > 0.0

    def test_service_gauges_expose_pool_and_cost_model(self):
        from repro.service import HissService

        svc = HissService(port=0, jobs=2, qos_threshold=10.0)
        gauges = svc.gauges()
        for name in (
            "service.pool.spawned_workers",
            "service.pool.live_workers",
            "service.pool.warm_hit_ratio",
            "service.cost_model.observations",
        ):
            assert name in gauges
