"""End-to-end tracing/observability tests for the serving tier.

The ISSUE's acceptance behaviors: a served job's trace covers its whole
wall-clock life with no gaps at stage boundaries, worker-side sim spans
carry the parent trace id across the process pool, the stitched Chrome
trace is valid, tracing on/off does not change served result bytes, and
the ops surfaces (``/v1/ops``, JSONL log, ``hiss-top``) reflect reality.
"""

import io
import json
import urllib.request

import pytest

from repro.core import clear_cache, set_disk_cache
from repro.service import HissService, ServiceClient, ServiceError
from repro.service.obs import OpsLog, build_trace_document, ops_document
from repro.service.top import render_ops
from repro.telemetry.export import validate_chrome_trace
from repro.telemetry.spans import validate_trace_document

#: Small but parallelizable: fig4 --quick at 1 ms plans 8 unique runs.
SPEC = {"experiments": ["fig4"], "quick": True, "horizon_ms": 1.0}


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_disk_cache(None)
    yield
    clear_cache()
    set_disk_cache(None)


def _serve(**kwargs):
    kwargs.setdefault("qos_threshold", 10.0)
    return HissService(port=0, **kwargs)


def _served_trace(jobs=2, chrome=False):
    with _serve(jobs=jobs) as svc:
        client = ServiceClient(svc.url, timeout_s=30)
        body = client.submit(**SPEC_ARGS)
        job_id = body["job"]["id"]
        doc = client.wait(job_id, timeout_s=120)
        assert doc["state"] == "done"
        return body, client.trace(job_id, chrome=chrome)


SPEC_ARGS = dict(
    experiments=SPEC["experiments"], quick=SPEC["quick"],
    horizon_ms=SPEC["horizon_ms"],
)


class TestServedTrace:
    def test_lifecycle_spans_cover_job_with_no_gaps(self):
        body, trace = _served_trace(jobs=2)
        assert validate_trace_document(trace) == []
        assert trace["trace_id"] == body["trace_id"]
        spans = {s["span_id"]: s for s in trace["spans"]}
        # Submit -> queue -> batch -> render chain on shared timestamps:
        # each stage ends exactly where the next starts, by construction.
        assert spans["submit"]["end_s"] == spans["queue"]["start_s"]
        assert spans["queue"]["end_s"] == spans["batch"]["start_s"]
        assert spans["batch"]["end_s"] == spans["render"]["start_s"]
        assert spans["render"]["end_s"] == spans["root"]["end_s"]
        assert spans["submit"]["start_s"] == spans["root"]["start_s"]
        for span_id in ("submit", "queue", "batch", "render"):
            assert spans[span_id]["parent_id"] == "root"
            assert spans[span_id]["status"] == "ok"
        assert spans["root"]["args"]["planned_runs"] == 8

    def test_worker_sim_spans_carry_parent_trace_id_across_pool(self):
        import os

        body, trace = _served_trace(jobs=2)
        sim_spans = [s for s in trace["spans"] if s["category"] == "sim"]
        assert len(sim_spans) == 8
        for span in sim_spans:
            assert span["trace_id"] == body["trace_id"]
            assert span["parent_id"] == "batch"
        # With --jobs 2 the runs crossed a process boundary: the stamped
        # worker pids are real and none of them is this (parent) process.
        worker_pids = {run["worker_pid"] for run in trace["sim"]}
        assert worker_pids and os.getpid() not in worker_pids
        for run in trace["sim"]:
            assert run["trace_id"] == body["trace_id"]
            assert run["wall_end_s"] >= run["wall_start_s"]
            assert run["events"], "tracing on: in-sim events captured"
        # Sim spans nest inside the batch stage's wall-clock window.
        spans = {s["span_id"]: s for s in trace["spans"]}
        for span in sim_spans:
            assert span["start_s"] >= spans["batch"]["start_s"]
            assert span["end_s"] <= spans["batch"]["end_s"]

    def test_stitched_chrome_trace_is_valid_and_monotonic(self):
        _body, chrome = _served_trace(jobs=2, chrome=True)
        assert validate_chrome_trace(chrome) == []
        last_ts = {}
        pids = set()
        for event in chrome["traceEvents"]:
            pids.add(event["pid"])
            if event.get("ph") == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= 0.0
            assert event["ts"] >= last_ts.get(key, 0.0)
            last_ts[key] = event["ts"]
        assert 0 in pids and len(pids) == 9  # service + one pid per run

    def test_trace_endpoint_while_queued_and_404(self):
        with _serve() as svc:
            client = ServiceClient(svc.url, timeout_s=30)
            svc.scheduler.pause()
            body = client.submit(["table1"])
            trace = client.trace(body["job"]["id"])
            assert validate_trace_document(trace) == []
            root = next(s for s in trace["spans"] if s["span_id"] == "root")
            assert root["end_s"] is None  # still in flight: open span
            svc.scheduler.resume()
            client.wait(body["job"]["id"], timeout_s=60)
            with pytest.raises(ServiceError) as excinfo:
                client.trace("job-nope")
            assert excinfo.value.status == 404


class TestBackoffRounds:
    def test_429_rounds_appear_in_the_admitted_jobs_trace(self):
        with _serve(queue_limit=1) as svc:
            svc.scheduler.pause()
            status, _body, _headers = svc.submit_document({"experiment": "table1"})
            assert status == 202
            # The queue is full: same client retries with the 429's trace id.
            status, body, headers = svc.submit_document(
                {"experiment": "table1", "quick": True}
            )
            assert status == 429
            rejected_trace = body["trace_id"]
            assert headers["X-Hiss-Trace-Id"] == rejected_trace
            status, body, _headers = svc.submit_document(
                {"experiment": "table1", "quick": True}, trace_id=rejected_trace
            )
            assert status == 429
            rejections = 2
            svc.scheduler.resume()
            client = ServiceClient(svc.url, timeout_s=30)
            import time

            deadline = time.monotonic() + 60
            while True:
                status, body, _headers = svc.submit_document(
                    {"experiment": "table1", "quick": True}, trace_id=rejected_trace
                )
                if status == 202:
                    break
                rejections += 1
                assert time.monotonic() < deadline
                time.sleep(0.05)
            assert body["trace_id"] == rejected_trace
            job_id = body["job"]["id"]
            client.wait(job_id, timeout_s=120)
            trace = client.trace(job_id)
            assert validate_trace_document(trace) == []
            backoffs = [
                s for s in trace["spans"] if s["name"] == "admission.backoff"
            ]
            assert len(backoffs) == rejections
            for round_index, span in enumerate(backoffs):
                assert span["status"] == "rejected"
                assert span["trace_id"] == rejected_trace
                assert span["args"]["round"] == round_index + 1
                assert span["args"]["retry_after_s"] > 0
            # The root span opens at the first rejected round, so the
            # back-off wait is inside the end-to-end accounting.
            root = next(s for s in trace["spans"] if s["span_id"] == "root")
            assert root["start_s"] <= backoffs[0]["start_s"]

    def test_bad_client_trace_ids_are_replaced_not_trusted(self):
        with _serve() as svc:
            status, body, _headers = svc.submit_document(
                {"experiment": "table1"}, trace_id="<script>alert(1)</script>"
            )
            assert status == 202
            assert body["trace_id"] != "<script>alert(1)</script>"
            ServiceClient(svc.url, timeout_s=30).wait(body["job"]["id"], timeout_s=60)


class TestResultBytesUnchanged:
    def _result_bytes(self, trace_enabled):
        clear_cache()
        with _serve(jobs=2, trace=trace_enabled) as svc:
            client = ServiceClient(svc.url, timeout_s=30)
            body = client.submit(**SPEC_ARGS)
            job_id = body["job"]["id"]
            doc = client.wait(job_id, timeout_s=120)
            assert doc["state"] == "done"
            with urllib.request.urlopen(
                f"{svc.url}/v1/jobs/{job_id}/result", timeout=30
            ) as response:
                return response.read()

    def test_served_results_byte_identical_tracing_on_and_off(self):
        traced, untraced = self._result_bytes(True), self._result_bytes(False)
        # elapsed_s is wall-clock bookkeeping (it differs between any two
        # serves); every simulated number must agree to the last byte.
        docs = [json.loads(raw) for raw in (traced, untraced)]
        for doc in docs:
            for result in doc:
                result["elapsed_s"] = 0.0
        rendered = [json.dumps(doc, sort_keys=True) for doc in docs]
        assert rendered[0] == rendered[1]

    def test_trace_off_still_serves_lifecycle_spans_without_events(self):
        clear_cache()
        with _serve(jobs=2, trace=False) as svc:
            client = ServiceClient(svc.url, timeout_s=30)
            body = client.submit(**SPEC_ARGS)
            client.wait(body["job"]["id"], timeout_s=120)
            trace = client.trace(body["job"]["id"])
            assert validate_trace_document(trace) == []
            assert [s for s in trace["spans"] if s["category"] == "sim"]
            assert all(not run["events"] for run in trace["sim"])


class TestOpsSurfaces:
    def test_ops_endpoint_and_top_render(self):
        with _serve() as svc:
            client = ServiceClient(svc.url, timeout_s=30)
            body = client.submit(["table1"])
            client.wait(body["job"]["id"], timeout_s=60)
            ops = client.ops()
            assert ops["queue"]["limit"] == 16
            assert ops["jobs"]["counts"] == {"done": 1}
            assert ops["trace"]["enabled"] is True
            assert ops["latency"]["e2e_s"]["count"] == 1
            recent = ops["jobs"]["recent"]
            assert recent[0]["id"] == body["job"]["id"]
            assert recent[0]["trace_id"] == body["trace_id"]
            frame = render_ops(ops)
            assert body["job"]["id"] in frame
            assert "e2e_s" in frame and "queue" in frame

    def test_render_ops_handles_empty_service(self):
        with _serve() as svc:
            frame = render_ops(ops_document(svc))
            assert "hiss-top" in frame and "(none yet)" in frame

    def test_metrics_gains_trace_and_disk_gauges(self, tmp_path):
        with _serve(cache_dir=str(tmp_path / "cache")) as svc:
            client = ServiceClient(svc.url, timeout_s=30)
            body = client.submit(["table1"])
            client.wait(body["job"]["id"], timeout_s=60)
            doc = client.metrics()
            gauges = doc["gauges"]
            assert gauges["service.trace.enabled"] == 1.0
            assert "service.trace.dropped_events" in gauges
            # Canonical name mirroring Tracer.dropped_events.
            assert (
                gauges["telemetry.trace.dropped_events"]
                == gauges["service.trace.dropped_events"]
            )
            assert "service.disk_cache.hit_rate" in gauges
            text = client.metrics(text=True)
            assert "service.trace.enabled" in text

    def test_jsonl_ops_log_correlates_a_job_lifecycle(self):
        stream = io.StringIO()
        with _serve(ops_log=OpsLog(stream)) as svc:
            client = ServiceClient(svc.url, timeout_s=30)
            body = client.submit(["table1"])
            client.wait(body["job"]["id"], timeout_s=60)
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        events = [r["event"] for r in records]
        for expected in ("job.admitted", "batch.start", "job.started", "job.done"):
            assert expected in events
        trace_ids = {
            r["trace"] for r in records if r["event"].startswith("job.")
        }
        assert trace_ids == {body["trace_id"]}
        done = next(r for r in records if r["event"] == "job.done")
        assert done["job"] == body["job"]["id"]
        assert done["e2e_s"] > 0
        for record in records:
            assert isinstance(record["ts"], float)

    def test_opslog_disabled_is_free_and_open_path(self, tmp_path):
        log = OpsLog(None)
        assert not log.enabled
        log.log("anything", x=1)  # no-op, no error
        assert log.lines == 0
        path = tmp_path / "ops.jsonl"
        log = OpsLog.open_path(str(path))
        log.log("hello", n=2, skip=None)
        log.close()
        (record,) = [json.loads(l) for l in path.read_text().splitlines()]
        assert record["event"] == "hello" and record["n"] == 2
        assert "skip" not in record


class TestClientErrorsCarryTraceIds:
    def test_bad_spec_error_message_names_the_trace(self):
        with _serve() as svc:
            client = ServiceClient(svc.url, timeout_s=30)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(["figZZ"])
            assert excinfo.value.trace_id
            assert f"[trace {excinfo.value.trace_id}]" in str(excinfo.value)

    def test_per_request_timeout_override(self):
        with _serve() as svc:
            client = ServiceClient(svc.url, timeout_s=30)
            # A generous per-request override still succeeds...
            assert client._get("/healthz", timeout_s=10)["status"] == "ok"
            # ...and the configured default remains untouched.
            assert client.timeout_s == 30


class TestTraceDocumentUnit:
    def test_build_trace_document_for_synthetic_job(self):
        from repro.service.jobs import DONE, Job, JobSpec

        job = Job(
            id="job-1", spec=JobSpec(("fig4",)), dedupe_key="d",
            trace_id="ab12cd34ab12cd34", state=DONE,
            received_s=10.0, created_s=10.2, started_s=11.0,
            exec_done_s=14.0, render_start_s=14.0, finished_s=14.5,
            backoff_rounds=[
                {"received_s": 9.0, "rejected_s": 9.1, "reason": "queue-full",
                 "retry_after_s": 0.5}
            ],
            sim_runs=[
                {"run": "r0", "trace_ids": ["ab12cd34ab12cd34", "feedbeef"],
                 "wall_start_s": 11.5, "wall_end_s": 13.0, "worker_pid": 7,
                 "events_dropped": 0, "events": []}
            ],
        )
        doc = build_trace_document(job)
        assert validate_trace_document(doc) == []
        spans = {s["span_id"]: s for s in doc["spans"]}
        assert spans["root"]["start_s"] == 9.0  # back-off counts in e2e
        assert spans["backoff-0"]["status"] == "rejected"
        assert spans["submit"]["start_s"] == 10.0
        assert spans["sim-0"]["args"]["shared_with_traces"] == ["feedbeef"]
        assert doc["sim"][0]["parent_span_id"] == "sim-0"
