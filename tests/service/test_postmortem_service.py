"""Flight recorder wired into the serving tier.

The ISSUE's acceptance behaviors: an injected SLO tail regression and an
injected worker crash each auto-produce a bundle that validates and is
retrievable over HTTP; the manual trigger endpoint captures on demand;
``/v1/postmortems`` 404s when the recorder is off; and with the recorder
disabled the daemon's served results are byte-identical to an enabled
run (zero-overhead-off).

Determinism note: services here use a huge ``slo_interval_s`` so SLO
evaluation happens only via explicit ``tick()`` calls, and every capture
is awaited with ``flight.flush()`` — no test depends on timer or thread
scheduling.
"""

import io
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core import clear_cache, set_disk_cache
from repro.flight import validate_postmortem
from repro.obsd import SloSpec
from repro.service import HissService, ServiceClient
from repro.service.obs import OpsLog, ops_document

SPEC_ARGS = dict(experiments=["fig4"], quick=True, horizon_ms=1.0)

#: No real fig4 --quick serve finishes in 50 ms: a guaranteed breach.
TIGHT = SloSpec(name="e2e-tight", kind="latency", metric="e2e_s",
                percentile=99, threshold_s=0.05)


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_disk_cache(None)
    yield
    clear_cache()
    set_disk_cache(None)


def _serve(tmp_path=None, **kwargs):
    kwargs.setdefault("qos_threshold", 10.0)
    kwargs.setdefault("slo_interval_s", 3600.0)
    if tmp_path is not None:
        kwargs.setdefault("postmortem_dir", str(tmp_path / "pm"))
    return HissService(port=0, **kwargs)


def _run_one_job(svc):
    client = ServiceClient(svc.url, timeout_s=30)
    body = client.submit(**SPEC_ARGS)
    doc = client.wait(body["job"]["id"], timeout_s=120)
    assert doc["state"] == "done"
    return client, body


def _http(url):
    request = urllib.request.Request(url)
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, dict(response.headers), response.read()


class TestAutoCapture:
    def test_slo_tail_regression_produces_a_validating_bundle(self, tmp_path):
        stream = io.StringIO()
        with _serve(tmp_path, slos=[TIGHT], ops_log=OpsLog(stream)) as svc:
            client, _body = _run_one_job(svc)
            svc.slo_engine.tick(time.time(), svc)
            assert svc.flight.flush(timeout_s=30)
            index = client.postmortems()
            assert len(index["postmortems"]) == 1
            row = index["postmortems"][0]
            assert row["kind"] == "slo_alert"
            assert row["trigger"] == "slo-alert"
            bundle = client.postmortem(row["id"])
            assert validate_postmortem(bundle) == []
            # The bundle carries the alert and the implicated job.
            assert bundle["alerts"]["firing"] == ["e2e-tight"]
            assert bundle["jobs"], "no implicated jobs attached"
            assert bundle["jobs"][0]["spans"]
            assert bundle["rollup_window"]
            kinds = {e["kind"] for e in bundle["flight_ring"]["entries"]}
            assert "sim.tail" in kinds  # scheduler fed run tails in
        records = [json.loads(l) for l in stream.getvalue().splitlines()]
        written = [r for r in records if r["event"] == "postmortem.written"]
        assert len(written) == 1
        assert written[0]["kind"] == "slo_alert"

    def test_worker_crash_produces_a_bundle(self, tmp_path, monkeypatch):
        with _serve(tmp_path) as svc:
            crashes = {"n": 0}
            monkeypatch.setattr(
                "repro.core.pool.shared_pool_stats",
                lambda: {"crashed_workers": crashes["n"], "spawned_workers": 4},
            )
            client = ServiceClient(svc.url, timeout_s=30)
            # Baseline batch: recorder latches crashed_workers == 0.
            svc.flight.observe({"ts": time.time(), "event": "batch.executed"})
            assert client.postmortems()["postmortems"] == []
            # A worker dies; the next batch-end check sees the delta.
            crashes["n"] = 1
            svc.flight.observe({"ts": time.time(), "event": "batch.executed"})
            assert svc.flight.flush(timeout_s=30)
            rows = client.postmortems()["postmortems"]
            assert [row["kind"] for row in rows] == ["worker_crash"]
            bundle = client.postmortem(rows[0]["id"])
            assert validate_postmortem(bundle) == []
            assert "1 pool worker(s) crashed" in bundle["trigger"]["detail"]

    def test_job_e2e_threshold_trigger(self, tmp_path):
        with _serve(tmp_path, postmortem_e2e_threshold_s=0.001) as svc:
            client, body = _run_one_job(svc)
            assert svc.flight.flush(timeout_s=30)
            rows = client.postmortems()["postmortems"]
            assert [row["kind"] for row in rows] == ["job_latency"]
            bundle = client.postmortem(rows[0]["id"])
            assert validate_postmortem(bundle) == []
            # The breaching job is the implicated one.
            assert bundle["trigger"]["jobs"] == [body["job"]["id"]]
            assert bundle["jobs"][0]["job_id"] == body["job"]["id"]

    def test_alert_storm_is_debounced_to_one_bundle(self, tmp_path):
        with _serve(tmp_path) as svc:
            now = time.time()
            for i in range(5):
                svc.flight.observe(
                    {"ts": now + i, "event": "slo.alert", "slo": "e2e-tight",
                     "burn_fast": 20.0, "burn_slow": 15.0}
                )
            assert svc.flight.flush(timeout_s=30)
            rows = ServiceClient(svc.url, timeout_s=30).postmortems()["postmortems"]
            assert len(rows) == 1
            gauges = svc.gauges()
            assert gauges["postmortem.captured"] == 1.0
            assert gauges["postmortem.suppressed"] == 4.0


class TestManualTrigger:
    def test_post_captures_on_demand(self, tmp_path):
        with _serve(tmp_path) as svc:
            client = ServiceClient(svc.url, timeout_s=30)
            body = client.trigger_postmortem(reason="drill")
            assert body["postmortem"]["id"] == "pm-000000-manual"
            bundle = client.postmortem(body["postmortem"]["id"])
            assert validate_postmortem(bundle) == []
            assert bundle["trigger"]["detail"] == "drill"

    def test_post_rate_limits_with_429(self, tmp_path):
        from repro.flight import TriggerSpec

        triggers = (TriggerSpec("manual", "manual", debounce_s=0.0, max_per_hour=1),)
        with _serve(tmp_path, flight_triggers=triggers) as svc:
            client = ServiceClient(svc.url, timeout_s=30)
            client.trigger_postmortem()
            from repro.service.client import ServiceRejected

            with pytest.raises(ServiceRejected):
                client.trigger_postmortem()

    def test_post_404s_when_disabled(self):
        with _serve() as svc:
            from repro.service.client import ServiceError

            with pytest.raises(ServiceError) as excinfo:
                ServiceClient(svc.url, timeout_s=30).trigger_postmortem()
            assert excinfo.value.status == 404


class TestLedgerInvariant:
    def test_note_invariant_violation_captures(self, tmp_path):
        with _serve(tmp_path) as svc:
            svc.flight.note_invariant_violation(
                time.time(), "service-channel sums diverged by 42ns"
            )
            assert svc.flight.flush(timeout_s=30)
            rows = ServiceClient(svc.url, timeout_s=30).postmortems()["postmortems"]
            assert [row["kind"] for row in rows] == ["ledger_invariant"]
            assert "42ns" in rows[0]["detail"]


class TestReadSide:
    def test_endpoints_404_when_disabled(self):
        with _serve() as svc:
            assert svc.flight is None
            for path in ("/v1/postmortems", "/v1/postmortems/pm-000000-manual"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _http(f"{svc.url}{path}")
                assert excinfo.value.code == 404
                assert json.loads(excinfo.value.read())["error"] == (
                    "postmortem-disabled"
                )

    def test_unknown_bundle_404s(self, tmp_path):
        with _serve(tmp_path) as svc:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _http(f"{svc.url}/v1/postmortems/pm-999999-manual")
            assert excinfo.value.code == 404
            assert json.loads(excinfo.value.read())["error"] == "unknown-postmortem"

    def test_gauges_present_only_when_enabled(self, tmp_path):
        with _serve(tmp_path) as svc:
            gauges = ServiceClient(svc.url, timeout_s=30).metrics()["gauges"]
            assert gauges["postmortem.triggers"] == 4.0
            assert gauges["postmortem.captured"] == 0.0
        with _serve() as svc:
            gauges = ServiceClient(svc.url, timeout_s=30).metrics()["gauges"]
            assert not [n for n in gauges if n.startswith("postmortem.")]

    def test_ops_document_reports_flight_state(self, tmp_path):
        with _serve(tmp_path) as svc:
            ServiceClient(svc.url, timeout_s=30).trigger_postmortem()
            ops = ops_document(svc)
            assert ops["postmortems"]["enabled"] is True
            assert ops["postmortems"]["stored"] == 1
            assert ops["postmortems"]["last"]["id"] == "pm-000000-manual"
            assert "runs_failed" in ops["pool"]
        with _serve() as svc:
            assert ops_document(svc)["postmortems"] == {"enabled": False}


class TestDisabledIsFree:
    def _served_results(self, tmp_path=None):
        clear_cache()
        with _serve(tmp_path, jobs=2) as svc:
            client, body = _run_one_job(svc)
            _status, _headers, raw = _http(
                f"{svc.url}/v1/jobs/{body['job']['id']}/result"
            )
            return raw

    def test_results_byte_identical_with_and_without_recorder(self, tmp_path):
        results = []
        for raw in (self._served_results(tmp_path), self._served_results(None)):
            doc = json.loads(raw)
            for row in doc:
                row["elapsed_s"] = 0.0  # wall-clock bookkeeping only
            results.append(json.dumps(doc, sort_keys=True))
        assert results[0] == results[1]
