"""End-to-end tests for the ``hiss-sweep`` console entry point."""

import json

import pytest

from repro.search.cli import EXIT_INTERRUPTED, main

COMMON = ["--budget", "4", "--round-size", "2", "--horizon-ms", "1", "--seed", "5"]


def run_cli(*argv):
    return main(list(argv))


class TestRun:
    def test_run_writes_archive_and_summary(self, tmp_path, capsys):
        state = str(tmp_path / "s.jsonl")
        assert run_cli("run", "--state", state, *COMMON) == 0
        out = capsys.readouterr().out
        assert "sweep complete" in out
        with open(state + ".archive.json") as handle:
            document = json.load(handle)
        assert document["evaluations"] == 4

    def test_run_refuses_existing_state(self, tmp_path, capsys):
        state = str(tmp_path / "s.jsonl")
        assert run_cli("run", "--state", state, *COMMON) == 0
        with pytest.raises(FileExistsError):
            run_cli("run", "--state", state, *COMMON)

    def test_metrics_flag_prints_search_counters(self, tmp_path, capsys):
        state = str(tmp_path / "s.jsonl")
        assert run_cli("run", "--state", state, "--metrics", *COMMON) == 0
        out = capsys.readouterr().out
        assert "search.evaluations 4" in out
        assert "search.frontier_size" in out

    def test_spans_flag_writes_trace_document(self, tmp_path):
        state = str(tmp_path / "s.jsonl")
        spans = str(tmp_path / "spans.json")
        assert run_cli("run", "--state", state, "--spans", spans, *COMMON) == 0
        with open(spans) as handle:
            document = json.load(handle)
        names = [span["name"] for span in document["spans"]]
        assert any(name.startswith("round ") for name in names)


class TestInterruptAndResume:
    def test_full_kill_resume_convergence(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        killed = str(tmp_path / "killed.jsonl")
        code = run_cli(
            "run", "--state", killed, "--cache-dir", cache,
            "--interrupt-after", "3", *COMMON,
        )
        assert code == EXIT_INTERRUPTED
        assert "interrupted" in capsys.readouterr().err

        assert run_cli(
            "resume", "--state", killed, "--cache-dir", cache, *COMMON
        ) == 0
        resumed_out = capsys.readouterr().out
        assert "simulated 0" in resumed_out  # resume re-runs from disk cache

        reference = str(tmp_path / "reference.jsonl")
        assert run_cli(
            "run", "--state", reference, "--cache-dir", cache, *COMMON
        ) == 0
        with open(killed + ".archive.json", "rb") as fa, \
                open(reference + ".archive.json", "rb") as fb:
            assert fa.read() == fb.read()


class TestReportAndValidate:
    def test_report_table_and_html(self, tmp_path, capsys):
        state = str(tmp_path / "s.jsonl")
        html = str(tmp_path / "frontier.html")
        assert run_cli("run", "--state", state, *COMMON) == 0
        assert run_cli("report", "--state", state, "-o", html) == 0
        out = capsys.readouterr().out
        assert "frontier point(s)" in out
        with open(html) as handle:
            assert "hiss-sweep-data" in handle.read()

    def test_report_without_archive_errors(self, tmp_path, capsys):
        assert run_cli("report", "--state", str(tmp_path / "nope.jsonl")) == 1
        assert "no archive" in capsys.readouterr().err

    def test_validate_accepts_a_finished_sweep(self, tmp_path, capsys):
        state = str(tmp_path / "s.jsonl")
        assert run_cli("run", "--state", state, *COMMON) == 0
        assert run_cli("validate", "--state", state) == 0
        assert "valid:" in capsys.readouterr().out

    def test_validate_flags_tampered_journal(self, tmp_path, capsys):
        state = str(tmp_path / "s.jsonl")
        assert run_cli("run", "--state", state, *COMMON) == 0
        with open(state, "a") as handle:
            handle.write(
                '{"kind":"eval","round":0,"point":{"bogus":1},"vector":[1]}\n'
            )
        assert run_cli("validate", "--state", state) == 1
        assert "INVALID" in capsys.readouterr().err
