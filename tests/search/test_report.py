"""Tests for the frontier table and the self-contained HTML report."""

import json

from repro.search.report import (
    DATA_ELEMENT_ID,
    frontier_table,
    render_html,
    write_html,
)

DOCUMENT = {
    "schema": 1,
    "seed": 3,
    "budget": 8,
    "strategy": "evolve",
    "space_digest": "abc123def456",
    "objectives": ["cpu_perf", "gpu_perf", "ssr_latency_us", "cc6_residency"],
    "evaluations": 8,
    "rounds": 2,
    "frontier": [
        {
            "label": "coalesce_us=13 qos=off",
            "point": {"coalesce_us": 13, "qos": "off"},
            "vector": [0.95, 1.01, 51.7, 0.0],
        },
        {
            "label": "coalesce_us=0 qos=<th_5>",
            "point": {"coalesce_us": 0, "qos": "th_5"},
            "vector": [0.99, 0.43, 12.2, 0.1],
        },
    ],
}


class TestFrontierTable:
    def test_contains_labels_and_counts(self):
        table = frontier_table(DOCUMENT)
        assert "coalesce_us=13 qos=off" in table
        assert "cpu_perf (x)" in table
        assert "2 frontier point(s) from 8 evaluation(s) over 2 round(s)" in table

    def test_empty_frontier_renders(self):
        table = frontier_table({"frontier": [], "evaluations": 0, "rounds": 0})
        assert "0 frontier point(s)" in table


class TestHtmlReport:
    def test_self_contained_with_embedded_payload(self):
        html = render_html(DOCUMENT)
        assert html.startswith("<!DOCTYPE html>")
        assert f'id="{DATA_ELEMENT_ID}"' in html
        assert "<svg" in html and "</svg>" in html
        assert "http-equiv" not in html  # no external fetches at all
        assert "src=" not in html and "href=" not in html

    def test_labels_escaped(self):
        html = render_html(DOCUMENT)
        assert "qos=&lt;th_5&gt;" in html
        assert "qos=<th_5>" not in html.split("application/json")[0]

    def test_payload_round_trips(self):
        evaluations = [({"coalesce_us": 0, "qos": "off"}, [0.9, 1.0, 30.0, 0.0])]
        html = render_html(DOCUMENT, evaluations)
        payload_text = html.split(f'id="{DATA_ELEMENT_ID}">', 1)[1]
        payload_text = payload_text.split("</script>", 1)[0]
        payload = json.loads(payload_text.replace("<\\/", "</"))
        assert payload["document"]["seed"] == 3
        assert payload["evaluations"][0][0] == {"coalesce_us": 0, "qos": "off"}

    def test_frontier_polyline_present_with_two_points(self):
        html = render_html(DOCUMENT)
        assert "polyline" in html

    def test_write_html(self, tmp_path):
        path = str(tmp_path / "report.html")
        assert write_html(DOCUMENT, path) == path
        with open(path, "r", encoding="utf-8") as handle:
            assert DATA_ELEMENT_ID in handle.read()
