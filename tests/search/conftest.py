"""Shared fixtures for the autotuner tests: tiny spaces, isolated caches."""

import pytest

from repro.core import clear_cache, set_disk_cache
from repro.search.space import Knob, SearchSpace, _apply_coalesce, _apply_qos

#: Short horizon keeps every simulated evaluation in milliseconds.
HORIZON = 1_000_000


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_disk_cache(None)
    yield
    clear_cache()
    set_disk_cache(None)


def tiny_space() -> SearchSpace:
    """A 2x2 space over real knobs — 4 points, fast to exhaust."""
    return SearchSpace(
        [
            Knob(
                name="coalesce_us",
                values=(0, 13),
                apply=_apply_coalesce,
            ),
            Knob(
                name="qos",
                values=("off", "th_5"),
                apply=_apply_qos,
            ),
        ]
    )


@pytest.fixture
def space():
    return tiny_space()
