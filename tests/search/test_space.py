"""Unit tests for the typed search space and its canonical encoding."""

import pytest

from repro.config import SystemConfig
from repro.search.space import (
    QOS_ADAPTIVE,
    QOS_OFF,
    STEER_OFF,
    Knob,
    SearchSpace,
    default_space,
)


def noop(config, value):
    return config


class TestKnob:
    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError, match="empty domain"):
            Knob(name="k", values=(), apply=noop)

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Knob(name="k", values=(1, 1), apply=noop)

    def test_non_scalar_values_rejected(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            Knob(name="k", values=((1, 2),), apply=noop)

    def test_index_of(self):
        knob = Knob(name="k", values=(5, 10, 20), apply=noop)
        assert knob.index_of(10) == 1
        with pytest.raises(ValueError, match="not in domain"):
            knob.index_of(7)


class TestSearchSpace:
    def test_needs_knobs(self):
        with pytest.raises(ValueError, match="at least one knob"):
            SearchSpace([])

    def test_duplicate_names_rejected(self):
        knob = Knob(name="k", values=(1,), apply=noop)
        with pytest.raises(ValueError, match="duplicate knob names"):
            SearchSpace([knob, knob])

    def test_size_is_grid_cardinality(self, space):
        assert space.size == 4
        assert len(list(space.grid())) == 4

    def test_validate_missing_and_unknown(self, space):
        with pytest.raises(ValueError, match="missing"):
            space.validate({"coalesce_us": 0})
        with pytest.raises(ValueError, match="unknown knob"):
            space.validate({"coalesce_us": 0, "qos": "off", "bogus": 1})
        with pytest.raises(ValueError, match="not in domain"):
            space.validate({"coalesce_us": 7, "qos": "off"})
        with pytest.raises(TypeError, match="must be a dict"):
            space.validate([("coalesce_us", 0)])

    def test_encode_is_canonical(self, space):
        a = space.encode({"coalesce_us": 13, "qos": "off"})
        b = space.encode({"qos": "off", "coalesce_us": 13})
        assert a == b
        assert " " not in a  # compact separators

    def test_encode_decode_round_trip(self, space):
        for point in space.grid():
            assert space.decode(space.encode(point)) == point

    def test_grid_order_is_knob_major_and_deterministic(self, space):
        first = [space.encode(p) for p in space.grid()]
        second = [space.encode(p) for p in space.grid()]
        assert first == second
        assert len(set(first)) == 4
        # Last knob varies fastest.
        assert first[0] != first[1]
        points = list(space.grid())
        assert points[0]["coalesce_us"] == points[1]["coalesce_us"]

    def test_point_from_indices_wraps(self, space):
        point = space.point_from_indices([2, 3])
        space.validate(point)

    def test_apply_lands_on_system_config(self, space):
        config = space.apply(
            SystemConfig(), {"coalesce_us": 13, "qos": "th_5"}
        )
        assert config.mitigation.coalesce_window_ns == 13_000
        assert config.qos.enabled
        assert config.qos.ssr_time_threshold == pytest.approx(0.05)

    def test_digest_tracks_domain_changes(self, space):
        reshaped = SearchSpace(
            [
                Knob(name="coalesce_us", values=(0, 13, 26), apply=noop),
                space.knob("qos"),
            ]
        )
        assert space.digest() != reshaped.digest()
        assert space.digest() == space.digest()

    def test_point_label(self, space):
        label = space.point_label({"qos": "off", "coalesce_us": 0})
        assert label == "coalesce_us=0 qos=off"


class TestDefaultSpace:
    def test_shape(self):
        space = default_space()
        assert space.names == [
            "coalesce_us", "steer_core", "monolithic", "outstanding", "qos",
        ]
        assert space.size == 5 * 5 * 2 * 4 * 6 == 1200

    def test_sentinels_apply(self):
        space = default_space()
        base = SystemConfig()
        off = space.apply(base, {
            "coalesce_us": 0, "steer_core": STEER_OFF, "monolithic": False,
            "outstanding": 64, "qos": QOS_OFF,
        })
        assert not off.mitigation.steer_to_single_core
        assert not off.qos.enabled
        assert off.gpu.max_outstanding_ssrs == 64

        on = space.apply(base, {
            "coalesce_us": 13, "steer_core": 2, "monolithic": True,
            "outstanding": 8, "qos": QOS_ADAPTIVE,
        })
        assert on.mitigation.steer_to_single_core
        assert on.mitigation.steering_target == 2
        assert on.mitigation.monolithic_bottom_half
        assert on.mitigation.coalesce_window_ns == 13_000
        assert on.qos.enabled and on.qos.adaptive
        assert on.gpu.max_outstanding_ssrs == 8

    def test_num_cores_bounds_steering(self):
        space = default_space(num_cores=2)
        assert space.knob("steer_core").values == (STEER_OFF, 0, 1)

    def test_unknown_qos_mode_rejected(self):
        space = default_space()
        with pytest.raises(ValueError, match="not in domain"):
            space.apply(SystemConfig(), {
                "coalesce_us": 0, "steer_core": STEER_OFF, "monolithic": False,
                "outstanding": 64, "qos": "th_33",
            })
