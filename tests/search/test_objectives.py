"""Tests for objective extraction from run metrics."""

import pytest

from repro.config import SystemConfig
from repro.search.objectives import (
    OBJECTIVE_NAMES,
    OBJECTIVES,
    EvaluationContext,
    Objective,
    maximized_vector,
)

from .conftest import HORIZON


def context():
    return EvaluationContext(base_config=SystemConfig(), horizon_ns=HORIZON)


class TestObjective:
    def test_directions_validated(self):
        with pytest.raises(ValueError, match="direction"):
            Objective(name="x", direction="sideways")

    def test_paper_vector_shape(self):
        assert OBJECTIVE_NAMES == (
            "cpu_perf", "gpu_perf", "ssr_latency_us", "cc6_residency",
        )
        directions = [o.direction for o in OBJECTIVES]
        assert directions == ["max", "max", "min", "max"]


class TestMaximizedVector:
    def test_negates_only_minimized_axes(self):
        raw = (1.0, 2.0, 3.0, 4.0)
        assert maximized_vector(raw) == (1.0, 2.0, -3.0, 4.0)

    def test_involution(self):
        raw = (0.5, 1.5, 40.0, 0.2)
        assert maximized_vector(maximized_vector(raw)) == raw

    def test_arity_checked(self):
        with pytest.raises(ValueError, match="expected 4"):
            maximized_vector((1.0, 2.0))


class TestEvaluationContext:
    def test_baselines_lead_and_keys_dedup(self, space):
        ctx = context()
        points = [
            {"coalesce_us": 0, "qos": "off"},
            {"coalesce_us": 0, "qos": "off"},  # duplicate point
            {"coalesce_us": 13, "qos": "off"},
        ]
        keys = ctx.keys_for(space, points)
        assert keys[:2] == ctx.baseline_keys()
        assert len(keys) == 4  # 2 baselines + 2 unique pair runs
        assert len(set(keys)) == len(keys)

    def test_point_key_carries_applied_config(self, space):
        ctx = context()
        key = ctx.point_key(space, {"coalesce_us": 13, "qos": "off"})
        cpu_name, gpu_name, ssr_enabled, config, horizon_ns = key
        assert (cpu_name, gpu_name, ssr_enabled) == ("x264", "ubench", True)
        assert config.mitigation.coalesce_window_ns == 13_000
        assert horizon_ns == HORIZON

    def test_evaluate_returns_plausible_vector(self, space):
        ctx = context()
        vector = ctx.evaluate(space, {"coalesce_us": 0, "qos": "off"})
        assert len(vector) == len(OBJECTIVES)
        cpu_perf, gpu_perf, latency_us, cc6 = vector
        assert 0.0 < cpu_perf <= 1.5
        assert gpu_perf > 0.0
        assert latency_us > 0.0
        assert 0.0 <= cc6 <= 1.0

    def test_evaluate_is_deterministic(self, space):
        ctx = context()
        point = {"coalesce_us": 13, "qos": "th_5"}
        assert ctx.evaluate(space, point) == ctx.evaluate(space, point)

    def test_mitigated_point_beats_default_on_cpu(self, space):
        """Sanity: coalescing should raise CPU perf versus no mitigation."""
        ctx = context()
        default = ctx.evaluate(space, {"coalesce_us": 0, "qos": "off"})
        coalesced = ctx.evaluate(space, {"coalesce_us": 13, "qos": "off"})
        assert coalesced[0] > default[0]
