"""Determinism tests for the proposal strategies and their PRNG."""

import pytest

from repro.search.samplers import (
    GridSampler,
    LatticeSampler,
    MutationSampler,
    SplitMix64,
    derive_seed,
    sampler_for_round,
)


class TestSplitMix64:
    def test_same_seed_same_stream(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        assert [a.next_u64() for _ in range(16)] == [
            b.next_u64() for _ in range(16)
        ]

    def test_known_first_value(self):
        """Pin the stream so a platform/Python change cannot drift silently."""
        assert SplitMix64(0).next_u64() == 0xE220A8397B1DCDAF

    def test_randrange_bounds(self):
        rng = SplitMix64(7)
        draws = [rng.randrange(5) for _ in range(200)]
        assert set(draws) == {0, 1, 2, 3, 4}
        with pytest.raises(ValueError):
            rng.randrange(0)

    def test_choice(self):
        rng = SplitMix64(3)
        assert rng.choice(["only"]) == "only"


class TestDeriveSeed:
    def test_stable_and_distinct(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed("1a")
        assert 0 <= derive_seed("x") < 2 ** 64


class TestGridSampler:
    def test_scans_in_grid_order_and_skips_evaluated(self, space):
        sampler = GridSampler()
        first_two = sampler.propose(space, 2, 0, [], set())
        assert len(first_two) == 2
        evaluated = {space.encode(p) for p in first_two}
        rest = sampler.propose(space, 10, 1, [], evaluated)
        assert len(rest) == 2  # the other half of the 4-point grid
        assert not evaluated & {space.encode(p) for p in rest}

    def test_exhausted_space_proposes_nothing(self, space):
        everything = {space.encode(p) for p in space.grid()}
        assert GridSampler().propose(space, 4, 0, [], everything) == []


class TestLatticeSampler:
    def test_deterministic_and_unique(self, space):
        a = LatticeSampler().propose(space, 3, 0, [], set())
        b = LatticeSampler().propose(space, 3, 0, [], set())
        assert [space.encode(p) for p in a] == [space.encode(p) for p in b]
        assert len({space.encode(p) for p in a}) == len(a)

    def test_respects_evaluated_set(self, space):
        first = LatticeSampler().propose(space, 2, 0, [], set())
        evaluated = {space.encode(p) for p in first}
        second = LatticeSampler().propose(space, 4, 1, [], evaluated)
        assert not evaluated & {space.encode(p) for p in second}

    def test_terminates_on_saturated_space(self, space):
        everything = {space.encode(p) for p in space.grid()}
        assert LatticeSampler().propose(space, 4, 0, [], everything) == []


class TestMutationSampler:
    def test_pure_function_of_inputs(self, space):
        frontier = [{"coalesce_us": 0, "qos": "off"}]
        a = MutationSampler(seed=5).propose(space, 3, 1, frontier, set())
        b = MutationSampler(seed=5).propose(space, 3, 1, frontier, set())
        assert [space.encode(p) for p in a] == [space.encode(p) for p in b]

    def test_seed_changes_proposals(self, space):
        frontier = [{"coalesce_us": 0, "qos": "off"}]
        a = MutationSampler(seed=5).propose(space, 3, 1, frontier, set())
        b = MutationSampler(seed=6).propose(space, 3, 1, frontier, set())
        assert a != b or len(a) <= 3  # tiny space may coincide; both valid

    def test_mutants_are_valid_and_fresh(self, space):
        frontier = [{"coalesce_us": 0, "qos": "off"}]
        evaluated = {space.encode(frontier[0])}
        mutants = MutationSampler(seed=1).propose(space, 3, 2, frontier, evaluated)
        for mutant in mutants:
            space.validate(mutant)
            assert space.encode(mutant) not in evaluated

    def test_empty_frontier_falls_back_to_origin(self, space):
        mutants = MutationSampler(seed=1).propose(space, 2, 1, [], set())
        assert mutants  # still proposes from the grid origin


class TestSamplerForRound:
    def test_strategy_mapping(self):
        assert isinstance(sampler_for_round("grid", 0, 3), GridSampler)
        assert isinstance(sampler_for_round("lattice", 0, 3), LatticeSampler)
        assert isinstance(sampler_for_round("evolve", 0, 0), LatticeSampler)
        assert isinstance(sampler_for_round("evolve", 0, 1), MutationSampler)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            sampler_for_round("anneal", 0, 0)
