"""Driver contract tests: determinism, resume convergence, zero-sim warmth."""

import json
import os

import pytest

from repro.core import clear_cache, set_disk_cache
from repro.core.runcache import DiskCache
from repro.search.driver import (
    SweepDriver,
    SweepInterrupted,
    SweepResult,
    SweepSettings,
    load_journal,
    replay_journal,
)

from .conftest import HORIZON

SETTINGS = SweepSettings(
    seed=11, budget=4, round_size=2, strategy="evolve", horizon_ns=HORIZON
)


def driver(space, tmp_path, name, **kwargs):
    return SweepDriver(
        space,
        kwargs.pop("settings", SETTINGS),
        state_path=str(tmp_path / f"{name}.jsonl"),
        **kwargs,
    )


class TestSettings:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="budget"):
            SweepSettings(budget=0)
        with pytest.raises(ValueError, match="round_size"):
            SweepSettings(round_size=-1)

    def test_result_summary_mentions_simulated(self):
        line = SweepResult(simulations=0).summary()
        assert "simulated 0" in line


class TestDeterminism:
    def test_same_seed_budget_byte_identical_archives(self, space, tmp_path):
        a = driver(space, tmp_path, "a")
        b = driver(space, tmp_path, "b")
        a.run()
        b.run()
        with open(a.archive_path, "rb") as fa, open(b.archive_path, "rb") as fb:
            assert fa.read() == fb.read()

    def test_different_seed_changes_journal(self, space, tmp_path):
        a = driver(space, tmp_path, "a")
        other = SweepSettings(
            seed=12, budget=4, round_size=2, strategy="evolve", horizon_ns=HORIZON
        )
        b = driver(space, tmp_path, "b", settings=other)
        a.run()
        b.run()
        meta_a = load_journal(a.state_path)[0]
        meta_b = load_journal(b.state_path)[0]
        assert meta_a["seed"] != meta_b["seed"]

    def test_budget_respected_and_result_counts(self, space, tmp_path):
        d = driver(space, tmp_path, "a")
        result = d.run()
        assert result.evaluations <= SETTINGS.budget
        assert result.evaluations == len(d.archive)
        assert result.frontier_size >= 1
        assert result.rounds >= 1

    def test_exhausted_space_stops_before_budget(self, space, tmp_path):
        greedy = SweepSettings(
            seed=1, budget=50, round_size=10, strategy="grid", horizon_ns=HORIZON
        )
        result = driver(space, tmp_path, "a", settings=greedy).run()
        assert result.evaluations == space.size  # 4-point grid fully swept
        assert result.stopped == "exhausted"

    def test_max_rounds_stops_early(self, space, tmp_path):
        capped = SweepSettings(
            seed=1, budget=50, round_size=1, strategy="grid",
            horizon_ns=HORIZON, max_rounds=2,
        )
        result = driver(space, tmp_path, "a", settings=capped).run()
        assert result.rounds == 2
        assert result.stopped == "max_rounds"


class TestJournal:
    def test_journal_schema(self, space, tmp_path):
        d = driver(space, tmp_path, "a")
        d.run()
        records = load_journal(d.state_path)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "meta"
        assert "eval" in kinds and "round" in kinds
        meta = records[0]
        assert meta["space_digest"] == space.digest()
        for record in records:
            if record["kind"] == "eval":
                space.validate(record["point"])
                assert len(record["vector"]) == 4

    def test_fresh_run_refuses_existing_journal(self, space, tmp_path):
        d = driver(space, tmp_path, "a")
        d.run()
        again = driver(space, tmp_path, "a")
        with pytest.raises(FileExistsError):
            again.run()

    def test_resume_requires_journal(self, space, tmp_path):
        with pytest.raises(FileNotFoundError):
            driver(space, tmp_path, "missing").run(resume=True)

    def test_resume_rejects_drifted_settings(self, space, tmp_path):
        d = driver(space, tmp_path, "a")
        d.run()
        drifted = SweepSettings(
            seed=99, budget=4, round_size=2, strategy="evolve", horizon_ns=HORIZON
        )
        with pytest.raises(ValueError, match="seed"):
            driver(space, tmp_path, "a", settings=drifted).run(resume=True)

    def test_replay_drops_partial_rounds(self, space, tmp_path):
        d = driver(space, tmp_path, "a")
        d.run()
        records = load_journal(d.state_path)
        # Forge a partial round: evals journaled but no round record.
        point = next(iter(space.grid()))
        records.append(
            {"kind": "eval", "round": 99, "point": point, "vector": [1, 1, 1, 1]}
        )
        state = replay_journal(records, space)
        encodings = set(state["archive"])
        assert state["next_round"] == d.result.rounds
        full = replay_journal(load_journal(d.state_path), space)
        assert encodings == set(full["archive"])  # forged eval ignored

    def test_torn_final_line_skipped(self, space, tmp_path):
        d = driver(space, tmp_path, "a")
        d.run()
        with open(d.state_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "eval", "round"')  # simulated crash
        records = load_journal(d.state_path)
        assert all(r["kind"] in ("meta", "eval", "round") for r in records)


class TestResumeConvergence:
    def test_interrupt_plus_resume_matches_uninterrupted(self, space, tmp_path):
        cache = DiskCache(str(tmp_path / "cache"))
        set_disk_cache(cache)

        interrupted = driver(space, tmp_path, "killed", interrupt_after=3)
        with pytest.raises(SweepInterrupted):
            interrupted.run()
        partial = replay_journal(load_journal(interrupted.state_path), space)
        assert len(partial["archive"]) < SETTINGS.budget

        # A new process: in-memory cache gone, disk cache survives.
        clear_cache()
        resumed = driver(space, tmp_path, "killed")
        result = resumed.run(resume=True)
        assert result.simulations == 0  # every re-proposed run is on disk
        assert result.restored > 0

        clear_cache()
        reference = driver(space, tmp_path, "reference")
        reference.run()
        with open(resumed.archive_path, "rb") as fa, \
                open(reference.archive_path, "rb") as fb:
            assert fa.read() == fb.read()

    def test_warm_rerun_executes_zero_simulations(self, space, tmp_path):
        set_disk_cache(DiskCache(str(tmp_path / "cache")))
        cold = driver(space, tmp_path, "cold")
        cold_result = cold.run()
        assert cold_result.simulations > 0

        clear_cache()  # fresh process; disk cache remains
        warm = driver(space, tmp_path, "warm")
        warm_result = warm.run()
        assert warm_result.simulations == 0
        assert warm_result.cache_served > 0
        with open(cold.archive_path, "rb") as fa, \
                open(warm.archive_path, "rb") as fb:
            assert fa.read() == fb.read()


class TestTelemetry:
    def test_spans_and_gauges(self, space, tmp_path):
        d = driver(space, tmp_path, "a")
        d.run()
        span_names = [span.name for span in d.recorder.spans()]
        assert any(name.startswith("round ") for name in span_names)
        gauges = d.gauges()
        assert set(gauges) == {
            "search.evaluations",
            "search.cache_served",
            "search.simulations",
            "search.frontier_size",
            "search.rounds",
        }
        assert gauges["search.evaluations"] == d.result.evaluations
        counters = d.registry.snapshot()["counters"]
        assert counters["search.evaluations"] == d.result.evaluations
        assert counters["search.rounds"] == d.result.rounds

    def test_archive_document_is_canonical_json(self, space, tmp_path):
        d = driver(space, tmp_path, "a")
        d.run()
        with open(d.archive_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        document = json.loads(text)
        rendered = json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
        assert text == rendered
        assert document["objectives"] == [
            "cpu_perf", "gpu_perf", "ssr_latency_us", "cc6_residency",
        ]
        for entry in document["frontier"]:
            space.validate(entry["point"])
