"""Unit tests for the IOMMU device model: PPR queue, coalescing, MSIs."""

import pytest

from repro.config import SystemConfig
from repro.iommu import Iommu
from repro.oskernel import Kernel
from repro.sim import Environment, RngRegistry

from .conftest import build_stack, make_request


class TestSubmission:
    def test_request_completes_end_to_end(self, stack):
        kernel, iommu, _driver = stack
        request = make_request(kernel, iommu)
        iommu.submit(request)
        kernel.env.run(until=2_000_000)
        assert request.completion.triggered
        assert request.latency_ns > 0

    def test_requests_counted(self, stack):
        kernel, iommu, _driver = stack
        for _ in range(3):
            iommu.submit(make_request(kernel, iommu))
        kernel.env.run(until=2_000_000)
        assert kernel.counters.get("ssr_request") == 3
        assert kernel.ssr_accounting.completed == 3

    def test_latency_stats_recorded(self, stack):
        kernel, iommu, _driver = stack
        iommu.submit(make_request(kernel, iommu))
        kernel.env.run(until=2_000_000)
        assert iommu.latency.count == 1
        assert iommu.latency.mean_ns > 0
        assert iommu.latency.max_ns >= iommu.latency.mean_ns


class TestBackpressure:
    def test_ppr_queue_blocks_when_full(self):
        kernel, iommu, _driver = build_stack()
        # Freeze servicing by not running the sim between submits: fill the
        # queue beyond capacity and check pending puts accumulate.
        capacity = kernel.config.iommu.ppr_queue_entries
        for _ in range(capacity + 5):
            iommu.submit(make_request(kernel, iommu))
        assert len(iommu.ppr_queue) == capacity
        assert iommu.ppr_queue.pending_puts == 5

    def test_drain_unblocks_pending_puts(self):
        kernel, iommu, _driver = build_stack()
        capacity = kernel.config.iommu.ppr_queue_entries
        events = [iommu.submit(make_request(kernel, iommu)) for _ in range(capacity + 2)]
        iommu.drain_ready()
        assert all(e.triggered for e in events)


class TestCoalescing:
    def test_no_coalescing_raises_one_interrupt_per_request(self):
        kernel, iommu, _driver = build_stack()
        batches = []
        iommu.on_interrupt = lambda batch: batches.append(batch)
        for _ in range(4):
            iommu.submit(make_request(kernel, iommu))
        kernel.env.run(until=100_000)
        assert batches == [1, 1, 1, 1]

    def test_window_merges_requests(self):
        config = SystemConfig().with_mitigation(coalesce_window_ns=13_000)
        kernel = Kernel(Environment(), config, RngRegistry(1))
        iommu = Iommu(kernel)
        batches = []
        iommu.on_interrupt = lambda batch: batches.append(batch)
        kernel.boot()

        def feed():
            for _ in range(5):
                iommu.submit(make_request(kernel, iommu))
                yield kernel.env.timeout(2_000)

        kernel.env.process(feed())
        kernel.env.run(until=100_000)
        assert sum(batches) == 5
        assert len(batches) < 5  # some merging happened

    def test_batch_size_limit_triggers_early(self):
        config = SystemConfig().with_mitigation(coalesce_window_ns=1_000_000)
        kernel = Kernel(Environment(), config, RngRegistry(1))
        iommu = Iommu(kernel)
        batches = []
        iommu.on_interrupt = lambda batch: batches.append(batch)
        kernel.boot()
        limit = config.iommu.max_coalesce_batch
        for _ in range(limit):
            iommu.submit(make_request(kernel, iommu))
        # Run just past the fault-to-interrupt latency, far below the window.
        kernel.env.run(until=config.iommu.fault_to_interrupt_ns + 1_000)
        assert batches and batches[0] == limit

    def test_isolated_request_waits_full_window(self):
        window = 13_000
        config = SystemConfig().with_mitigation(coalesce_window_ns=window)
        kernel = Kernel(Environment(), config, RngRegistry(1))
        iommu = Iommu(kernel)
        raised_at = []
        iommu.on_interrupt = lambda batch: raised_at.append(kernel.env.now)
        kernel.boot()
        iommu.submit(make_request(kernel, iommu))
        kernel.env.run(until=100_000)
        expected = config.iommu.fault_to_interrupt_ns + window
        assert raised_at and raised_at[0] >= expected
