"""Unit tests for the IOMMU host driver (split vs monolithic)."""

import pytest

from repro.config import SystemConfig
from repro.oskernel import accounting as acct

from .conftest import build_stack, make_request


class TestSplitDriver:
    def test_bottom_half_thread_started(self, stack):
        _kernel, _iommu, driver = stack
        assert driver.bottom_half.started

    def test_batches_handled(self, stack):
        kernel, iommu, driver = stack
        for _ in range(3):
            iommu.submit(make_request(kernel, iommu))
        kernel.env.run(until=2_000_000)
        assert driver.bottom_half.batches_handled >= 1

    def test_double_start_rejected(self, stack):
        _kernel, _iommu, driver = stack
        with pytest.raises(RuntimeError):
            driver.start()

    def test_chain_stages_all_charge_ssr_time(self, stack):
        kernel, iommu, _driver = stack
        iommu.submit(make_request(kernel, iommu))
        kernel.env.run(until=2_000_000)
        os_path = kernel.config.os_path
        minimum = (
            os_path.top_half_ns
            + os_path.bottom_half_per_request_ns
            + os_path.queue_work_ns
            + os_path.page_fault_service_ns
        )
        assert kernel.ssr_accounting.total_ns >= minimum


class TestMonolithicDriver:
    def test_no_kthread_started(self):
        config = SystemConfig().with_mitigation(monolithic_bottom_half=True)
        _kernel, _iommu, driver = build_stack(config)
        assert driver.monolithic
        assert not driver.bottom_half.started

    def test_requests_still_complete(self):
        config = SystemConfig().with_mitigation(monolithic_bottom_half=True)
        kernel, iommu, _driver = build_stack(config)
        request = make_request(kernel, iommu)
        iommu.submit(request)
        kernel.env.run(until=2_000_000)
        assert request.completion.triggered

    def test_latency_lower_than_split_on_idle_cpus(self):
        split_kernel, split_iommu, _ = build_stack()
        split_iommu.submit(make_request(split_kernel, split_iommu))
        split_kernel.env.run(until=2_000_000)

        config = SystemConfig().with_mitigation(monolithic_bottom_half=True)
        mono_kernel, mono_iommu, _ = build_stack(config)
        mono_iommu.submit(make_request(mono_kernel, mono_iommu))
        mono_kernel.env.run(until=2_000_000)

        assert mono_iommu.latency.mean_ns < split_iommu.latency.mean_ns

    def test_no_ipis_from_monolithic_path(self):
        config = SystemConfig().with_mitigation(monolithic_bottom_half=True)
        kernel, iommu, _driver = build_stack(config)
        for _ in range(10):
            iommu.submit(make_request(kernel, iommu))
        kernel.env.run(until=3_000_000)
        split_kernel, split_iommu, _ = build_stack()
        for _ in range(10):
            split_iommu.submit(make_request(split_kernel, split_iommu))
        split_kernel.env.run(until=3_000_000)
        assert kernel.ipis_total() <= split_kernel.ipis_total()


class TestSteeredDriver:
    def test_bottom_half_pinned_to_steering_target(self):
        config = SystemConfig().with_mitigation(
            steer_to_single_core=True, steering_target=2
        )
        _kernel, _iommu, driver = build_stack(config)
        assert driver.bottom_half.pinned_core == 2

    def test_all_ssr_interrupts_on_target_core(self):
        config = SystemConfig().with_mitigation(
            steer_to_single_core=True, steering_target=1
        )
        kernel, iommu, _driver = build_stack(config)
        for _ in range(8):
            iommu.submit(make_request(kernel, iommu))
        kernel.env.run(until=3_000_000)
        irqs = kernel.interrupts_per_core()
        # SSR MSIs only hit core 1 (other cores may see ticks/IPIs).
        assert kernel.counters.get("ssr_interrupt") == 8
        assert irqs[1] >= 8
