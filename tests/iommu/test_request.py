"""Unit tests for SSR request objects and the Table I catalog."""

import pytest

from repro.iommu import HIGH, LOW, LatencyStats, MODERATE_TO_HIGH, SSR_CATALOG, SsrRequest


class TestCatalog:
    def test_all_paper_kinds_present(self):
        assert set(SSR_CATALOG) == {
            "signal",
            "page_fault",
            "memory_allocation",
            "filesystem",
            "page_migration",
        }

    def test_complexity_labels_match_paper(self):
        assert SSR_CATALOG["signal"].complexity == LOW
        assert SSR_CATALOG["page_fault"].complexity == MODERATE_TO_HIGH
        assert SSR_CATALOG["filesystem"].complexity == HIGH

    def test_service_times_order_by_complexity(self):
        assert (
            SSR_CATALOG["signal"].service_ns
            < SSR_CATALOG["memory_allocation"].service_ns
            < SSR_CATALOG["filesystem"].service_ns
        )


class TestSsrRequest:
    def test_latency_none_until_completed(self):
        request = SsrRequest(request_id=1, kind=SSR_CATALOG["signal"], issued_at=100)
        assert request.latency_ns is None
        request.completed_at = 350
        assert request.latency_ns == 250


class TestLatencyStats:
    def test_streaming_mean_and_max(self):
        stats = LatencyStats()
        for value in (100, 200, 600):
            stats.record(value)
        assert stats.count == 3
        assert stats.mean_ns == pytest.approx(300)
        assert stats.max_ns == 600

    def test_empty_mean_is_zero(self):
        assert LatencyStats().mean_ns == 0.0
