"""Shared fixtures for IOMMU tests."""

import pytest

from repro.config import SystemConfig
from repro.iommu import Iommu, IommuDriver, SSR_CATALOG, SsrRequest
from repro.oskernel import Kernel
from repro.sim import Environment, RngRegistry


def build_stack(config=None):
    """A booted kernel + IOMMU + started driver."""
    config = config or SystemConfig()
    kernel = Kernel(Environment(), config, RngRegistry(1))
    iommu = Iommu(kernel)
    driver = IommuDriver(kernel, iommu)
    kernel.boot()
    driver.start()
    return kernel, iommu, driver


@pytest.fixture
def stack():
    return build_stack()


def make_request(kernel, iommu, kind="page_fault"):
    return SsrRequest(
        request_id=iommu.allocate_request_id(),
        kind=SSR_CATALOG[kind],
        issued_at=kernel.env.now,
        completion=kernel.env.event(),
    )
