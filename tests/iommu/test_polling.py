"""Tests for the NAPI-style polled SSR servicing extension."""

import pytest

from repro.config import SystemConfig
from repro.core import System, run_workloads
from repro.core.experiment import clear_cache
from repro.workloads import gpu_app, parsec

HORIZON = 10_000_000


def polling_config(period_us=20):
    return SystemConfig().with_mitigation(polling_period_ns=period_us * 1_000)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestPolledServicing:
    def test_requests_complete_without_interrupts(self):
        metrics = run_workloads(None, "xsbench", True, polling_config(), HORIZON)
        assert metrics.ssr_completed > 0
        assert metrics.ssr_interrupts == 0  # MSIs fully masked

    def test_label(self):
        assert polling_config().label == "Polling"

    def test_latency_bounded_by_poll_period(self):
        period_us = 50
        metrics = run_workloads(
            None, "xsbench", True, polling_config(period_us), HORIZON
        )
        # Every fault waits at most one period before the drain begins.
        assert metrics.gpu.mean_ssr_latency_ns < 4 * period_us * 1_000

    def test_contains_the_interrupt_storm(self):
        """Polling's upside: the ubench storm stops interrupting CPUs."""
        interrupted = run_workloads("x264", "ubench", True, SystemConfig(), HORIZON)
        polled = run_workloads("x264", "ubench", True, polling_config(), HORIZON)
        assert polled.ssr_interrupts == 0
        assert polled.ipis < interrupted.ipis

    def test_burns_cpu_when_accelerator_is_quiet(self):
        """Polling's downside (the paper's Related-Work point): the poll
        cost accrues even with zero SSR traffic."""
        quiet_polled = run_workloads(None, "xsbench", False, polling_config(5), HORIZON)
        quiet_default = run_workloads(None, "xsbench", False, SystemConfig(), HORIZON)
        assert quiet_polled.ssr_time_ns > 10 * max(1.0, quiet_default.ssr_time_ns)
        # ...and it costs sleep residency too.
        assert quiet_polled.cc6_residency < quiet_default.cc6_residency

    def test_poller_statistics(self):
        system = System(polling_config(10))
        system.add_gpu_workload(gpu_app("xsbench"))
        system.run(HORIZON)
        poller = system.driver.poller
        assert poller.polls > 50
        assert poller.empty_polls > 0
        assert poller.requests_serviced > 0

    def test_composes_with_steering_target(self):
        config = polling_config().with_mitigation(
            steer_to_single_core=True, steering_target=3
        )
        system = System(config)
        system.add_gpu_workload(gpu_app("xsbench"))
        system.run(HORIZON)
        assert system.driver.poller.pinned_core == 3
