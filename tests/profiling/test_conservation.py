"""The profiler's two load-bearing invariants, as property tests.

* **Conservation**: the ledger's service-channel sum reconciles *exactly*
  (integer nanoseconds, not approximately) with the kernel's SSR time
  accumulator, across randomized fig3a-style (cpu x gpu) and fig4-style
  (idle x gpu) mini-grids and mitigation configs.
* **Zero overhead**: profiling a run never changes its metrics — the
  returned ``SystemMetrics`` are byte-for-byte (dataclass-equality)
  identical with profiling on or off, mirroring the tracer's contract in
  tests/telemetry/test_integration.py.
"""

import random

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.profiling import (
    SSR_SERVICE_CHANNELS,
    ProfileCollector,
    Profiler,
    set_active_collector,
    validate_profile,
)
from repro.workloads import gpu_app, parsec

HORIZON_NS = 2_000_000

CPU_NAMES = ["blackscholes", "facesim", "fluidanimate"]
GPU_NAMES = ["bfs", "xsbench", "ubench"]


def _configs():
    default = SystemConfig()
    return [
        default,
        default.with_mitigation(coalesce_window_ns=20_000),
        default.with_mitigation(monolithic_bottom_half=True),
    ]


def _grid(seed: int, pairs: int):
    """A randomized mini-grid mixing fig3a and fig4 shapes."""
    rng = random.Random(seed)
    configs = _configs()
    for _ in range(pairs):
        cpu = rng.choice(CPU_NAMES + [None])  # None = fig4's idle-CPU shape
        gpu = rng.choice(GPU_NAMES)
        ssr = rng.random() < 0.8
        yield cpu, gpu, ssr, rng.choice(configs)


def _run(cpu, gpu, ssr, config, profiler=None):
    system = System(config, profiler=profiler)
    if cpu is not None:
        system.add_cpu_app(parsec(cpu))
    system.add_gpu_workload(gpu_app(gpu), ssr_enabled=ssr)
    metrics = system.run(HORIZON_NS)
    return system, metrics


class TestConservation:
    @pytest.mark.parametrize("seed", [7, 23, 1018])
    def test_service_channels_reconcile_exactly(self, seed):
        for cpu, gpu, ssr, config in _grid(seed, pairs=4):
            profiler = Profiler()
            system, _metrics = _run(cpu, gpu, ssr, config, profiler=profiler)
            ledger = profiler.ledger
            total = system.kernel.ssr_accounting.total_ns
            assert ledger.reconcile(total) == 0, (cpu, gpu, ssr, config.label)
            assert ledger.service_total_ns() == total
            # Per-channel totals are individually non-negative and sum back.
            totals = ledger.channel_totals()
            assert sum(totals[ch] for ch in SSR_SERVICE_CHANNELS) == total

    def test_ssr_disabled_run_charges_no_service_time(self):
        profiler = Profiler()
        system, _ = _run("blackscholes", "xsbench", False, SystemConfig(),
                         profiler=profiler)
        assert system.kernel.ssr_accounting.total_ns == 0
        assert profiler.ledger.service_total_ns() == 0

    def test_document_validates(self):
        profiler = Profiler()
        _run(None, "bfs", True, SystemConfig(), profiler=profiler)
        document = profiler.take_document()
        assert document is not None
        assert validate_profile(document) == []
        assert document["ssr_time_ns"] > 0


class TestZeroOverhead:
    @pytest.mark.parametrize("seed", [5, 91])
    def test_profiling_does_not_change_metrics(self, seed):
        for cpu, gpu, ssr, config in _grid(seed, pairs=3):
            _, baseline = _run(cpu, gpu, ssr, config)
            _, profiled = _run(cpu, gpu, ssr, config, profiler=Profiler())
            assert profiled == baseline  # bit-for-bit: dataclass equality

    def test_null_profiler_records_nothing(self):
        system, _ = _run("blackscholes", "xsbench", True, SystemConfig())
        assert system.profiler.enabled is False
        assert system.profiler.take_document() is None
        assert len(system.kernel.ledger) == 0

    def test_active_collector_profiles_new_systems(self):
        collector = ProfileCollector()
        set_active_collector(collector)
        try:
            _, with_collector = _run(None, "bfs", True, SystemConfig())
        finally:
            set_active_collector(None)
        _, without = _run(None, "bfs", True, SystemConfig())
        assert len(collector) == 1
        assert validate_profile(collector.bundle()) == []
        assert with_collector == without
