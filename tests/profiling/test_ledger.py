"""Unit tests for the interference ledger and victim collapsing."""

import pytest

from repro.profiling import (
    ALL_CHANNELS,
    CH_BOTTOM_HALF,
    CH_IPI,
    CH_POLLUTION,
    CH_TOP_HALF,
    CH_WORKER,
    NO_VICTIM,
    NULL_LEDGER,
    InterferenceLedger,
    SIDE_CHANNELS,
    SSR_SERVICE_CHANNELS,
    victim_app,
)


class TestVictimApp:
    def test_cpu_app_worker_collapses_to_app(self):
        assert victim_app("blackscholes/3") == "blackscholes"

    def test_gpu_host_stays_whole(self):
        assert victim_app("gpu-host/bfs") == "gpu-host/bfs"

    def test_kernel_threads_collapse(self):
        for name in ("kworker/2", "iommu/bh", "iommu/poll", "kdaemon"):
            assert victim_app(name) == "kernel"

    def test_swapper_is_idle(self):
        assert victim_app("swapper/5") == "idle"

    def test_missing_victim(self):
        assert victim_app(None) == NO_VICTIM
        assert victim_app(NO_VICTIM) == NO_VICTIM


class TestInterferenceLedger:
    def test_charge_accumulates_per_cell(self):
        ledger = InterferenceLedger()
        ledger.charge("iommu-ppr", CH_TOP_HALF, "blackscholes/0", 2, 100)
        ledger.charge("iommu-ppr", CH_TOP_HALF, "blackscholes/0", 2, 50)
        ledger.charge("page_fault", CH_WORKER, None, 1, 30)
        assert len(ledger) == 2
        assert ledger.channel_total(CH_TOP_HALF) == 150
        assert ledger.channel_total(CH_WORKER) == 30

    def test_service_vs_side_totals(self):
        ledger = InterferenceLedger()
        ledger.charge("iommu-ppr", CH_BOTTOM_HALF, None, 0, 70)
        ledger.charge("resched-ipi", CH_IPI, "facesim/1", 3, 11)
        ledger.charge("uarch", CH_POLLUTION, "facesim/1", 3, 9)
        assert ledger.service_total_ns() == 70
        assert ledger.side_total_ns() == 20
        assert ledger.reconcile(70) == 0
        assert ledger.reconcile(71) == -1

    def test_entries_sorted_and_app_collapsed(self):
        ledger = InterferenceLedger()
        ledger.charge("page_fault", CH_WORKER, "swapper/2", 2, 5)
        ledger.charge("iommu-ppr", CH_TOP_HALF, "fluidanimate/0", 0, 500)
        entries = ledger.entries()
        assert [e["ns"] for e in entries] == [500, 5]
        assert entries[0]["app"] == "fluidanimate"
        assert entries[1]["app"] == "idle"
        assert entries[1]["victim"] == "swapper/2"

    def test_no_victim_placeholder(self):
        ledger = InterferenceLedger()
        ledger.charge("page_fault", CH_WORKER, None, 0, 1)
        (entry,) = ledger.entries()
        assert entry["victim"] == NO_VICTIM
        assert entry["app"] == NO_VICTIM

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            InterferenceLedger().charge("x", CH_WORKER, None, 0, -1)

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError):
            InterferenceLedger().charge("x", "teleport", None, 0, 1)
        with pytest.raises(ValueError):
            InterferenceLedger().channel_total("teleport")

    def test_channel_totals_covers_all_channels(self):
        totals = InterferenceLedger().channel_totals()
        assert set(totals) == set(ALL_CHANNELS)
        assert set(SSR_SERVICE_CHANNELS).isdisjoint(SIDE_CHANNELS)

    def test_as_dict_is_json_shaped(self):
        ledger = InterferenceLedger()
        ledger.charge("iommu-ppr", CH_TOP_HALF, "blackscholes/0", 1, 42)
        doc = ledger.as_dict()
        assert doc["service_total_ns"] == 42
        assert doc["side_total_ns"] == 0
        assert doc["entries"][0]["core"] == 1
        assert doc["channel_totals"][CH_TOP_HALF] == 42


class TestNullLedger:
    def test_disabled_and_inert(self):
        assert NULL_LEDGER.enabled is False
        NULL_LEDGER.charge("x", "whatever", None, -5, -1)  # never validates
        assert len(NULL_LEDGER) == 0
        assert NULL_LEDGER.service_total_ns() == 0.0
        assert NULL_LEDGER.entries() == []
        assert NULL_LEDGER.as_dict()["entries"] == []
