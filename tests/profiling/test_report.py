"""Exporters: collapsed-stack flamegraph, HTML report, and the CLI."""

import json

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.profiling import (
    ProfileCollector,
    Profiler,
    collapsed_stacks,
    render_html,
    validate_profile,
    write_collapsed,
    write_html,
)
from repro.profiling.cli import main as report_main
from repro.profiling.report import aggregate_app_blame, aggregate_attribution, text_summary
from repro.workloads import gpu_app, parsec

HORIZON_NS = 2_000_000


@pytest.fixture(scope="module")
def document():
    """One profiled cpu x gpu run (module-scoped: simulation is the cost)."""
    profiler = Profiler()
    system = System(SystemConfig(), profiler=profiler)
    system.add_cpu_app(parsec("blackscholes"))
    system.add_gpu_workload(gpu_app("xsbench"))
    system.run(HORIZON_NS)
    return profiler.take_document()


@pytest.fixture(scope="module")
def bundle(document):
    collector = ProfileCollector()
    collector.add(document)
    return collector.bundle(meta={"source": "test"})


class TestFlamegraph:
    def test_collapsed_stack_format(self, document):
        lines = collapsed_stacks(document)
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            frames = stack.split(";")
            assert len(frames) == 3  # app;victim;channel:ssr
            assert ":" in frames[2]
            assert int(weight) > 0  # integer ns, zero-weight filtered

    def test_stacks_merged_and_sorted(self, document):
        lines = collapsed_stacks(document)
        stacks = [line.rpartition(" ")[0] for line in lines]
        assert stacks == sorted(stacks)
        assert len(stacks) == len(set(stacks))  # one line per stack

    def test_bundle_equivalent_to_run(self, document, bundle):
        assert collapsed_stacks(bundle) == collapsed_stacks(document)

    def test_write_collapsed(self, document, tmp_path):
        path = tmp_path / "profile.folded"
        count = write_collapsed(document, str(path))
        assert count == len(path.read_text().splitlines()) > 0


class TestAggregation:
    def test_attribution_rows_conserve_service_time(self, document):
        rows = aggregate_attribution(document)
        service = [r for r in rows if r["family"] == "service"]
        assert sum(r["ns"] for r in service) == document["ssr_time_ns"]
        assert sum(r["share"] for r in service) == pytest.approx(1.0)
        assert [r["ns"] for r in rows] == sorted(
            (r["ns"] for r in rows), reverse=True
        )

    def test_app_blame_covers_victims(self, document):
        rows = aggregate_app_blame(document)
        assert rows
        apps = {r["app"] for r in rows}
        assert "blackscholes" in apps or "gpu-host/xsbench" in apps

    def test_text_summary_mentions_channels(self, document):
        text = text_summary(document)
        assert "worker" in text
        assert "top_half" in text


class TestHtml:
    def test_report_is_self_contained(self, document):
        html = render_html(document)
        assert html.lower().startswith("<!doctype html>")
        assert "hiss-profile-data" in html  # embedded raw JSON island
        assert "Attribution" in html
        assert "<svg" in html  # timeline strip
        # Self-contained: no external scripts/styles (the lone http URL
        # is the inline SVG's xmlns declaration, not a fetch).
        assert "<script src" not in html
        assert "<link" not in html
        assert "https://" not in html

    def test_embedded_json_round_trips(self, bundle, tmp_path):
        path = tmp_path / "report.html"
        size = write_html(bundle, str(path))
        html = path.read_text()
        assert size == len(html.encode("utf-8"))
        marker = "id='hiss-profile-data'>"
        start = html.index(marker) + len(marker)
        end = html.index("</script>", start)
        embedded = json.loads(html[start:end].replace("<\\/", "</"))
        assert validate_profile(embedded) == []
        assert len(embedded["runs"]) == 1


class TestCli:
    def _write_bundle(self, bundle, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(bundle))
        return path

    def test_render(self, bundle, tmp_path, capsys):
        src = self._write_bundle(bundle, tmp_path)
        out = tmp_path / "report.html"
        folded = tmp_path / "profile.folded"
        rc = report_main(
            ["render", str(src), "-o", str(out), "--collapsed", str(folded)]
        )
        assert rc == 0
        assert out.stat().st_size > 0
        assert folded.stat().st_size > 0
        assert "report.html" in capsys.readouterr().out

    def test_validate_ok(self, bundle, tmp_path, capsys):
        src = self._write_bundle(bundle, tmp_path)
        assert report_main(["validate", str(src)]) == 0
        assert "conservation holds" in capsys.readouterr().out

    def test_validate_catches_broken_conservation(self, bundle, tmp_path, capsys):
        broken = json.loads(json.dumps(bundle))
        broken["runs"][0]["ssr_time_ns"] += 1
        src = tmp_path / "broken.json"
        src.write_text(json.dumps(broken))
        assert report_main(["validate", str(src)]) == 1
        assert "conservation" in capsys.readouterr().err

    def test_render_refuses_invalid_document(self, bundle, tmp_path):
        broken = json.loads(json.dumps(bundle))
        broken["schema"] = "not-a-profile"
        src = tmp_path / "broken.json"
        src.write_text(json.dumps(broken))
        with pytest.raises(SystemExit) as excinfo:
            report_main(["render", str(src), "-o", str(tmp_path / "x.html")])
        assert excinfo.value.code == 2

    def test_summary(self, bundle, tmp_path, capsys):
        src = self._write_bundle(bundle, tmp_path)
        assert report_main(["summary", str(src)]) == 0
        assert "worker" in capsys.readouterr().out
