"""Sim-time sampler: cadence, snapshot shape, and bounded decimation."""

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.profiling import Profiler
from repro.profiling.sampler import MODE_CODES, SAMPLE_COLUMNS, SimSampler
from repro.workloads import gpu_app, parsec

HORIZON_NS = 2_000_000


def _profiled_run(interval_ns=100_000, capacity=4096, cpu="blackscholes", gpu="xsbench"):
    profiler = Profiler(sample_interval_ns=interval_ns, sampler_capacity=capacity)
    system = System(SystemConfig(), profiler=profiler)
    if cpu is not None:
        system.add_cpu_app(parsec(cpu))
    if gpu is not None:
        system.add_gpu_workload(gpu_app(gpu))
    system.run(HORIZON_NS)
    return profiler


class TestValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SimSampler(interval_ns=0)

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            SimSampler(capacity=8)

    def test_double_attach_rejected(self):
        sampler = SimSampler()
        system = System(SystemConfig())
        sampler.attach(system)
        with pytest.raises(RuntimeError):
            sampler.attach(system)


class TestSampling:
    def test_fixed_cadence_without_decimation(self):
        profiler = _profiled_run(interval_ns=100_000)
        sampler = profiler.sampler
        # First tick at t=interval; horizon/interval ticks in total.
        assert len(sampler.samples) == HORIZON_NS // 100_000
        assert sampler.decimations == 0
        timestamps = [row[0] for row in sampler.samples]
        assert timestamps == sorted(timestamps)
        deltas = {b - a for a, b in zip(timestamps, timestamps[1:])}
        assert deltas == {100_000}

    def test_snapshot_shape(self):
        profiler = _profiled_run()
        num_cores = SystemConfig().cpu.num_cores
        for row in profiler.sampler.samples:
            ts_ns, core_modes, ppr_depth, outstanding, cc6_ns = row
            assert 0 < ts_ns <= HORIZON_NS
            assert len(core_modes) == num_cores
            assert set(core_modes) <= set(MODE_CODES.values())
            assert ppr_depth >= 0
            assert outstanding >= 0
            assert cc6_ns >= 0

    def test_cc6_residency_monotone(self):
        profiler = _profiled_run(cpu=None)  # idle cores sleep between bursts
        cc6 = [row[4] for row in profiler.sampler.samples]
        assert cc6 == sorted(cc6)
        assert cc6[-1] > 0

    def test_decimation_bounds_memory_and_doubles_interval(self):
        profiler = _profiled_run(interval_ns=10_000, capacity=16)
        sampler = profiler.sampler
        assert sampler.decimations > 0
        assert len(sampler.samples) < 16
        assert sampler.interval_ns == 10_000 * 2 ** sampler.decimations
        timestamps = [row[0] for row in sampler.samples]
        assert timestamps == sorted(timestamps)

    def test_as_dict_round_trips(self):
        profiler = _profiled_run()
        doc = profiler.sampler.as_dict()
        assert doc["columns"] == list(SAMPLE_COLUMNS)
        assert doc["initial_interval_ns"] == 100_000
        assert doc["mode_codes"] == MODE_CODES
        assert len(doc["rows"]) == len(profiler.sampler.samples)
        assert all(len(row) == len(SAMPLE_COLUMNS) for row in doc["rows"])
