"""Unit tests for the QoS backpressure governor."""

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.qos import QosGovernor
from repro.workloads import gpu_app, parsec

HORIZON = 8_000_000


def run_pair(threshold=None, cpu="swaptions", gpu="ubench"):
    config = SystemConfig()
    if threshold is not None:
        config = config.with_qos(enabled=True, ssr_time_threshold=threshold)
    system = System(config)
    system.add_cpu_app(parsec(cpu))
    system.add_gpu_workload(gpu_app(gpu))
    metrics = system.run(HORIZON)
    return system, metrics


class TestConstruction:
    def test_requires_enabled_config(self):
        system = System(SystemConfig())
        with pytest.raises(ValueError):
            QosGovernor(system.kernel)


class TestThrottling:
    def test_tight_threshold_throttles(self):
        system, _metrics = run_pair(threshold=0.01)
        governor = system.kernel.qos_governor
        assert governor.throttle_events > 0
        assert governor.total_delay_ns > 0
        assert governor.max_delay_ns_seen >= system.config.qos.initial_delay_ns

    def test_backoff_escalates_exponentially(self):
        system, _metrics = run_pair(threshold=0.01)
        governor = system.kernel.qos_governor
        assert governor.max_delay_ns_seen >= 2 * system.config.qos.initial_delay_ns

    def test_loose_threshold_never_binds(self):
        system, _metrics = run_pair(threshold=0.9)
        assert system.kernel.qos_governor.throttle_events == 0

    def test_throttling_reduces_gpu_throughput(self):
        _s1, unthrottled = run_pair(threshold=None)
        _s2, throttled = run_pair(threshold=0.01)
        assert throttled.gpu.faults_completed < 0.5 * unthrottled.gpu.faults_completed

    def test_throttling_caps_ssr_time_fraction(self):
        _system, metrics = run_pair(threshold=0.01)
        # The paper notes the cap can be exceeded slightly (periodic
        # enforcement); allow generous slack but require real containment.
        assert metrics.ssr_time_fraction < 0.05

    def test_throttling_improves_cpu_performance(self):
        _s1, unthrottled = run_pair(threshold=None)
        _s2, throttled = run_pair(threshold=0.01)
        assert throttled.cpu_app.instructions > unthrottled.cpu_app.instructions

    def test_delay_resets_under_threshold(self):
        system, _metrics = run_pair(threshold=0.01)
        governor = system.kernel.qos_governor
        # After the run the GPU is stalled and the window drains: the
        # governor's delay state may be anything, but gating logic must
        # reset delay when under threshold.
        governor.over_threshold = False
        gate = governor.gate(system.kernel.workqueues.workers[0])
        list(gate)  # runs to completion without sleeping
        assert governor.delay_ns == 0

    def test_metrics_carry_qos_stats(self):
        _system, metrics = run_pair(threshold=0.01)
        assert metrics.qos_throttle_events > 0
        assert metrics.qos_total_delay_ns > 0
