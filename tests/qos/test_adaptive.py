"""Unit tests for the adaptive QoS governor (the paper's future work)."""

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.qos import AdaptiveQosGovernor
from repro.workloads import gpu_app, parsec

HORIZON = 8_000_000


def run(cpu_name=None, floor=0.02):
    config = SystemConfig().with_qos(enabled=True, adaptive=True, adaptive_floor=floor)
    system = System(config)
    if cpu_name:
        system.add_cpu_app(parsec(cpu_name))
    system.add_gpu_workload(gpu_app("ubench"))
    metrics = system.run(HORIZON)
    return system, metrics


class TestAdaptiveGovernor:
    def test_system_builds_adaptive_variant(self):
        system, _ = run()
        assert isinstance(system.kernel.qos_governor, AdaptiveQosGovernor)

    def test_config_label(self):
        config = SystemConfig().with_qos(enabled=True, adaptive=True)
        assert config.qos.label == "th_adaptive"

    def test_idle_host_donates_capacity(self):
        system, metrics = run(cpu_name=None)
        governor = system.kernel.qos_governor
        assert governor.effective_threshold > 0.5
        assert governor.throttle_events == 0
        assert metrics.gpu.faults_completed > 0

    def test_busy_host_converges_toward_floor(self):
        system, _metrics = run(cpu_name="streamcluster")
        governor = system.kernel.qos_governor
        assert governor.effective_threshold < 0.3
        assert governor.throttle_events > 0

    def test_busy_host_recovers_cpu_performance(self):
        plain = System(SystemConfig())
        plain.add_cpu_app(parsec("x264"))
        plain.add_gpu_workload(gpu_app("ubench"))
        unprotected = plain.run(HORIZON)
        _, protected = run(cpu_name="x264")
        assert protected.cpu_app.instructions > unprotected.cpu_app.instructions

    def test_floor_is_respected(self):
        system, _ = run(cpu_name="streamcluster", floor=0.10)
        governor = system.kernel.qos_governor
        assert governor.effective_threshold >= 0.10

    def test_idle_share_is_probability(self):
        system, _ = run(cpu_name="vips")
        governor = system.kernel.qos_governor
        assert 0.0 <= governor.idle_share <= 1.0
