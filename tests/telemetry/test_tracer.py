"""Unit tests for the event tracer and the active-tracer plumbing."""

import pytest

from repro.telemetry import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_active_tracer,
    set_active_tracer,
)


class TestTracer:
    def test_span_and_instant_recorded(self):
        tracer = Tracer()
        tracer.span("user", "segment", 0, 100, 250, args={"thread": "t"})
        tracer.instant("irq.deliver", "irq", 1, 300)
        events = list(tracer.events())
        assert len(events) == 2
        span, instant = events
        assert span.phase == "X" and span.dur_ns == 150 and span.track == 0
        assert instant.phase == "i" and instant.ts_ns == 300

    def test_counter_sample(self):
        tracer = Tracer()
        tracer.counter_sample("qos.fraction", "qos", 10, 0.5)
        (event,) = tracer.events()
        assert event.phase == "C" and event.args == {"value": 0.5}

    def test_span_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Tracer().span("x", "c", 0, 100, 50)

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.instant(f"e{index}", "t", 0, index)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [e.name for e in tracer.events()] == ["e2", "e3", "e4"]

    def test_dropped_events_property_mirrors_overflow(self):
        tracer = Tracer(capacity=2)
        assert tracer.dropped_events == 0
        for index in range(5):
            tracer.instant(f"e{index}", "t", 0, index)
        assert tracer.dropped_events == tracer.dropped == 3
        tracer.clear()
        assert tracer.dropped_events == 0
        # The null tracer never drops anything (it never stores anything).
        assert NULL_TRACER.dropped_events == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_tracks_cores_first_then_named(self):
        tracer = Tracer()
        tracer.instant("a", "t", "iommu", 0)
        tracer.instant("b", "t", 2, 0)
        tracer.instant("c", "t", 0, 0)
        tracer.instant("d", "t", "gpu:ubench", 0)
        assert tracer.tracks() == [0, 2, "gpu:ubench", "iommu"]

    def test_clear(self):
        tracer = Tracer(capacity=1)
        tracer.instant("a", "t", 0, 0)
        tracer.instant("b", "t", 0, 1)
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0


class TestNullTracer:
    def test_disabled_and_noop(self):
        null = NullTracer()
        assert null.enabled is False
        null.span("x", "c", 0, 0, 10)
        null.instant("y", "c", 0, 0)
        null.counter_sample("z", 0, 0, 1.0)
        assert len(null) == 0
        assert list(null.events()) == []
        assert null.tracks() == []


class TestActiveTracer:
    def test_default_is_null(self):
        assert get_active_tracer() is NULL_TRACER

    def test_set_and_reset(self):
        tracer = Tracer()
        set_active_tracer(tracer)
        try:
            assert get_active_tracer() is tracer
        finally:
            set_active_tracer(None)
        assert get_active_tracer() is NULL_TRACER
