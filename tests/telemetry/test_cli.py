"""Tests for the hiss-trace CLI and the hiss-experiments --trace flag."""

import json

import pytest

from repro.telemetry import Tracer, write_chrome_trace
from repro.telemetry.cli import main as trace_main


@pytest.fixture
def trace_file(tmp_path):
    tracer = Tracer()
    tracer.span("user", "segment", 0, 1000, 3000, args={"thread": "app-0"})
    tracer.span("kworker.service", "work", 1, 2000, 2600, args={"item": "ssr-1"})
    tracer.instant("ssr.submit", "ssr", "iommu", 100, args={"id": 1})
    tracer.counter_sample("qos.ssr_fraction", "qos", 500, 0.1)
    tracer.metrics.histogram("ssr.latency_ns").record(1500.0)
    path = tmp_path / "trace.json"
    write_chrome_trace(tracer, str(path))
    return str(path)


class TestValidateCommand:
    def test_valid_file(self, trace_file, capsys):
        assert trace_main(["validate", trace_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_document(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        assert trace_main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            trace_main(["validate", str(tmp_path / "nope.json")])

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit):
            trace_main(["validate", str(path)])


class TestSummaryCommand:
    def test_renders_tracks_and_histograms(self, trace_file, capsys):
        assert trace_main(["summary", trace_file]) == 0
        out = capsys.readouterr().out
        assert "core 0" in out and "iommu" in out
        assert "ssr.latency_ns" in out  # histogram table


class TestTimelineCommand:
    def test_by_track_name(self, trace_file, capsys):
        assert trace_main(["timeline", trace_file, "--track", "core 0"]) == 0
        out = capsys.readouterr().out
        assert "user" in out

    def test_unknown_track(self, trace_file, capsys):
        assert trace_main(["timeline", trace_file, "--track", "nope"]) == 1
        assert "unknown track" in capsys.readouterr().err


class TestRunAllTraceFlag:
    def test_trace_flag_writes_valid_json(self, tmp_path, capsys):
        from repro.core.experiment import clear_cache
        from repro.experiments.run_all import main as experiments_main
        from repro.telemetry.export import validate_chrome_trace

        clear_cache()  # force real runs so the tracer sees events
        out = tmp_path / "fig4.json"
        code = experiments_main(
            ["fig4", "--quick", "--horizon-ms", "4", "--trace", str(out)]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        spans = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        # The acceptance set: one span per paper-chain stage.
        assert {"user", "irq", "iommu.bottom_half", "kworker.service", "cc6"} <= spans
