"""Integration contracts of the telemetry layer.

* **Zero overhead**: a run with tracing disabled produces metrics
  identical to a traced run of the same configuration — instrumentation
  must never schedule events, consume randomness, or shift time.
* **Determinism**: two traced runs with the same seed produce the same
  event stream, event for event.
* **Schema**: the exported Chrome-trace JSON validates and contains span
  events for every stage of the paper's SSR chain (the acceptance set:
  thread segment, IRQ top half, bottom-half dispatch, kworker service,
  CC6 residency interval).
"""

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.telemetry import Tracer, chrome_trace_dict, validate_chrome_trace
from repro.workloads import gpu_app, parsec

HORIZON_NS = 6_000_000


def _run(tracer=None, cpu="blackscholes", gpu="xsbench"):
    system = System(SystemConfig(), tracer=tracer)
    if cpu is not None:
        system.add_cpu_app(parsec(cpu))
    if gpu is not None:
        system.add_gpu_workload(gpu_app(gpu))
    return system.run(HORIZON_NS)


class TestZeroOverhead:
    def test_tracing_does_not_change_metrics(self):
        baseline = _run(tracer=None)
        traced = _run(tracer=Tracer())
        assert traced == baseline  # bit-for-bit: dataclass equality

    def test_null_tracer_records_nothing(self):
        system = System(SystemConfig())
        system.add_gpu_workload(gpu_app("xsbench"))
        system.run(2_000_000)
        assert len(system.tracer) == 0


class TestDeterminism:
    def test_same_seed_same_event_stream(self):
        first, second = Tracer(), Tracer()
        _run(tracer=first)
        _run(tracer=second)
        events_a = list(first.events())
        events_b = list(second.events())
        assert len(events_a) == len(events_b)
        assert events_a == events_b


class TestAcceptanceSpans:
    @pytest.fixture(scope="class")
    def traced(self):
        tracer = Tracer()
        # GPU-only: cores idle between fault bursts, so CC6 spans appear.
        _run(tracer=tracer, cpu=None)
        return tracer

    def test_all_acceptance_span_kinds_present(self, traced):
        spans = {e.name for e in traced.events() if e.phase == "X"}
        assert "user" in spans  # thread segment (gpu host runtime thread)
        assert "irq" in spans  # IRQ top half
        assert "iommu.bottom_half" in spans  # bottom-half dispatch
        assert "kworker.service" in spans  # kworker service
        assert "cc6" in spans  # CC6 residency interval

    def test_ssr_lifecycle_instants(self, traced):
        instants = {e.name for e in traced.events() if e.phase == "i"}
        assert {"ssr.submit", "ssr.complete", "irq.deliver", "msi.raise",
                "cc6.enter", "cc6.exit"} <= instants

    def test_metrics_registry_populated(self, traced):
        snapshot = traced.metrics.snapshot()
        assert snapshot["counters"]["ssr.completed"] > 0
        latency = snapshot["histograms"]["ssr.latency_ns"]
        assert latency["count"] > 0
        assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]

    def test_exported_document_validates(self, traced):
        doc = chrome_trace_dict(traced)
        assert validate_chrome_trace(doc) == []

    def test_segments_tile_each_core(self, traced):
        """Per core, segment spans must not overlap (every ns in one bucket)."""
        by_core = {}
        for event in traced.events():
            if event.phase == "X" and event.category == "segment":
                by_core.setdefault(event.track, []).append(
                    (event.ts_ns, event.ts_ns + event.dur_ns)
                )
        assert by_core, "no segment spans recorded"
        for core, intervals in by_core.items():
            intervals.sort()
            for (_, prev_end), (next_start, _) in zip(intervals, intervals[1:]):
                assert next_start >= prev_end - 1e-6, f"overlap on core {core}"


class TestQosTracing:
    def test_backoff_events_recorded(self):
        config = SystemConfig().with_qos(enabled=True, ssr_time_threshold=0.001)
        tracer = Tracer()
        system = System(config, tracer=tracer)
        system.add_gpu_workload(gpu_app("ubench"))
        system.run(HORIZON_NS)
        names = {e.name for e in tracer.events()}
        assert "qos.ssr_fraction" in names  # sampler counter track
        if system.kernel.qos_governor.throttle_events:
            assert "qos.backoff" in names
