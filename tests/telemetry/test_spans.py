"""Unit tests for the lifecycle span layer (repro.telemetry.spans)."""

import threading

import pytest

from repro.telemetry.spans import (
    SPAN_SCHEMA,
    Span,
    SpanRecorder,
    clean_trace_id,
    new_span_id,
    new_trace_id,
    stitched_chrome_trace,
    trace_document,
    validate_trace_document,
)
from repro.telemetry.export import validate_chrome_trace


class TestIds:
    def test_trace_and_span_ids_are_hex_and_unique(self):
        trace_ids = {new_trace_id() for _ in range(64)}
        assert len(trace_ids) == 64
        for trace_id in trace_ids:
            assert clean_trace_id(trace_id) == trace_id
        span_ids = {new_span_id() for _ in range(64)}
        assert len(span_ids) == 64

    @pytest.mark.parametrize(
        "bad",
        [None, 7, "", "short", "UPPERCASEHEX00", "not-hex-chars!", "g" * 16, "a" * 33],
    )
    def test_clean_trace_id_rejects_garbage(self, bad):
        assert clean_trace_id(bad) is None

    def test_clean_trace_id_normalizes(self):
        assert clean_trace_id("  AB12CD34  ") == "ab12cd34"


class TestSpanRecorder:
    def test_record_and_document(self):
        recorder = SpanRecorder(trace_id="ab12cd34ab12cd34")
        recorder.record("submit", "submit", 10.0, 10.5)
        recorder.record("queue.wait", "queue", 10.5, 12.0, status="ok")
        doc = trace_document(recorder, extra={"job_id": "job-1"})
        assert doc["schema"] == SPAN_SCHEMA
        assert doc["trace_id"] == "ab12cd34ab12cd34"
        assert doc["job_id"] == "job-1"
        assert [s["name"] for s in doc["spans"]] == ["submit", "queue.wait"]
        assert doc["dropped_spans"] == 0
        assert validate_trace_document(doc) == []

    def test_rejects_negative_interval(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            recorder.record("x", "y", 2.0, 1.0)

    def test_context_manager_times_and_marks_errors(self):
        clock_values = iter([1.0, 2.0, 3.0, 4.5])
        recorder = SpanRecorder(clock=lambda: next(clock_values))
        with recorder.span("ok-span", "test"):
            pass
        with pytest.raises(RuntimeError):
            with recorder.span("bad-span", "test"):
                raise RuntimeError("boom")
        ok, bad = recorder.spans()
        assert (ok.start_s, ok.end_s, ok.status) == (1.0, 2.0, "ok")
        assert (bad.start_s, bad.end_s, bad.status) == (3.0, 4.5, "error")

    def test_capacity_drops_are_counted_never_silent(self):
        recorder = SpanRecorder(capacity=2)
        for index in range(5):
            recorder.record(f"s{index}", "test", 0.0, 1.0)
        assert len(recorder) == 2
        assert recorder.dropped == 3
        doc = trace_document(recorder)
        assert doc["dropped_spans"] == 3

    def test_thread_safety_under_contention(self):
        recorder = SpanRecorder(capacity=10_000)

        def hammer():
            for _ in range(200):
                recorder.record("s", "test", 0.0, 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder) + recorder.dropped == 8 * 200


class TestValidation:
    def _valid_doc(self):
        recorder = SpanRecorder(trace_id="ab12cd34ab12cd34")
        recorder.record("root", "job", 1.0, 3.0)
        return trace_document(recorder)

    def test_rejects_non_object(self):
        assert validate_trace_document([1, 2]) != []
        assert validate_trace_document(None) != []

    def test_rejects_wrong_schema_and_trace_id(self):
        doc = self._valid_doc()
        doc["schema"] = 99
        doc["trace_id"] = "NOT HEX"
        errors = validate_trace_document(doc)
        assert any("schema" in e for e in errors)
        assert any("trace_id" in e for e in errors)

    def test_rejects_span_problems(self):
        doc = self._valid_doc()
        span = dict(doc["spans"][0])
        span["end_s"] = span["start_s"] - 1.0
        doc["spans"].append(span)  # also a duplicate span_id
        errors = validate_trace_document(doc)
        assert any("end_s" in e for e in errors)
        assert any("duplicate span_id" in e for e in errors)

    def test_rejects_orphan_parent(self):
        doc = self._valid_doc()
        doc["spans"][0]["parent_id"] = "nope"
        assert any("parent_id" in e for e in validate_trace_document(doc))

    def test_open_span_is_valid(self):
        doc = self._valid_doc()
        doc["spans"][0]["end_s"] = None  # in-flight job: open root span
        assert validate_trace_document(doc) == []


class TestStitching:
    def _doc_with_sim(self):
        recorder = SpanRecorder(trace_id="ab12cd34ab12cd34")
        recorder.record("job", "job", 100.0, 110.0)
        recorder.record("batch.execute", "batch", 101.0, 109.0)
        doc = trace_document(recorder, extra={"job_id": "job-1"})
        doc["sim"] = [
            {
                "run": "runA",
                "trace_id": doc["trace_id"],
                "wall_start_s": 102.0,
                "wall_end_s": 104.0,
                "worker_pid": 4242,
                "events_dropped": 0,
                "events": [
                    {"ph": "X", "name": "slice", "cat": "gpu", "track": "gpu",
                     "ts_ns": 1000.0, "dur_ns": 500.0},
                    {"ph": "i", "name": "mark", "cat": "gpu", "track": "gpu",
                     "ts_ns": 2000.0},
                    {"ph": "C", "name": "depth", "cat": "q", "track": "iommu",
                     "ts_ns": 1500.0, "args": {"value": 3}},
                ],
            }
        ]
        return doc

    def test_stitched_trace_is_valid_chrome_json(self):
        chrome = stitched_chrome_trace(self._doc_with_sim(), label="test")
        assert validate_chrome_trace(chrome) == []
        assert chrome["otherData"]["trace_id"] == "ab12cd34ab12cd34"

    def test_service_and_sim_tracks_are_separate_pids(self):
        chrome = stitched_chrome_trace(self._doc_with_sim())
        pids = {e["pid"] for e in chrome["traceEvents"]}
        assert pids == {0, 1}

    def test_timestamps_monotonic_per_track_and_sim_aligned(self):
        chrome = stitched_chrome_trace(self._doc_with_sim())
        last_ts = {}
        for event in chrome["traceEvents"]:
            if event.get("ph") == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= 0.0
            assert event["ts"] >= last_ts.get(key, 0.0)
            last_ts[key] = event["ts"]
        # sim time zero is aligned at the run's wall start: 102s is 2s
        # after the earliest span start (100s), so the first sim event
        # (ts_ns=1000) lands at 2s + 1us.
        sim_slices = [
            e for e in chrome["traceEvents"]
            if e["pid"] == 1 and e.get("ph") == "X"
        ]
        assert sim_slices[0]["ts"] == pytest.approx(2e6 + 1.0)

    def test_open_spans_are_skipped_in_chrome_form(self):
        doc = self._doc_with_sim()
        doc["spans"][0]["end_s"] = None
        chrome = stitched_chrome_trace(doc)
        assert validate_chrome_trace(chrome) == []
        names = {e["name"] for e in chrome["traceEvents"] if e.get("ph") == "X"}
        assert "job" not in names
