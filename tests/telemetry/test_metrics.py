"""Unit tests for counters and fixed-bucket histograms."""

import pytest

from repro.telemetry import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestHistogram:
    def test_exact_stats(self):
        histogram = Histogram("lat")
        for value in [100.0, 200.0, 300.0]:
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(200.0)
        assert histogram.min == 100.0
        assert histogram.max == 300.0

    def test_quantiles_within_bucket_tolerance(self):
        histogram = Histogram("lat")
        for value in range(1, 1001):
            histogram.record(float(value))
        # Geometric buckets with growth 1.25: ~12% worst-case error.
        assert histogram.quantile(0.50) == pytest.approx(500.0, rel=0.15)
        assert histogram.quantile(0.95) == pytest.approx(950.0, rel=0.15)
        assert histogram.quantile(0.99) == pytest.approx(990.0, rel=0.15)

    def test_quantiles_clamped_to_observed_range(self):
        histogram = Histogram("lat")
        histogram.record(5000.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 5000.0

    def test_empty(self):
        histogram = Histogram("lat")
        assert histogram.mean == 0.0
        assert histogram.quantile(0.99) == 0.0
        assert histogram.snapshot()["count"] == 0

    def test_overflow_and_underflow_samples_kept(self):
        histogram = Histogram("lat", low=10.0, high=100.0)
        histogram.record(0.0)
        histogram.record(1e12)
        assert histogram.count == 2
        assert histogram.max == 1e12
        assert histogram.quantile(1.0) == 1e12

    def test_all_zero_samples_quantiles_are_zero(self):
        # Regression: a max of 0.0 must still clamp (0 is falsy).
        histogram = Histogram("lat")
        for _ in range(10):
            histogram.record(0.0)
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(0.99) == 0.0

    def test_rejects_negative_sample(self):
        with pytest.raises(ValueError):
            Histogram("lat").record(-1.0)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Histogram("lat", low=0.0)
        with pytest.raises(ValueError):
            Histogram("lat", growth=1.0)

    def test_percentiles_and_snapshot(self):
        histogram = Histogram("lat")
        for value in range(1, 101):
            histogram.record(float(value))
        snapshot = histogram.snapshot()
        assert set(snapshot) == {"count", "mean", "min", "max", "p50", "p95", "p99"}
        assert snapshot["p50"] <= snapshot["p95"] <= snapshot["p99"] <= snapshot["max"]

    def test_summary_nests_percentiles_and_agrees_with_snapshot(self):
        from repro.telemetry.metrics import SUMMARY_PERCENTILES

        histogram = Histogram("lat")
        for value in range(1, 101):
            histogram.record(float(value))
        summary = histogram.summary()
        assert set(summary) == {"count", "sum", "mean", "min", "max", "percentiles"}
        assert summary["count"] == 100
        assert summary["sum"] == pytest.approx(5050.0)
        assert set(summary["percentiles"]) == {f"p{p}" for p in SUMMARY_PERCENTILES}
        snapshot = histogram.snapshot()
        for p in SUMMARY_PERCENTILES:
            assert summary["percentiles"][f"p{p}"] == snapshot[f"p{p}"]

    def test_summary_empty(self):
        summary = Histogram("lat").summary()
        assert summary["count"] == 0
        assert summary["sum"] == 0.0


class TestRegistry:
    def test_create_on_demand_and_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.histogram("lat").record(42.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"events": 3}
        assert snapshot["histograms"]["lat"]["count"] == 1
        json.dumps(snapshot)  # must not raise


class TestHistogramMerge:
    def test_merge_equals_combined_observation_stream(self):
        left_values = [0.5, 2.0, 8.0, 40.0]
        right_values = [1.0, 1.5, 100.0]
        left, right, combined = Histogram("h"), Histogram("h"), Histogram("h")
        for value in left_values:
            left.record(value)
        for value in right_values:
            right.record(value)
        for value in left_values + right_values:
            combined.record(value)
        merged = left.merge(right)
        assert merged is left  # in place, chainable
        assert merged.summary() == combined.summary()

    def test_merge_preserves_exact_min_max_and_sum(self):
        left, right = Histogram("h"), Histogram("h")
        left.record(5.0)
        right.record(0.25)
        right.record(900.0)
        left.merge(right)
        assert left.count == 3
        assert left.min == 0.25
        assert left.max == 900.0
        assert left.sum == pytest.approx(905.25)

    def test_merge_with_empty_is_identity(self):
        left = Histogram("h")
        left.record(3.0)
        before = left.summary()
        left.merge(left.spawn_empty())
        assert left.summary() == before

    def test_merge_rejects_incompatible_shapes(self):
        left = Histogram("h", low=1e-3, high=1e4, growth=1.5)
        other = Histogram("h", low=1e-2, high=1e3, growth=2.0)
        assert not left.same_shape(other)
        with pytest.raises(ValueError, match="incompatible shape"):
            left.merge(other)

    def test_merge_does_not_mutate_the_other_histogram(self):
        left, right = Histogram("h"), Histogram("h")
        left.record(1.0)
        right.record(2.0)
        left.merge(right)
        assert right.count == 1
        assert right.summary()["count"] == 1


class TestWindowingHelpers:
    def test_delta_recovers_the_window_between_snapshots(self):
        cumulative = Histogram("h")
        cumulative.record(1.0)
        baseline = cumulative.delta(None)  # copy = snapshot
        cumulative.record(10.0)
        cumulative.record(20.0)
        window = cumulative.delta(baseline)
        assert window.count == 2
        assert window.sum == pytest.approx(30.0)

    def test_delta_none_is_a_deep_copy(self):
        cumulative = Histogram("h")
        cumulative.record(1.0)
        copy = cumulative.delta(None)
        cumulative.record(2.0)
        assert copy.count == 1

    def test_delta_rejects_a_later_baseline(self):
        early = Histogram("h")
        late = Histogram("h")
        late.record(1.0)
        with pytest.raises(ValueError, match="earlier"):
            early.delta(late)

    def test_fraction_over_matches_quantiles_at_bucket_resolution(self):
        # The serving tier's stage-latency shape, so thresholds sit well
        # inside the bucketed range.
        histogram = Histogram("h", low=1e-3, high=1e4, growth=1.5)
        for value in [0.1] * 90 + [50.0] * 10:
            histogram.record(value)
        assert histogram.fraction_over(1.0) == pytest.approx(0.1, abs=0.02)
        assert histogram.fraction_over(1e5) == 0.0
        assert Histogram("h").fraction_over(1.0) == 0.0
