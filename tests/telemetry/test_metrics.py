"""Unit tests for counters and fixed-bucket histograms."""

import pytest

from repro.telemetry import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestHistogram:
    def test_exact_stats(self):
        histogram = Histogram("lat")
        for value in [100.0, 200.0, 300.0]:
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(200.0)
        assert histogram.min == 100.0
        assert histogram.max == 300.0

    def test_quantiles_within_bucket_tolerance(self):
        histogram = Histogram("lat")
        for value in range(1, 1001):
            histogram.record(float(value))
        # Geometric buckets with growth 1.25: ~12% worst-case error.
        assert histogram.quantile(0.50) == pytest.approx(500.0, rel=0.15)
        assert histogram.quantile(0.95) == pytest.approx(950.0, rel=0.15)
        assert histogram.quantile(0.99) == pytest.approx(990.0, rel=0.15)

    def test_quantiles_clamped_to_observed_range(self):
        histogram = Histogram("lat")
        histogram.record(5000.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 5000.0

    def test_empty(self):
        histogram = Histogram("lat")
        assert histogram.mean == 0.0
        assert histogram.quantile(0.99) == 0.0
        assert histogram.snapshot()["count"] == 0

    def test_overflow_and_underflow_samples_kept(self):
        histogram = Histogram("lat", low=10.0, high=100.0)
        histogram.record(0.0)
        histogram.record(1e12)
        assert histogram.count == 2
        assert histogram.max == 1e12
        assert histogram.quantile(1.0) == 1e12

    def test_all_zero_samples_quantiles_are_zero(self):
        # Regression: a max of 0.0 must still clamp (0 is falsy).
        histogram = Histogram("lat")
        for _ in range(10):
            histogram.record(0.0)
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantile(0.99) == 0.0

    def test_rejects_negative_sample(self):
        with pytest.raises(ValueError):
            Histogram("lat").record(-1.0)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Histogram("lat", low=0.0)
        with pytest.raises(ValueError):
            Histogram("lat", growth=1.0)

    def test_percentiles_and_snapshot(self):
        histogram = Histogram("lat")
        for value in range(1, 101):
            histogram.record(float(value))
        snapshot = histogram.snapshot()
        assert set(snapshot) == {"count", "mean", "min", "max", "p50", "p95", "p99"}
        assert snapshot["p50"] <= snapshot["p95"] <= snapshot["p99"] <= snapshot["max"]

    def test_summary_nests_percentiles_and_agrees_with_snapshot(self):
        from repro.telemetry.metrics import SUMMARY_PERCENTILES

        histogram = Histogram("lat")
        for value in range(1, 101):
            histogram.record(float(value))
        summary = histogram.summary()
        assert set(summary) == {"count", "sum", "mean", "min", "max", "percentiles"}
        assert summary["count"] == 100
        assert summary["sum"] == pytest.approx(5050.0)
        assert set(summary["percentiles"]) == {f"p{p}" for p in SUMMARY_PERCENTILES}
        snapshot = histogram.snapshot()
        for p in SUMMARY_PERCENTILES:
            assert summary["percentiles"][f"p{p}"] == snapshot[f"p{p}"]

    def test_summary_empty(self):
        summary = Histogram("lat").summary()
        assert summary["count"] == 0
        assert summary["sum"] == 0.0


class TestRegistry:
    def test_create_on_demand_and_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_serializable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.histogram("lat").record(42.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"events": 3}
        assert snapshot["histograms"]["lat"]["count"] == 1
        json.dumps(snapshot)  # must not raise
