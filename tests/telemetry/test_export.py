"""Tests for the Chrome-trace exporter, validator, and text timelines."""

import json

import pytest

from repro.telemetry import (
    Tracer,
    chrome_trace_dict,
    render_timeline,
    timeline_summary,
    validate_chrome_trace,
    write_chrome_trace,
)


@pytest.fixture
def small_tracer():
    tracer = Tracer()
    tracer.span("user", "segment", 0, 1000, 3000, args={"thread": "app-0"})
    tracer.span("cc6", "segment", 1, 0, 5000)
    tracer.instant("irq.deliver", "irq", 0, 1500, args={"irq": "iommu-ppr"})
    tracer.instant("ssr.submit", "ssr", "iommu", 100, args={"id": 1})
    tracer.counter_sample("qos.ssr_fraction", "qos", 2000, 0.25)
    tracer.metrics.counter("ipi.sent").inc(2)
    tracer.metrics.histogram("ssr.latency_ns").record(5000.0)
    return tracer


class TestChromeExport:
    def test_document_shape(self, small_tracer):
        doc = chrome_trace_dict(small_tracer, label="test")
        assert doc["displayTimeUnit"] == "ns"
        assert doc["otherData"]["dropped_events"] == 0
        assert doc["otherData"]["metrics"]["counters"] == {"ipi.sent": 2}
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "i", "C"} <= phases

    def test_timestamps_are_microseconds(self, small_tracer):
        doc = chrome_trace_dict(small_tracer)
        span = next(
            e for e in doc["traceEvents"] if e["ph"] == "X" and e["name"] == "user"
        )
        assert span["ts"] == pytest.approx(1.0)
        assert span["dur"] == pytest.approx(2.0)

    def test_core_tids_stable_named_tracks_offset(self, small_tracer):
        doc = chrome_trace_dict(small_tracer)
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[0] == "core 0"
        assert names[1] == "core 1"
        assert any(tid >= 1000 and name == "iommu" for tid, name in names.items())

    def test_validates_and_serializes(self, small_tracer, tmp_path):
        doc = chrome_trace_dict(small_tracer)
        assert validate_chrome_trace(doc) == []
        path = tmp_path / "out.json"
        write_chrome_trace(small_tracer, str(path))
        assert validate_chrome_trace(json.loads(path.read_text())) == []


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"foo": 1}) != []

    def test_rejects_bad_event(self):
        doc = {"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0, "ts": 1.0}]}
        errors = validate_chrome_trace(doc)
        assert any("dur" in e for e in errors)

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "?", "name": "x", "pid": 0, "tid": 0, "ts": 0}]}
        assert any("phase" in e for e in validate_chrome_trace(doc))

    def test_rejects_negative_ts(self):
        doc = {"traceEvents": [{"ph": "i", "name": "x", "pid": 0, "tid": 0, "ts": -5}]}
        assert any("ts" in e for e in validate_chrome_trace(doc))

    def test_error_cap(self):
        doc = {"traceEvents": [{"bad": True}] * 200}
        errors = validate_chrome_trace(doc)
        assert errors[-1].startswith("...")


class TestTextTimelines:
    def test_summary_aggregates_span_time(self, small_tracer):
        text = timeline_summary(small_tracer)
        assert "core 0" in text and "iommu" in text
        assert "user" in text and "cc6" in text

    def test_summary_reports_drops(self):
        tracer = Tracer(capacity=1)
        tracer.instant("a", "t", 0, 0)
        tracer.instant("b", "t", 0, 1)
        assert "dropped 1" in timeline_summary(tracer)

    def test_render_timeline_orders_events(self, small_tracer):
        text = render_timeline(small_tracer, 0)
        lines = text.splitlines()
        assert lines[0].startswith("timeline for core 0")
        assert lines[1].strip().startswith("1.000us")  # the user span at 1us

    def test_render_timeline_limit(self, small_tracer):
        text = render_timeline(small_tracer, 0, limit=1)
        assert len(text.splitlines()) == 2


class TestMetricsText:
    def _registry(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("service.jobs.completed").inc(3)
        registry.histogram("service.job.e2e_s").record(1.5)
        return registry

    def test_families_announced_with_help_and_type(self):
        from repro.telemetry.export import render_metrics_text

        text = render_metrics_text(
            self._registry(), gauges={"queue.depth": 2.0}
        )
        lines = text.splitlines()
        assert "# TYPE service.jobs.completed counter" in lines
        assert "# TYPE service.job.e2e_s histogram" in lines
        assert "# TYPE queue.depth gauge" in lines
        for line in lines:
            if line.startswith("# HELP"):
                assert len(line.split(" ", 3)) == 4  # name + help text

    def test_legacy_flat_sample_lines_preserved(self):
        from repro.telemetry.export import render_metrics_text

        text = render_metrics_text(
            self._registry(), gauges={"queue.depth": 2.0}
        )
        samples = [l for l in text.splitlines() if not l.startswith("#")]
        assert "service.jobs.completed 3" in samples
        assert "queue.depth 2" in samples
        assert any(l.startswith("service.job.e2e_s.count ") for l in samples)
        assert any(l.startswith("service.job.e2e_s.p99 ") for l in samples)
        # grep-style consumers see exactly one sample line per family
        # member, each "name value" shaped.
        for line in samples:
            name, value = line.split(" ")
            float(value)

    def test_content_type_constant_is_openmetrics(self):
        from repro.telemetry.export import METRICS_TEXT_CONTENT_TYPE

        assert METRICS_TEXT_CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"
