"""End-to-end mitigation and QoS invariants (Sections V and VI)."""

import pytest

from repro.config import SystemConfig
from repro.core import run_workloads
from repro.core.experiment import clear_cache
from repro.mitigations import coalescing, monolithic, steering

HORIZON = 10_000_000


@pytest.fixture(scope="module", autouse=True)
def _isolated_cache():
    clear_cache()
    yield
    clear_cache()


def pair(cpu, gpu, config=None, ssr=True):
    return run_workloads(cpu, gpu, ssr, config or SystemConfig(), HORIZON)


class TestSteering:
    def test_concentrates_interrupts(self):
        metrics = pair(None, "ubench", steering(SystemConfig()))
        irqs = metrics.interrupts_per_core
        assert irqs[0] > 0.9 * sum(irqs)

    def test_restores_sleep_under_storm(self):
        default = pair(None, "ubench")
        steered = pair(None, "ubench", steering(SystemConfig()))
        assert steered.cc6_residency > default.cc6_residency + 0.3

    def test_helps_cpu_against_storm(self):
        base = pair("x264", "ubench", ssr=False)
        default = pair("x264", "ubench")
        steered = pair("x264", "ubench", steering(SystemConfig()))
        default_perf = default.cpu_app.instructions / base.cpu_app.instructions
        steered_perf = steered.cpu_app.instructions / base.cpu_app.instructions
        assert steered_perf > default_perf


class TestCoalescing:
    def test_reduces_interrupt_count(self):
        default = pair(None, "ubench")
        merged = pair(None, "ubench", coalescing(SystemConfig()))
        assert merged.ssr_interrupts < default.ssr_interrupts
        # No requests are lost to merging.
        assert merged.ssr_completed > 0.9 * merged.ssr_requests

    def test_adds_latency_to_blocking_app(self):
        default = pair(None, "sssp")
        merged = pair(None, "sssp", coalescing(SystemConfig()))
        assert merged.gpu.mean_ssr_latency_ns > default.gpu.mean_ssr_latency_ns


class TestMonolithic:
    def test_cuts_ssr_latency(self):
        default = pair(None, "sssp")
        mono = pair(None, "sssp", monolithic(SystemConfig()))
        assert mono.gpu.mean_ssr_latency_ns < default.gpu.mean_ssr_latency_ns

    def test_eliminates_bottom_half_ipis(self):
        default = pair(None, "ubench")
        mono = pair(None, "ubench", monolithic(SystemConfig()))
        assert mono.ipis < 0.2 * default.ipis

    def test_speeds_up_blocking_gpu_app(self):
        default = pair("streamcluster", "sssp")
        mono = pair("streamcluster", "sssp", monolithic(SystemConfig()))
        assert mono.gpu.progress_ns > default.gpu.progress_ns


class TestQos:
    def test_backpressure_stalls_gpu_not_ppr_overflow(self):
        config = SystemConfig().with_qos(enabled=True, ssr_time_threshold=0.01)
        metrics = pair("x264", "ubench", config)
        # Far fewer requests even *arrive*: the bounded outstanding-SSR
        # window throttles generation, exactly the paper's mechanism.
        default = pair("x264", "ubench")
        assert metrics.ssr_requests < 0.5 * default.ssr_requests

    def test_threshold_ordering(self):
        """Tighter thresholds give more CPU performance and less GPU."""
        base = pair("x264", "ubench", ssr=False)
        results = {}
        for threshold in (None, 0.05, 0.01):
            config = SystemConfig()
            if threshold is not None:
                config = config.with_qos(enabled=True, ssr_time_threshold=threshold)
            metrics = pair("x264", "ubench", config)
            results[threshold] = (
                metrics.cpu_app.instructions / base.cpu_app.instructions,
                metrics.gpu.faults_completed,
            )
        assert results[0.01][0] > results[0.05][0] > results[None][0]
        assert results[0.01][1] < results[0.05][1] < results[None][1]

    def test_qos_orthogonal_to_mitigations(self):
        """QoS composes with the Section V techniques (paper claim)."""
        config = steering(SystemConfig()).with_qos(
            enabled=True, ssr_time_threshold=0.05
        )
        metrics = pair("x264", "ubench", config)
        assert metrics.qos_throttle_events > 0
        assert metrics.interrupts_per_core[0] > 0.9 * sum(metrics.interrupts_per_core)
