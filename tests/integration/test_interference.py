"""End-to-end interference invariants (the paper's core claims).

These tests run real co-executions at a reduced horizon and assert the
*directions* and rough magnitudes the paper establishes — they are the
repository's regression net for the headline phenomena.
"""

import pytest

from repro.config import SystemConfig
from repro.core import run_workloads
from repro.core.experiment import clear_cache

HORIZON = 10_000_000  # 10 ms keeps the integration suite quick


@pytest.fixture(scope="module", autouse=True)
def _isolated_cache():
    clear_cache()
    yield
    clear_cache()


def pair(cpu, gpu, ssr=True, config=None):
    return run_workloads(cpu, gpu, ssr, config or SystemConfig(), HORIZON)


class TestHiss:
    """Host interference from GPU system services (Section IV-A)."""

    def test_ssrs_degrade_cpu_performance(self):
        with_ssr = pair("x264", "ubench", True)
        without = pair("x264", "ubench", False)
        ratio = with_ssr.cpu_app.instructions / without.cpu_app.instructions
        assert ratio < 0.85  # the paper reports up to 44% loss

    def test_moderate_app_hurts_less_than_storm(self):
        base_x = pair("fluidanimate", "xsbench", False)
        with_x = pair("fluidanimate", "xsbench", True)
        base_u = pair("fluidanimate", "ubench", False)
        with_u = pair("fluidanimate", "ubench", True)
        moderate = with_x.cpu_app.instructions / base_x.cpu_app.instructions
        storm = with_u.cpu_app.instructions / base_u.cpu_app.instructions
        assert storm < moderate < 1.02

    def test_raytrace_least_affected_by_storm(self):
        """Idle cores absorb SSR work for the mostly-serial app."""
        ratios = {}
        for name in ("raytrace", "x264", "streamcluster"):
            base = pair(name, "ubench", False)
            ssr = pair(name, "ubench", True)
            ratios[name] = ssr.cpu_app.instructions / base.cpu_app.instructions
        assert ratios["raytrace"] > ratios["x264"]
        assert ratios["raytrace"] > ratios["streamcluster"]

    def test_busy_cpus_slow_blocking_gpu_app(self):
        idle = pair(None, "sssp", True)
        busy = pair("streamcluster", "sssp", True)
        ratio = busy.gpu.progress_ns / idle.gpu.progress_ns
        assert 0.6 < ratio < 0.98  # the paper reports up to 18% loss

    def test_overlapped_gpu_app_tolerates_busy_cpus(self):
        idle = pair(None, "ubench", True)
        busy = pair("streamcluster", "ubench", True)
        ratio = busy.gpu.faults_completed / idle.gpu.faults_completed
        assert ratio > 0.9


class TestEnergy:
    """CC6 sleep destruction (Section IV-B)."""

    def test_no_ssr_baseline_high(self):
        metrics = pair(None, "ubench", False)
        assert metrics.cc6_residency > 0.75  # paper: 86%

    def test_storm_destroys_sleep(self):
        metrics = pair(None, "ubench", True)
        assert metrics.cc6_residency < 0.15  # paper: 12%

    def test_clustered_faults_preserve_more_sleep(self):
        # bfs's startup burst spans several milliseconds, so this
        # comparison needs a horizon long enough for its quiet phase.
        long_horizon = 20_000_000
        bfs = run_workloads(None, "bfs", True, SystemConfig(), long_horizon)
        sssp = run_workloads(None, "sssp", True, SystemConfig(), long_horizon)
        assert bfs.cc6_residency > sssp.cc6_residency


class TestMicroarchitecture:
    """Cache/branch pollution (Section IV-C / Fig. 5)."""

    def test_storm_pollutes_l1(self):
        metrics = pair("x264", "ubench", True)
        assert metrics.cpu_app.l1_miss_increase > 0.02
        assert metrics.cpu_app.pollution_stall_ns > 0

    def test_storm_pollutes_predictor(self):
        metrics = pair("x264", "ubench", True)
        assert metrics.cpu_app.mispredict_increase > 0.005

    def test_small_footprint_app_polluted_less(self):
        big = pair("x264", "ubench", True).cpu_app
        small = pair("blackscholes", "ubench", True).cpu_app
        assert small.pollution_stall_ns < big.pollution_stall_ns


class TestInterruptBehaviour:
    """Interrupt distribution and IPIs (Section IV-C)."""

    def test_interrupts_evenly_distributed_under_load(self):
        metrics = pair("x264", "ubench", True)
        assert metrics.interrupt_balance() < 1.3

    def test_ipis_explode_with_ssrs(self):
        base = pair(None, "ubench", False)
        storm = pair(None, "ubench", True)
        assert storm.ipis > 20 * max(1, base.ipis)

    def test_ssr_requests_match_interrupt_batches(self):
        metrics = pair(None, "xsbench", True)
        assert metrics.ssr_interrupts <= metrics.ssr_requests
        assert metrics.ssr_completed <= metrics.ssr_requests
