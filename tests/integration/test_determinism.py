"""Determinism and seed-sensitivity of full-system runs."""

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.workloads import gpu_app, parsec

HORIZON = 5_000_000


def run_once(seed=42):
    system = System(SystemConfig().with_seed(seed))
    system.add_cpu_app(parsec("fluidanimate"))
    system.add_gpu_workload(gpu_app("sssp"))
    return system.run(HORIZON)


def fingerprint(metrics):
    return (
        metrics.cpu_app.instructions,
        metrics.cpu_app.pollution_stall_ns,
        metrics.gpu.progress_ns,
        metrics.gpu.faults_issued,
        metrics.cc6_residency,
        tuple(metrics.interrupts_per_core),
        metrics.ipis,
        metrics.ssr_time_ns,
        metrics.context_switches,
    )


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        assert fingerprint(run_once()) == fingerprint(run_once())

    def test_different_seed_different_sampled_stats(self):
        # Macro quantities are seed-robust; the sampled uarch telemetry
        # (the hardware-counter analog) is where seed variation shows.
        a = run_once(seed=1)
        b = run_once(seed=2)
        assert (
            a.cpu_app.measured_l1_miss_rate != b.cpu_app.measured_l1_miss_rate
            or a.cpu_app.measured_mispredict_rate != b.cpu_app.measured_mispredict_rate
        )

    def test_different_seed_similar_aggregates(self):
        """Seeds change micro-details, not the macro story."""
        a = run_once(seed=1)
        b = run_once(seed=2)
        assert a.cpu_app.instructions == pytest.approx(
            b.cpu_app.instructions, rel=0.1
        )
        assert a.gpu.progress_ns == pytest.approx(b.gpu.progress_ns, rel=0.15)


class TestProjection:
    def test_accelerator_scaling_monotone_interference(self):
        from repro.core import project_accelerator_scaling

        points = project_accelerator_scaling(
            cpu_name="x264", gpu_name="xsbench", max_accelerators=3,
            horizon_ns=HORIZON,
        )
        assert len(points) == 4
        assert points[0].cpu_relative_performance == pytest.approx(1.0)
        perf = [p.cpu_relative_performance for p in points]
        # More accelerators => monotonically (weakly) worse CPU performance.
        assert all(b <= a + 0.02 for a, b in zip(perf, perf[1:]))
        assert perf[-1] < 0.97
        # And more SSR servicing time.
        assert points[-1].ssr_time_fraction > points[1].ssr_time_fraction * 1.5
