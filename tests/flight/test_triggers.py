"""Trigger predicates: spec validation, debounce, and the hourly cap.

Everything is evaluated against event timestamps the tests supply, so
suppression decisions are exact — no sleeps, no clock reads.
"""

import pytest

from repro.flight import TriggerSpec, TriggerState, default_triggers
from repro.flight.triggers import (
    KIND_JOB_LATENCY,
    KIND_MANUAL,
    KIND_SLO_ALERT,
    RATE_WINDOW_S,
)


class TestSpecValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TriggerSpec("x", "nope")

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            TriggerSpec("", KIND_SLO_ALERT)

    def test_job_latency_requires_a_threshold(self):
        with pytest.raises(ValueError):
            TriggerSpec("slow", KIND_JOB_LATENCY)
        with pytest.raises(ValueError):
            TriggerSpec("slow", KIND_JOB_LATENCY, threshold_s=0.0)
        spec = TriggerSpec("slow", KIND_JOB_LATENCY, threshold_s=2.5)
        assert spec.as_dict()["threshold_s"] == 2.5

    def test_rejects_negative_debounce_and_zero_rate(self):
        with pytest.raises(ValueError):
            TriggerSpec("x", KIND_SLO_ALERT, debounce_s=-1.0)
        with pytest.raises(ValueError):
            TriggerSpec("x", KIND_SLO_ALERT, max_per_hour=0)


class TestDebounce:
    def test_rapid_repeats_are_suppressed(self):
        state = TriggerState(TriggerSpec("a", KIND_SLO_ALERT, debounce_s=30.0))
        assert state.should_fire(100.0)
        assert not state.should_fire(110.0)
        assert not state.should_fire(129.9)
        assert state.should_fire(130.0)
        assert state.fired == 2
        assert state.suppressed_debounce == 2

    def test_zero_debounce_admits_back_to_back(self):
        state = TriggerState(
            TriggerSpec("m", KIND_MANUAL, debounce_s=0.0, max_per_hour=60)
        )
        assert state.should_fire(5.0)
        assert state.should_fire(5.0)


class TestRateLimit:
    def test_hourly_cap_suppresses_then_recovers(self):
        state = TriggerState(
            TriggerSpec("a", KIND_SLO_ALERT, debounce_s=0.0, max_per_hour=3)
        )
        for offset in (0.0, 10.0, 20.0):
            assert state.should_fire(offset)
        assert not state.should_fire(30.0)
        assert state.suppressed_rate == 1
        # The window slides on event time: an hour past the first
        # admission, a slot frees up.
        assert state.should_fire(RATE_WINDOW_S + 5.0)

    def test_as_dict_carries_counters(self):
        state = TriggerState(TriggerSpec("a", KIND_SLO_ALERT, debounce_s=0.0))
        state.should_fire(1.0)
        doc = state.as_dict()
        assert doc["name"] == "a"
        assert doc["fired"] == 1
        assert doc["suppressed_debounce"] == 0
        assert doc["suppressed_rate"] == 0


class TestDefaultTriggers:
    def test_standard_set_covers_the_four_auto_kinds_plus_manual(self):
        kinds = {spec.kind for spec in default_triggers()}
        assert kinds == {"slo_alert", "worker_crash", "ledger_invariant", "manual"}

    def test_e2e_threshold_adds_the_latency_trigger(self):
        specs = default_triggers(e2e_threshold_s=1.5)
        latency = [s for s in specs if s.kind == KIND_JOB_LATENCY]
        assert len(latency) == 1
        assert latency[0].threshold_s == 1.5

    def test_manual_trigger_has_no_debounce(self):
        manual = next(s for s in default_triggers() if s.kind == KIND_MANUAL)
        assert manual.debounce_s == 0.0
        assert manual.max_per_hour == 60
