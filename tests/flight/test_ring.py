"""FlightRing determinism and the pair-merge decimation invariants.

The ring's contract: byte-identical rings from identical append
sequences, conservation of the represented-record count through any
number of decimations, and near-trigger fidelity (the newest entries
stay unmerged while history coarsens).
"""

import json

import pytest

from repro.flight import FlightRing


def _fill(ring, n, kind="event"):
    for i in range(n):
        ring.append(float(i), kind, {"i": i})
    return ring


class TestCapacityValidation:
    def test_rejects_odd_and_tiny_capacities(self):
        for bad in (0, 8, 15, 17, -2):
            with pytest.raises(ValueError):
                FlightRing(bad)

    def test_accepts_even_capacities(self):
        assert FlightRing(16).capacity == 16
        assert FlightRing(512).capacity == 512


class TestConservation:
    @pytest.mark.parametrize("appends", [1, 15, 16, 17, 100, 1000])
    def test_total_weight_equals_appended(self, appends):
        ring = _fill(FlightRing(16), appends)
        assert ring.appended == appends
        assert ring.total_weight == appends

    def test_entry_count_stays_bounded(self):
        ring = _fill(FlightRing(16), 10_000)
        assert len(ring.entries) < 16
        assert ring.total_weight == 10_000

    def test_kind_counts_count_weights_not_entries(self):
        ring = FlightRing(16)
        for i in range(50):
            ring.append(float(i), "a" if i % 2 else "b", {})
        counts = ring.kind_counts()
        assert counts["a"] + counts["b"] == 50


class TestDecimation:
    def test_later_payload_survives_a_merge(self):
        ring = _fill(FlightRing(16), 16)  # exactly one decimation
        assert ring.decimations == 1
        # Survivors are the odd-seq (later) halves of each pair.
        assert [entry.seq for entry in ring.entries] == [1, 3, 5, 7, 9, 11, 13, 15]
        assert all(entry.weight == 2 for entry in ring.entries)

    def test_first_ts_reaches_back_through_merges(self):
        ring = _fill(FlightRing(16), 65)
        oldest = ring.entries[0]
        assert oldest.first_ts_s == 0.0
        assert oldest.ts_s > oldest.first_ts_s
        # The entry appended right after a decimation is still unmerged.
        newest = ring.entries[-1]
        assert newest.weight == 1
        assert newest.first_ts_s == newest.ts_s

    def test_history_coarsens_toward_the_past(self):
        ring = _fill(FlightRing(16), 200)
        weights = [entry.weight for entry in ring.entries]
        # Non-strictly decreasing weight toward the present.
        assert weights == sorted(weights, reverse=True)


class TestDeterminism:
    def test_identical_sequences_produce_identical_rings(self):
        a = _fill(FlightRing(32), 777)
        b = _fill(FlightRing(32), 777)
        assert json.dumps(a.as_dict(), sort_keys=True) == json.dumps(
            b.as_dict(), sort_keys=True
        )

    def test_as_dict_round_trips_through_json(self):
        ring = _fill(FlightRing(16), 40)
        doc = json.loads(json.dumps(ring.as_dict()))
        assert doc["appended"] == 40
        assert doc["decimations"] == ring.decimations
        assert sum(entry["weight"] for entry in doc["entries"]) == 40
