"""Bundle build/validate and the atomic keep-N PostmortemStore.

The store's contract mirrors ops-log rotation: whole files only — a
reader never sees a torn bundle, and eviction removes the oldest bundle
entire, never truncates it.
"""

import json
import os

import pytest

from repro.flight import (
    FlightRing,
    PostmortemStore,
    blame_top_k,
    build_postmortem,
    list_bundles,
    postmortem_id,
    validate_postmortem,
)

CONFIG = {
    "version": "1.0.0",
    "code_fingerprint": "f" * 64,
    "schema_digest": "d" * 64,
    "label": "default",
    "system": {"gpu": {}},
}


def _bundle(sequence=0, kind="manual", ring=None):
    if ring is None:
        ring = FlightRing(16)
        ring.append(1.0, "job.started", {"job": "job-1"})
    return build_postmortem(
        trigger={"name": "manual", "kind": kind, "at_s": 2.0, "detail": "test"},
        captured_s=2.0,
        sequence=sequence,
        config=dict(CONFIG),
        flight_ring=ring.as_dict(),
    )


class TestBuildAndValidate:
    def test_well_formed_bundle_validates_clean(self):
        doc = _bundle()
        assert validate_postmortem(doc) == []
        assert doc["id"] == postmortem_id(0, "manual") == "pm-000000-manual"

    def test_round_trip_through_json_stays_valid(self):
        doc = json.loads(json.dumps(_bundle(), sort_keys=True))
        assert validate_postmortem(doc) == []

    def test_rejects_wrong_schema_and_missing_fields(self):
        assert validate_postmortem([]) != []
        assert validate_postmortem({"schema": "nope"}) != []
        doc = _bundle()
        del doc["trigger"]["at_s"]
        assert any("at_s" in p for p in validate_postmortem(doc))

    def test_rejects_id_sequence_mismatch(self):
        doc = _bundle(sequence=3)
        doc["id"] = "pm-000099-manual"
        assert any("sequence/kind" in p for p in validate_postmortem(doc))

    def test_rejects_overweight_ring(self):
        doc = _bundle()
        doc["flight_ring"]["entries"][0]["weight"] = 99
        assert any("exceed appended" in p for p in validate_postmortem(doc))

    def test_rejects_job_section_without_spans(self):
        doc = _bundle()
        doc["jobs"] = [{"job_id": "job-1"}]
        assert any("spans" in p for p in validate_postmortem(doc))


class TestBlameTopK:
    def test_sorts_by_charge_with_deterministic_ties(self):
        profiles = [
            {
                "run": "bfs+MemcachedService",
                "ledger": {
                    "entries": [
                        {"ssr": "tlb", "channel": "l2", "victim": "bfs",
                         "app": "memcached", "core": 0, "ns": 500},
                        {"ssr": "pf", "channel": "dram", "victim": "bfs",
                         "app": "memcached", "core": 1, "ns": 900},
                    ]
                },
            },
            {
                "run": "sssp+FsService",
                "ledger": {
                    "entries": [
                        {"ssr": "io", "channel": "l2", "victim": "sssp",
                         "app": "fs", "core": 0, "ns": 900},
                    ]
                },
            },
        ]
        rows = blame_top_k(profiles, k=2)
        assert [row["ns"] for row in rows] == [900, 900]
        # Equal charge: run label breaks the tie deterministically.
        assert [row["run"] for row in rows] == [
            "bfs+MemcachedService", "sssp+FsService",
        ]
        assert blame_top_k(profiles, k=2) == rows

    def test_tolerates_profiles_without_ledgers(self):
        assert blame_top_k([{"run": "x"}, None, {"ledger": {}}]) == []


class TestPostmortemStore:
    def test_write_is_atomic_and_loadable(self, tmp_path):
        store = PostmortemStore(str(tmp_path), keep=5)
        doc = _bundle()
        path = store.write(doc)
        assert os.path.exists(path)
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert store.load(doc["id"]) == json.loads(json.dumps(doc, sort_keys=True))

    def test_keep_n_evicts_oldest_whole(self, tmp_path):
        store = PostmortemStore(str(tmp_path), keep=3)
        for sequence in range(6):
            store.write(_bundle(sequence=sequence))
        names = sorted(os.listdir(tmp_path))
        assert names == [f"pm-{s:06d}-manual.json" for s in (3, 4, 5)]
        assert store.written == 6
        assert store.evicted == 3
        # Survivors are intact, not truncated.
        for name in names:
            assert validate_postmortem(
                json.loads((tmp_path / name).read_text())
            ) == []

    def test_rejects_keep_below_one(self, tmp_path):
        with pytest.raises(ValueError):
            PostmortemStore(str(tmp_path), keep=0)

    def test_load_sanitizes_hostile_ids(self, tmp_path):
        store = PostmortemStore(str(tmp_path))
        store.write(_bundle())
        assert store.load("../pm-000000-manual") is None
        assert store.load("pm/../../etc/passwd") is None
        assert store.load("") is None
        assert store.load("pm-999999-manual") is None

    def test_index_and_list_bundles_summarize(self, tmp_path):
        store = PostmortemStore(str(tmp_path), keep=5)
        store.write(_bundle(sequence=0))
        store.write(_bundle(sequence=1))
        rows = store.index()
        assert [row["id"] for row in rows] == [
            "pm-000000-manual", "pm-000001-manual",
        ]
        assert all(row["ring_entries"] == 1 for row in rows)
        assert all(row["bytes"] > 0 for row in rows)
        # list_bundles never creates the directory.
        assert list_bundles(str(tmp_path / "missing")) == []
        assert not (tmp_path / "missing").exists()

    def test_list_bundles_skips_torn_json(self, tmp_path):
        store = PostmortemStore(str(tmp_path), keep=5)
        store.write(_bundle())
        (tmp_path / "pm-000009-manual.json").write_text('{"truncated')
        rows = list_bundles(str(tmp_path))
        assert [row["id"] for row in rows] == ["pm-000000-manual"]
