"""hiss-postmortem CLI + HTML/text rendering determinism.

The acceptance bar: rendering the same bundle twice is byte-identical
(everything in the report is clocked by event timestamps inside the
bundle), `validate` exits 1 on a broken bundle, and `render`/`summary`
exit 2 rather than render garbage.
"""

import json

import pytest

from repro.flight import FlightRecorder, PostmortemStore, default_triggers
from repro.flight.cli import main
from repro.flight.report import postmortem_text, render_postmortem_html


@pytest.fixture()
def bundle_path(tmp_path):
    store = PostmortemStore(str(tmp_path / "pm"), keep=5)
    recorder = FlightRecorder(store, triggers=default_triggers())
    for i in range(40):
        recorder.observe({"ts": 100.0 + i, "event": "job.started", "job": f"j{i}"})
    recorder.note_run(
        {"run": "bfs+MemcachedService", "worker_pid": 4242,
         "wall_start_s": 130.0, "wall_end_s": 139.5},
        [{"ts": i} for i in range(30)],
        {"samples": {"interval_ns": 1000, "columns": ["t"], "rows": [[1], [2]]}},
    )
    doc = recorder.trigger_manual("cli test", at_s=140.0)
    assert doc is not None
    return store.paths()[0]


class TestRenderDeterminism:
    def test_html_is_byte_identical_across_renders(self, bundle_path):
        doc = json.loads(open(bundle_path).read())
        assert render_postmortem_html(doc) == render_postmortem_html(doc)

    def test_text_summary_is_deterministic(self, bundle_path):
        doc = json.loads(open(bundle_path).read())
        text = postmortem_text(doc)
        assert text == postmortem_text(doc)
        assert doc["id"] in text
        assert "ring:" in text

    def test_html_embeds_the_raw_bundle(self, bundle_path):
        doc = json.loads(open(bundle_path).read())
        html = render_postmortem_html(doc)
        assert "hiss-postmortem-data" in html
        assert "<svg" in html
        assert doc["id"] in html

    def test_render_cli_twice_writes_identical_files(self, bundle_path, tmp_path):
        out1 = tmp_path / "a.html"
        out2 = tmp_path / "b.html"
        assert main(["render", str(bundle_path), "-o", str(out1)]) == 0
        assert main(["render", str(bundle_path), "-o", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()


class TestCliExitCodes:
    def test_validate_ok(self, bundle_path, capsys):
        assert main(["validate", str(bundle_path)]) == 0
        assert capsys.readouterr().out.startswith("OK:")

    def test_validate_broken_bundle_exits_1(self, bundle_path, tmp_path, capsys):
        broken = tmp_path / "broken.json"
        doc = json.loads(open(bundle_path).read())
        doc["schema"] = "hiss.wrong/9"
        broken.write_text(json.dumps(doc))
        assert main(["validate", str(broken)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_render_refuses_invalid_input(self, bundle_path, tmp_path):
        broken = tmp_path / "broken.json"
        doc = json.loads(open(bundle_path).read())
        del doc["trigger"]
        broken.write_text(json.dumps(doc))
        with pytest.raises(SystemExit) as excinfo:
            main(["render", str(broken), "-o", str(tmp_path / "x.html")])
        assert excinfo.value.code == 2

    def test_summary_refuses_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["summary", str(tmp_path / "absent.json")])

    def test_list_directory(self, bundle_path, capsys):
        directory = str(bundle_path.rsplit("/", 1)[0])
        assert main(["list", directory]) == 0
        out = capsys.readouterr().out
        assert "pm-000000-manual" in out
        assert "bytes" in out

    def test_list_empty_directory(self, tmp_path, capsys):
        assert main(["list", str(tmp_path)]) == 0
        assert "no postmortem bundles" in capsys.readouterr().out


class TestRecorderRing:
    def test_run_tails_land_in_the_ring(self, bundle_path):
        doc = json.loads(open(bundle_path).read())
        kinds = {entry["kind"] for entry in doc["flight_ring"]["entries"]}
        assert "sim.tail" in kinds
        assert "sampler.tail" in kinds
        tail = next(
            entry for entry in doc["flight_ring"]["entries"]
            if entry["kind"] == "sim.tail"
        )
        # Only the tail of the event stream rides along, with the total.
        assert tail["data"]["events_total"] == 30
        assert len(tail["data"]["events"]) == 16
