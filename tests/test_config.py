"""Unit tests for system configuration."""

import pytest
from dataclasses import FrozenInstanceError

from repro.config import (
    COALESCE_WINDOW_PAPER_NS,
    CpuConfig,
    MitigationConfig,
    QosConfig,
    SystemConfig,
)


class TestImmutability:
    def test_system_config_frozen(self):
        with pytest.raises(FrozenInstanceError):
            SystemConfig().seed = 7

    def test_configs_hashable_and_cacheable(self):
        a = SystemConfig()
        b = SystemConfig()
        assert a == b and hash(a) == hash(b)
        assert a.with_mitigation(steer_to_single_core=True) != a

    def test_with_helpers_return_copies(self):
        base = SystemConfig()
        base.with_qos(enabled=True)
        assert not base.qos.enabled


class TestCpuConfig:
    def test_cycle_conversions_roundtrip(self):
        cpu = CpuConfig()
        assert cpu.ns_to_cycles(cpu.cycles_to_ns(1234.0)) == pytest.approx(1234.0)

    def test_frequency_matches_paper_testbed(self):
        assert CpuConfig().freq_ghz == 3.7
        assert CpuConfig().num_cores == 4


class TestLabels:
    def test_default(self):
        assert SystemConfig().label == "Default"

    def test_mitigation_label_order_stable(self):
        config = SystemConfig().with_mitigation(
            monolithic_bottom_half=True, steer_to_single_core=True
        )
        assert config.label == "Intr_to_single_core + Monolithic_bottom_half"

    def test_polling_label(self):
        assert (
            SystemConfig().with_mitigation(polling_period_ns=10_000).label == "Polling"
        )

    def test_qos_labels(self):
        assert QosConfig(enabled=True, ssr_time_threshold=0.25).label == "th_25"
        assert QosConfig(enabled=True, ssr_time_threshold=0.01).label == "th_1"
        assert QosConfig(enabled=False).label == "default"
        assert QosConfig(enabled=True, adaptive=True).label == "th_adaptive"

    def test_combined_label(self):
        config = SystemConfig().with_mitigation(coalesce_window_ns=13_000).with_qos(
            enabled=True, ssr_time_threshold=0.05
        )
        assert config.label == "Intr_coalescing + QoS(th_5)"


class TestPaperConstants:
    def test_coalesce_window(self):
        assert COALESCE_WINDOW_PAPER_NS == 13_000

    def test_qos_defaults_match_fig11(self):
        qos = QosConfig()
        assert qos.initial_delay_ns == 10_000  # 10 us, doubling
