"""Unit tests for the figure experiment functions (tiny grids).

These verify the *plumbing* of each experiment — correct rows/columns,
normalization identities, aggregate rows — on minimal workload grids.
The paper-shape assertions live in benchmarks/ and tests/integration/.
"""

import pytest

from repro.core.experiment import clear_cache
from repro.experiments import run_experiment

H = 6_000_000
CPUS = ["swaptions", "raytrace"]
GPUS = ["xsbench", "ubench"]


@pytest.fixture(scope="module", autouse=True)
def _fresh():
    clear_cache()
    yield
    clear_cache()


class TestFig3a:
    def test_grid_shape(self):
        result = run_experiment("fig3a", cpu_names=CPUS, gpu_names=GPUS, horizon_ns=H)
        assert result.columns == ["cpu_app", "xsbench", "ubench"]
        labels = [row[0] for row in result.rows]
        assert labels == CPUS + ["gmean"]

    def test_values_in_unit_range(self):
        result = run_experiment("fig3a", cpu_names=CPUS, gpu_names=GPUS, horizon_ns=H)
        for row in result.rows:
            for value in row[1:]:
                assert 0.1 < value <= 1.1

    def test_gmean_between_min_and_max(self):
        result = run_experiment("fig3a", cpu_names=CPUS, gpu_names=GPUS, horizon_ns=H)
        column = result.column("ubench")
        body, gmean = column[:-1], column[-1]
        assert min(body) <= gmean <= max(body)


class TestFig3b:
    def test_idle_baseline_normalization(self):
        result = run_experiment("fig3b", cpu_names=CPUS, gpu_names=GPUS, horizon_ns=H)
        for row in result.rows:
            for value in row[1:]:
                assert 0.3 < value < 1.5


class TestFig4:
    def test_rows_and_loss_arithmetic(self):
        result = run_experiment("fig4", gpu_names=["xsbench"], horizon_ns=H)
        row = result.rows[0]
        assert row[0] == "xsbench"
        assert row[3] == pytest.approx(row[1] - row[2])

    def test_percentages(self):
        result = run_experiment("fig4", gpu_names=["bfs", "ubench"], horizon_ns=H)
        for row in result.rows:
            assert 0.0 <= row[2] <= row[1] <= 100.0


class TestFig5:
    def test_columns_present(self):
        result = run_experiment("fig5", cpu_names=["x264"], horizon_ns=H)
        assert result.cell("x264", "l1d_miss_increase_pct") >= 0
        assert result.cell("x264", "pollution_stall_ms") >= 0


class TestFig9:
    def test_custom_combo_subset(self):
        result = run_experiment(
            "fig9", combos=["Default", "Intr_to_single_core"], horizon_ns=H
        )
        labels = [row[0] for row in result.rows]
        assert labels == ["ubench_no_SSR", "Default", "Intr_to_single_core"]


class TestFig7:
    def test_pareto_labels_marked(self):
        result = run_experiment(
            "fig7",
            cpu_names=["swaptions"],
            combos=["Default", "Intr_to_single_core"],
            horizon_ns=H,
        )
        flags = {row[0]: row[3] for row in result.rows}
        assert set(flags.values()) <= {"yes", "no"}
        assert "yes" in flags.values()


class TestFig12:
    def test_threshold_columns(self):
        result = run_experiment("fig12a", cpu_names=["swaptions"], horizon_ns=H)
        assert result.columns == ["cpu_app", "default", "th_25", "th_5", "th_1"]

    def test_gpu_panel_normalized_to_idle(self):
        result = run_experiment("fig12b", cpu_names=["swaptions"], horizon_ns=H)
        assert result.cell("swaptions", "default") <= 1.1


class TestIpiExperiment:
    def test_has_four_run_rows_plus_summary(self):
        result = run_experiment("ipi", cpu_name="swaptions", horizon_ns=H)
        assert len(result.rows) == 5
        assert result.rows[-1][0] == "ipi_increase_x"
