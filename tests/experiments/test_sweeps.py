"""Unit tests for the ablation sweeps (small parameter lists)."""

import pytest

from repro.experiments import run_experiment

HORIZON = 6_000_000


class TestSweepCoalesce:
    def test_larger_window_fewer_interrupts(self):
        result = run_experiment(
            "sweep_coalesce", windows_us=[0, 26], horizon_ns=HORIZON
        )
        interrupts = result.column("ssr_interrupts(ubench)")
        assert interrupts[1] < interrupts[0]

    def test_larger_window_more_blocking_latency(self):
        result = run_experiment(
            "sweep_coalesce", windows_us=[0, 52], horizon_ns=HORIZON
        )
        latency = result.column("sssp_latency_us")
        assert latency[1] > latency[0]


class TestSweepOutstanding:
    def test_tiny_window_limits_throughput(self):
        result = run_experiment(
            "sweep_outstanding", limits=[1, 32], horizon_ns=HORIZON
        )
        rates = result.column("ubench_ssrs_per_s")
        assert rates[0] < 0.7 * rates[1]

    def test_rates_monotone_nondecreasing(self):
        result = run_experiment(
            "sweep_outstanding", limits=[1, 4, 32], horizon_ns=HORIZON
        )
        rates = result.column("ubench_ssrs_per_s")
        assert rates[0] <= rates[1] <= rates[2] * 1.05


class TestSweepDispatch:
    def test_monolithic_gain_scales_with_latency(self):
        result = run_experiment(
            "sweep_dispatch", latencies_us=[0, 36], horizon_ns=HORIZON
        )
        gains = result.column("monolithic_gain")
        assert gains[0] == pytest.approx(1.0, abs=0.1)
        assert gains[1] > gains[0]


class TestSweepQos:
    def test_curve_shape(self):
        result = run_experiment(
            "sweep_qos", thresholds=[0.05, 0.01], horizon_ns=HORIZON
        )
        labels = [row[0] for row in result.rows]
        assert labels == ["off", "5%", "1%", "adaptive"]
        cpu = result.column("cpu_perf")
        # off < 5% < 1% on the CPU axis.
        assert cpu[0] < cpu[1] < cpu[2]
        rate = result.column("ubench_rate")
        assert rate[0] > rate[1] > rate[2]

    def test_adaptive_row_throttles_busy_host(self):
        result = run_experiment(
            "sweep_qos", thresholds=[0.05], horizon_ns=HORIZON
        )
        adaptive_cpu = result.cell("adaptive", "cpu_perf")
        off_cpu = result.cell("off", "cpu_perf")
        assert adaptive_cpu > off_cpu


class TestSweepFanOut:
    """The sweeps now batch through execute_runs; results must not change."""

    def test_jobs_parallel_rows_identical_to_serial(self):
        from repro.core import clear_cache

        clear_cache()
        serial = run_experiment(
            "sweep_qos", thresholds=[0.05], horizon_ns=HORIZON, jobs=1
        )
        clear_cache()
        parallel = run_experiment(
            "sweep_qos", thresholds=[0.05], horizon_ns=HORIZON, jobs=2
        )
        assert serial.rows == parallel.rows

    def test_sweeps_remain_plannable(self):
        from repro.core import clear_cache
        from repro.core.experiment import planning

        clear_cache()
        with planning() as keys:
            run_experiment("sweep_coalesce", windows_us=[0, 13], horizon_ns=HORIZON)
            run_experiment("sweep_dispatch", latencies_us=[0, 36], horizon_ns=HORIZON)
        # Planning recorded the grids without simulating anything.
        assert len(keys) >= 9
        clear_cache()

    def test_fan_out_skips_during_planning(self):
        """A planning pass over a sweep must not execute runs."""
        from repro.core import clear_cache
        from repro.core.experiment import _CACHE, planning

        clear_cache()
        with planning():
            run_experiment("sweep_outstanding", limits=[1, 2], horizon_ns=HORIZON)
        assert len(_CACHE) == 0  # placeholders are never cached
        clear_cache()
