"""Unit tests for the experiment registry and result rendering."""

import pytest

import repro.experiments  # noqa: F401 - populates the registry
from repro.experiments import REGISTRY, ExperimentResult, run_experiment
from repro.experiments.common import UNPLANNABLE
from repro.experiments.run_all import (
    DEFAULT_ORDER,
    EXTENSION_ORDER,
    listed_experiments,
    main,
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1",
            "fig3a",
            "fig3b",
            "fig4",
            "fig5",
            "ipi",
            "fig6a",
            "fig6b",
            "fig6c",
            "fig6d",
            "fig6e",
            "fig6f",
            "fig7",
            "fig8",
            "fig9",
            "fig12a",
            "fig12b",
        }
        assert expected <= set(REGISTRY)

    def test_order_lists_are_subsets_of_registry(self):
        # Orders may lag behind REGISTRY (listed_experiments() catches the
        # stragglers) but must never name an experiment that doesn't exist.
        assert set(DEFAULT_ORDER) <= set(REGISTRY)
        assert set(EXTENSION_ORDER) <= set(REGISTRY)
        assert not set(DEFAULT_ORDER) & set(EXTENSION_ORDER)

    def test_listed_experiments_covers_registry_exactly(self):
        listed = listed_experiments()
        assert sorted(listed) == sorted(REGISTRY)
        assert len(listed) == len(set(listed))
        # Curated order comes first, in order.
        curated = [e for e in DEFAULT_ORDER + EXTENSION_ORDER if e in REGISTRY]
        assert listed[: len(curated)] == curated

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult(
            experiment_id="demo", title="Demo", columns=["app", "x", "y"]
        )
        result.add_row("alpha", 1.0, 2.0)
        result.add_row("beta", 3.0, 4.0)
        return result

    def test_column_access(self):
        assert self._result().column("x") == [1.0, 3.0]

    def test_cell_access(self):
        assert self._result().cell("beta", "y") == 4.0

    def test_cell_unknown_row(self):
        with pytest.raises(KeyError):
            self._result().cell("gamma", "x")

    def test_render_contains_everything(self):
        text = self._result().render()
        assert "demo" in text and "alpha" in text and "4.000" in text

    def test_as_dict_round_trip(self):
        data = self._result().as_dict()
        assert data["columns"] == ["app", "x", "y"]
        assert data["rows"][1] == ["beta", 3.0, 4.0]


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "table1" in out

    def test_list_covers_every_registered_experiment(self, capsys):
        main(["--list"])
        lines = capsys.readouterr().out.strip().splitlines()
        ids = [line.split()[0] for line in lines]
        assert sorted(ids) == sorted(REGISTRY)
        for line in lines:
            if line.split()[0] in UNPLANNABLE:
                assert "serial-only" in line

    def test_runs_cheap_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "page_fault" in out

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["figZZ"])

    def test_requires_targets(self):
        with pytest.raises(SystemExit):
            main([])
