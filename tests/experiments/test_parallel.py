"""Tests for the parallel experiment engine: planning, fan-out, equivalence."""

import pytest

from repro.config import SystemConfig
from repro.core import (
    clear_cache,
    execute_runs,
    make_run_key,
    plan_runs,
    planning,
    prewarm_experiments,
    resolve_jobs,
    run_workloads,
    set_disk_cache,
)
from repro.core.experiment import _CACHE
from repro.experiments import run_experiment
from repro.experiments.common import REGISTRY, UNPLANNABLE

#: Short horizon + tiny grids keep every test here in seconds.
HORIZON = 1_000_000
CPUS = ["x264", "blackscholes"]
GPUS = ["bfs", "ubench"]


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_cache()
    set_disk_cache(None)
    yield
    clear_cache()
    set_disk_cache(None)


def kwargs_for(experiment_id: str) -> dict:
    kwargs = {"horizon_ns": HORIZON}
    if experiment_id in ("fig3a", "fig3b"):
        kwargs["cpu_names"] = CPUS
        kwargs["gpu_names"] = GPUS
    if experiment_id == "fig4":
        kwargs["gpu_names"] = GPUS
    return kwargs


class TestPlanning:
    def test_planning_records_without_simulating(self):
        with planning() as collected:
            run_workloads("x264", "ubench", True, None, HORIZON)
        assert collected == {
            make_run_key("x264", "ubench", True, SystemConfig(), HORIZON)
        }
        assert not _CACHE  # nothing simulated, nothing memoized

    def test_placeholders_support_experiment_arithmetic(self):
        with planning():
            metrics = run_workloads("x264", "ubench", True, None, HORIZON)
        assert metrics.cpu_app.instructions > 0
        assert metrics.gpu.performance_metric() > 0
        assert metrics.interrupt_balance() >= 0

    def test_fig3a_plan_is_the_full_grid(self):
        keys, skipped = plan_runs(["fig3a"], kwargs_for, unplannable=UNPLANNABLE)
        # Each (cpu, gpu) pair needs an SSR and a no-SSR run.
        assert len(keys) == len(CPUS) * len(GPUS) * 2
        assert skipped == []

    def test_shared_baselines_dedupe_across_figures(self):
        keys_a, _ = plan_runs(["fig3a"], kwargs_for, unplannable=UNPLANNABLE)
        keys_both, _ = plan_runs(
            ["fig3a", "fig3b"], kwargs_for, unplannable=UNPLANNABLE
        )
        # fig3b reuses fig3a's SSR pair runs and adds idle-CPU baselines.
        assert len(keys_both) < len(keys_a) + len(CPUS) * len(GPUS) + len(GPUS)
        assert len(set(keys_both)) == len(keys_both)

    def test_unplannable_experiments_are_skipped(self):
        keys, skipped = plan_runs(
            ["table1"], lambda _eid: {}, unplannable=UNPLANNABLE
        )
        assert keys == []
        assert skipped == ["table1"]
        assert "table1" in UNPLANNABLE

    def test_planning_does_not_nest(self):
        with planning():
            with pytest.raises(RuntimeError):
                with planning():
                    pass

    def test_plan_order_is_deterministic(self):
        first, _ = plan_runs(["fig4"], kwargs_for, unplannable=UNPLANNABLE)
        second, _ = plan_runs(["fig4"], kwargs_for, unplannable=UNPLANNABLE)
        assert first == second


class TestExecution:
    def test_serial_vs_parallel_rows_identical(self):
        """The acceptance bar: --jobs N output == serial output, exactly."""
        serial = run_experiment("fig4", **kwargs_for("fig4"))
        clear_cache()
        report = prewarm_experiments(
            ["fig4"], kwargs_for, jobs=2, unplannable=UNPLANNABLE
        )
        assert report.executed == report.planned > 0
        parallel = run_experiment("fig4", **kwargs_for("fig4"))
        assert parallel.columns == serial.columns
        assert parallel.rows == serial.rows  # float-exact, not approximate

    def test_parallel_fig3a_equivalence(self):
        serial = run_experiment("fig3a", **kwargs_for("fig3a"))
        clear_cache()
        prewarm_experiments(["fig3a"], kwargs_for, jobs=2, unplannable=UNPLANNABLE)
        parallel = run_experiment("fig3a", **kwargs_for("fig3a"))
        assert parallel.rows == serial.rows

    def test_execute_runs_respects_memory_cache(self):
        keys, _ = plan_runs(["fig4"], kwargs_for, unplannable=UNPLANNABLE)
        report = execute_runs(keys, jobs=1)
        assert report.executed == len(keys)
        again = execute_runs(keys, jobs=1)
        assert again.executed == 0
        assert again.memory_hits == len(keys)

    def test_execute_runs_uses_disk_cache(self, tmp_path):
        from repro.core import DiskCache

        set_disk_cache(DiskCache(str(tmp_path)))
        keys, _ = plan_runs(["fig4"], kwargs_for, unplannable=UNPLANNABLE)
        execute_runs(keys, jobs=1)
        clear_cache()  # drop memory level; disk must serve everything
        report = execute_runs(keys, jobs=1)
        assert report.executed == 0
        assert report.disk_hits == len(keys)

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestCli:
    def test_jobs_flag_end_to_end(self, tmp_path, capsys):
        from repro.experiments.run_all import main

        code = main(
            [
                "fig4",
                "--quick",
                "--horizon-ms", "1",
                "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "planned" in out
        assert "worker" in out
        assert "cache" in out

    def test_elapsed_s_serialized(self):
        result = run_experiment("fig4", **kwargs_for("fig4"))
        assert result.as_dict()["elapsed_s"] == result.elapsed_s
        assert result.elapsed_s > 0
