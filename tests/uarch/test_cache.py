"""Unit tests for the owner-tagged set-associative cache."""

import pytest

from repro.uarch import SetAssociativeCache


@pytest.fixture
def cache():
    return SetAssociativeCache(num_sets=4, ways=2, line_size=64)


class TestGeometry:
    def test_total_lines(self, cache):
        assert cache.total_lines == 8

    def test_size_bytes(self, cache):
        assert cache.size_bytes == 512

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(line_size=48)

    def test_invalid_sets(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(num_sets=0)


class TestBasicAccess:
    def test_first_access_misses(self, cache):
        assert cache.access(0x1000, "a") is False

    def test_second_access_hits(self, cache):
        cache.access(0x1000, "a")
        assert cache.access(0x1000, "a") is True

    def test_same_line_different_offset_hits(self, cache):
        cache.access(0x1000, "a")
        assert cache.access(0x103F, "a") is True

    def test_adjacent_line_misses(self, cache):
        cache.access(0x1000, "a")
        assert cache.access(0x1040, "a") is False

    def test_stats_track_hits_and_misses(self, cache):
        cache.access(0x1000, "a")
        cache.access(0x1000, "a")
        cache.access(0x2000, "a")
        assert cache.stats.hits["a"] == 1
        assert cache.stats.misses["a"] == 2
        assert cache.stats.miss_rate("a") == pytest.approx(2 / 3)

    def test_miss_rate_with_no_accesses(self, cache):
        assert cache.stats.miss_rate("ghost") == 0.0


class TestLruReplacement:
    def test_lru_victim_is_evicted(self, cache):
        # Set 0 has 2 ways; lines mapping to set 0 are multiples of 4 lines.
        set_stride = 4 * 64  # num_sets * line_size
        a, b, c = 0, set_stride, 2 * set_stride
        cache.access(a, "x")
        cache.access(b, "x")
        cache.access(a, "x")  # refresh a; b is now LRU
        cache.access(c, "x")  # evicts b
        assert cache.access(a, "x") is True
        assert cache.access(b, "x") is False  # b was the victim

    def test_eviction_records_victim_owner(self, cache):
        set_stride = 4 * 64
        cache.access(0, "victim")
        cache.access(set_stride, "victim")
        cache.access(2 * set_stride, "attacker")
        assert cache.stats.evictions_suffered["victim"] == 1
        assert cache.stats.evictions_caused[("attacker", "victim")] == 1

    def test_occupancy_tracks_eviction(self, cache):
        set_stride = 4 * 64
        cache.access(0, "a")
        cache.access(set_stride, "a")
        assert cache.occupancy("a") == 2
        cache.access(2 * set_stride, "b")
        assert cache.occupancy("a") == 1
        assert cache.occupancy("b") == 1


class TestMaintenance:
    def test_flush_empties_cache(self, cache):
        for i in range(8):
            cache.access(i * 64, "a")
        dropped = cache.flush()
        assert dropped == 8
        assert cache.occupancy("a") == 0
        assert cache.access(0, "a") is False

    def test_evict_owner_is_selective(self, cache):
        cache.access(0, "a")
        cache.access(64, "b")
        dropped = cache.evict_owner("a")
        assert dropped == 1
        assert cache.occupancy("a") == 0
        assert cache.access(64, "b") is True

    def test_resident_owners_snapshot(self, cache):
        cache.access(0, "a")
        cache.access(64, "b")
        assert cache.resident_owners() == {"a": 1, "b": 1}

    def test_stats_reset(self, cache):
        cache.access(0, "a")
        cache.stats.reset()
        assert cache.stats.misses["a"] == 0
