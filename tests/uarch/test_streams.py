"""Unit tests for synthetic address/branch stream generators."""

import random

import pytest

from repro.uarch import (
    AddressStreamSpec,
    BranchStreamSpec,
    generate_addresses,
    generate_branches,
    sequential_addresses,
)


class TestAddressStreamSpec:
    def test_validation_lines(self):
        with pytest.raises(ValueError):
            AddressStreamSpec(base=0, lines=0)

    def test_validation_hot_fraction(self):
        with pytest.raises(ValueError):
            AddressStreamSpec(base=0, lines=10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            AddressStreamSpec(base=0, lines=10, hot_fraction=1.5)

    def test_validation_hot_rate(self):
        with pytest.raises(ValueError):
            AddressStreamSpec(base=0, lines=10, hot_rate=-0.1)


class TestAddressGeneration:
    def test_addresses_stay_in_working_set(self):
        spec = AddressStreamSpec(base=0x1000, lines=16, line_size=64)
        for address in generate_addresses(spec, 500, random.Random(0)):
            assert 0x1000 <= address < 0x1000 + 16 * 64

    def test_addresses_are_line_aligned(self):
        spec = AddressStreamSpec(base=0x1000, lines=16, line_size=64)
        assert all(
            (a - 0x1000) % 64 == 0 for a in generate_addresses(spec, 100, random.Random(0))
        )

    def test_hot_lines_dominate(self):
        spec = AddressStreamSpec(
            base=0, lines=100, hot_fraction=0.1, hot_rate=0.9, line_size=64
        )
        hot_limit = 10 * 64
        addresses = list(generate_addresses(spec, 5000, random.Random(1)))
        hot = sum(1 for a in addresses if a < hot_limit)
        assert hot / len(addresses) > 0.85

    def test_deterministic_for_seed(self):
        spec = AddressStreamSpec(base=0, lines=64)
        a = list(generate_addresses(spec, 50, random.Random(7)))
        b = list(generate_addresses(spec, 50, random.Random(7)))
        assert a == b

    def test_count_respected(self):
        spec = AddressStreamSpec(base=0, lines=8)
        assert len(list(generate_addresses(spec, 33, random.Random(0)))) == 33


class TestBranchGeneration:
    def test_validation(self):
        with pytest.raises(ValueError):
            BranchStreamSpec(base_pc=0, sites=0)
        with pytest.raises(ValueError):
            BranchStreamSpec(base_pc=0, sites=4, bias=0.4)

    def test_pcs_within_site_range(self):
        spec = BranchStreamSpec(base_pc=0x4000, sites=8)
        for pc, _ in generate_branches(spec, 200, random.Random(0)):
            assert 0x4000 <= pc < 0x4000 + 8 * 4

    def test_bias_respected_per_site(self):
        spec = BranchStreamSpec(base_pc=0, sites=2, bias=0.95)
        outcomes = {}
        for pc, taken in generate_branches(spec, 4000, random.Random(2)):
            outcomes.setdefault(pc, []).append(taken)
        for pc, takens in outcomes.items():
            majority_rate = max(sum(takens), len(takens) - sum(takens)) / len(takens)
            assert majority_rate > 0.9

    def test_deterministic_for_seed(self):
        spec = BranchStreamSpec(base_pc=0, sites=16)
        a = list(generate_branches(spec, 40, random.Random(5)))
        b = list(generate_branches(spec, 40, random.Random(5)))
        assert a == b


class TestSequentialAddresses:
    def test_one_address_per_line(self):
        addresses = list(sequential_addresses(0x1000, 4, 64))
        assert addresses == [0x1000, 0x1040, 0x1080, 0x10C0]
