"""Unit tests for the gshare/bimodal branch predictor."""

import pytest

from repro.uarch import GShareBranchPredictor


@pytest.fixture
def predictor():
    return GShareBranchPredictor(table_size=64, history_bits=0)


class TestConstruction:
    def test_invalid_table_size(self):
        with pytest.raises(ValueError):
            GShareBranchPredictor(table_size=60)

    def test_invalid_history_bits(self):
        with pytest.raises(ValueError):
            GShareBranchPredictor(history_bits=31)


class TestTraining:
    def test_initial_prediction_is_not_taken(self, predictor):
        # WEAK_NOT_TAKEN initial state: a not-taken branch predicts correctly.
        assert predictor.execute(0x400, taken=False, owner="a") is True

    def test_taken_branch_trains_after_two_executions(self, predictor):
        predictor.execute(0x400, taken=True, owner="a")   # mispredict, trains up
        predictor.execute(0x400, taken=True, owner="a")   # now weak-taken
        assert predictor.execute(0x400, taken=True, owner="a") is True

    def test_saturation_resists_single_flip(self, predictor):
        for _ in range(4):
            predictor.execute(0x400, taken=True, owner="a")  # strong taken
        predictor.execute(0x400, taken=False, owner="a")      # one anomaly
        assert predictor.execute(0x400, taken=True, owner="a") is True

    def test_stats_accumulate(self, predictor):
        predictor.execute(0x400, taken=True, owner="a")
        predictor.execute(0x400, taken=True, owner="a")
        assert predictor.stats.predictions["a"] == 2
        assert predictor.stats.mispredictions["a"] >= 1

    def test_biased_stream_converges_to_low_mispredicts(self, predictor):
        import random

        rng = random.Random(1)
        mispredicts = 0
        # Warm up.
        for _ in range(100):
            predictor.execute(0x400, taken=rng.random() < 0.95, owner="a")
        predictor.stats.reset()
        for _ in range(1000):
            taken = rng.random() < 0.95
            if not predictor.execute(0x400, taken, owner="a"):
                mispredicts += 1
        assert mispredicts / 1000 < 0.15


class TestOwnershipDisturbance:
    def test_retraining_by_other_owner_is_counted(self, predictor):
        predictor.execute(0x400, taken=True, owner="user")
        predictor.execute(0x400, taken=False, owner="kernel")
        assert predictor.stats.entries_disturbed[("kernel", "user")] == 1

    def test_same_owner_retraining_not_counted(self, predictor):
        predictor.execute(0x400, taken=True, owner="user")
        predictor.execute(0x400, taken=True, owner="user")
        assert predictor.stats.entries_disturbed == {}

    def test_owned_entries(self, predictor):
        # 0x400 and 0x404 map to adjacent table entries (pc >> 2 indexing).
        predictor.execute(0x400, True, "a")
        predictor.execute(0x404, True, "a")
        predictor.execute(0x400, True, "b")  # takes over one entry
        assert predictor.owned_entries("a") == 1
        assert predictor.owned_entries("b") == 1

    def test_distinct_pcs_map_to_distinct_entries_bimodal(self, predictor):
        # With 0 history bits and <= table_size distinct pcs at stride 4,
        # there is no aliasing.
        for site in range(64):
            predictor.execute(0x1000 + site * 4, True, "a")
        assert predictor.owned_entries("a") == 64


class TestHistoryMode:
    def test_history_changes_index(self):
        predictor = GShareBranchPredictor(table_size=64, history_bits=4)
        # Execute the same pc with different preceding history; the pattern
        # should touch more than one table entry.
        predictor.execute(0x100, True, "a")
        predictor.execute(0x200, True, "a")  # shifts history
        predictor.execute(0x100, True, "a")
        assert predictor.owned_entries("a") >= 2

    def test_reset_state(self):
        predictor = GShareBranchPredictor(table_size=64, history_bits=4)
        predictor.execute(0x100, True, "a")
        predictor.reset_state()
        assert predictor.owned_entries("a") == 0
