"""Property-based tests for microarchitecture models (hypothesis)."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.uarch import GShareBranchPredictor, SetAssociativeCache

_access = st.tuples(
    st.integers(min_value=0, max_value=2**20),  # address
    st.sampled_from(["a", "b", "kernel"]),
)


class TestCacheInvariants:
    @given(accesses=st.lists(_access, min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, accesses):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        for address, owner in accesses:
            cache.access(address, owner)
            total = sum(cache.resident_owners().values())
            assert total <= cache.total_lines

    @given(accesses=st.lists(_access, min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_equals_installs_minus_evictions(self, accesses):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        for address, owner in accesses:
            cache.access(address, owner)
        for owner in ("a", "b", "kernel"):
            expected = (
                cache.stats.misses[owner] - cache.stats.evictions_suffered[owner]
            )
            assert cache.occupancy(owner) == expected

    @given(accesses=st.lists(_access, min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, accesses):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        counts = Counter()
        for address, owner in accesses:
            cache.access(address, owner)
            counts[owner] += 1
        for owner, count in counts.items():
            assert cache.stats.hits[owner] + cache.stats.misses[owner] == count

    @given(accesses=st.lists(_access, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_immediate_reaccess_always_hits(self, accesses):
        cache = SetAssociativeCache(num_sets=8, ways=2)
        for address, owner in accesses:
            cache.access(address, owner)
            assert cache.access(address, owner) is True

    @given(accesses=st.lists(_access, min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_flush_always_leaves_empty_cache(self, accesses):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        for address, owner in accesses:
            cache.access(address, owner)
        cache.flush()
        assert cache.resident_owners() == {}


_branch = st.tuples(
    st.integers(min_value=0, max_value=2**16),
    st.booleans(),
    st.sampled_from(["a", "b"]),
)


class TestPredictorInvariants:
    @given(branches=st.lists(_branch, min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_predictions_equal_executions(self, branches):
        predictor = GShareBranchPredictor(table_size=64, history_bits=2)
        counts = Counter()
        for pc, taken, owner in branches:
            predictor.execute(pc, taken, owner)
            counts[owner] += 1
        for owner, count in counts.items():
            assert predictor.stats.predictions[owner] == count

    @given(branches=st.lists(_branch, min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_mispredictions_bounded_by_predictions(self, branches):
        predictor = GShareBranchPredictor(table_size=64, history_bits=2)
        for pc, taken, owner in branches:
            predictor.execute(pc, taken, owner)
        for owner in ("a", "b"):
            assert (
                predictor.stats.mispredictions[owner]
                <= predictor.stats.predictions[owner]
            )

    @given(branches=st.lists(_branch, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_owned_entries_bounded_by_table(self, branches):
        predictor = GShareBranchPredictor(table_size=32, history_bits=0)
        for pc, taken, owner in branches:
            predictor.execute(pc, taken, owner)
        assert predictor.owned_entries("a") + predictor.owned_entries("b") <= 32

    @given(
        pc=st.integers(min_value=0, max_value=2**16),
        repeats=st.integers(min_value=4, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_constant_direction_eventually_predicted(self, pc, repeats):
        predictor = GShareBranchPredictor(table_size=64, history_bits=0)
        results = [predictor.execute(pc, True, "a") for _ in range(repeats)]
        assert results[-1] is True
