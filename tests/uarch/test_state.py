"""Unit tests for per-core uarch state and kernel-window disturbance."""

import random

import pytest

from repro.uarch import (
    AddressStreamSpec,
    BranchStreamSpec,
    CoreUarchState,
    UarchConfig,
    measure_steady_state,
)


@pytest.fixture
def state():
    return CoreUarchState(UarchConfig(cache_sets=16, cache_ways=4), random.Random(0))


def _user_specs(lines=32):
    return (
        AddressStreamSpec(base=0x1_0000, lines=lines, hot_fraction=0.5, hot_rate=0.9),
        BranchStreamSpec(base_pc=0x4000, sites=32, bias=0.95),
    )


def _kernel_specs():
    return (
        AddressStreamSpec(base=0xFF_0000, lines=64, hot_fraction=0.5, hot_rate=0.7),
        BranchStreamSpec(base_pc=0xFF_8000, sites=64, bias=0.85),
    )


class TestUserWindow:
    def test_returns_miss_and_mispredict_counts(self, state):
        addr, branch = _user_specs()
        misses, mispredicts = state.run_user_window("u", addr, branch, 100, 50)
        assert 0 < misses <= 100
        assert 0 <= mispredicts <= 50

    def test_warm_window_misses_less(self, state):
        addr, branch = _user_specs(lines=16)
        cold_misses, _ = state.run_user_window("u", addr, branch, 200, 10)
        warm_misses, _ = state.run_user_window("u", addr, branch, 200, 10)
        assert warm_misses < cold_misses

    def test_occupancy_builds(self, state):
        addr, branch = _user_specs(lines=16)
        state.run_user_window("u", addr, branch, 200, 10)
        assert state.l1d.occupancy("u") > 0


class TestKernelWindow:
    def test_disturbance_reported_per_victim(self, state):
        user_addr, user_branch = _user_specs(lines=64)
        state.run_user_window("victim", user_addr, user_branch, 400, 100)
        kernel_addr, kernel_branch = _kernel_specs()
        disturbances = state.run_kernel_window(kernel_addr, kernel_branch, 128, 64)
        assert "victim" in disturbances
        assert disturbances["victim"].lines_evicted > 0

    def test_no_disturbance_on_empty_cache(self, state):
        kernel_addr, kernel_branch = _kernel_specs()
        disturbances = state.run_kernel_window(kernel_addr, kernel_branch, 64, 32)
        assert disturbances == {}

    def test_kernel_self_eviction_not_reported(self, state):
        kernel_addr, kernel_branch = _kernel_specs()
        state.run_kernel_window(kernel_addr, kernel_branch, 200, 64)
        disturbances = state.run_kernel_window(kernel_addr, kernel_branch, 200, 64)
        assert "kernel" not in disturbances


class TestSleep:
    def test_flush_for_deep_sleep(self, state):
        addr, branch = _user_specs()
        state.run_user_window("u", addr, branch, 100, 10)
        assert state.flush_for_deep_sleep() > 0
        assert state.l1d.occupancy("u") == 0


class TestSteadyState:
    def test_rates_are_probabilities(self):
        addr, branch = _user_specs(lines=200)
        miss, mispredict = measure_steady_state(addr, branch, UarchConfig())
        assert 0.0 <= miss <= 1.0
        assert 0.0 <= mispredict <= 1.0

    def test_small_hot_set_misses_less_than_huge_set(self):
        config = UarchConfig()
        small = AddressStreamSpec(base=0, lines=64, hot_fraction=0.5, hot_rate=0.95)
        huge = AddressStreamSpec(base=0, lines=4096, hot_fraction=0.05, hot_rate=0.3)
        branch = BranchStreamSpec(base_pc=0x4000, sites=32, bias=0.95)
        small_miss, _ = measure_steady_state(small, branch, config)
        huge_miss, _ = measure_steady_state(huge, branch, config)
        assert small_miss < huge_miss

    def test_predictable_branches_mispredict_less(self):
        config = UarchConfig()
        addr = AddressStreamSpec(base=0, lines=64)
        predictable = BranchStreamSpec(base_pc=0, sites=32, bias=0.98)
        erratic = BranchStreamSpec(base_pc=0, sites=32, bias=0.6)
        _, low = measure_steady_state(addr, predictable, config)
        _, high = measure_steady_state(addr, erratic, config)
        assert low < high
