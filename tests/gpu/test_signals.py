"""Unit tests for the GPU signal (S_SENDMSG) path."""

import pytest

from repro.config import SystemConfig
from repro.core import System


@pytest.fixture
def system():
    instance = System(SystemConfig())
    instance.kernel.boot()
    instance.driver.start()
    return instance


class TestSignalPath:
    def test_signal_delivered(self, system):
        done = system.signal_path.send()
        system.env.run(until=1_000_000)
        assert done.triggered
        assert system.signal_path.signals_delivered == 1

    def test_signal_latency_below_page_fault(self, system):
        system.signal_path.send()
        system.env.run(until=1_000_000)
        signal_latency = system.signal_path.latency.mean_ns
        # Signals skip the IOMMU PPR path and have a tiny service cost.
        assert 0 < signal_latency < 20_000

    def test_signals_count_as_ssrs(self, system):
        before = system.kernel.ssr_accounting.completed
        system.signal_path.send()
        system.signal_path.send()
        system.env.run(until=1_000_000)
        assert system.kernel.ssr_accounting.completed == before + 2

    def test_many_signals_all_arrive(self, system):
        events = [system.signal_path.send() for _ in range(20)]
        system.env.run(until=5_000_000)
        assert all(e.triggered for e in events)
