"""Unit tests for trace-driven GPU workloads."""

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.gpu import TraceDrivenGpu, TraceEvent, format_trace, parse_trace


def build(trace):
    system = System(SystemConfig())
    replay = TraceDrivenGpu(system.kernel, system.iommu, trace)
    system.kernel.boot()
    system.driver.start()
    replay.start()
    return system, replay


class TestTraceEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceEvent(time_ns=-1)
        with pytest.raises(ValueError):
            TraceEvent(time_ns=0, count=0)
        with pytest.raises(ValueError):
            TraceEvent(time_ns=0, kind="teleport")


class TestParsing:
    def test_round_trip(self):
        events = [TraceEvent(100, 2), TraceEvent(500, 1, "signal")]
        assert parse_trace(format_trace(events)) == events

    def test_comments_and_blanks(self):
        text = "# header\n\n100 1\n 200 3 page_fault  # inline\n"
        events = parse_trace(text)
        assert events == [TraceEvent(100, 1), TraceEvent(200, 3)]

    def test_sorting(self):
        events = parse_trace("500 1\n100 1")
        assert [e.time_ns for e in events] == [100, 500]

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            parse_trace("100")


class TestReplay:
    def test_all_events_issued_and_completed(self):
        trace = [TraceEvent(i * 50_000, 2) for i in range(10)]
        system, replay = build(trace)
        system.env.run(until=5_000_000)
        assert replay.faults_issued == 20
        assert replay.faults_completed == 20

    def test_issue_times_honoured_when_unpressured(self):
        trace = [TraceEvent(1_000_000, 1)]
        system, replay = build(trace)
        system.env.run(until=3_000_000)
        request = system.iommu.recent_completed[0]
        assert request.issued_at >= 1_000_000

    def test_backpressure_creates_slip(self):
        # A burst far beyond the outstanding window must slip.
        trace = [TraceEvent(1_000, 1) for _ in range(200)]
        system, replay = build(trace)
        system.env.run(until=20_000_000)
        assert replay.slip_ns > 0
        assert replay.faults_completed == 200

    def test_double_start_rejected(self):
        system, replay = build([TraceEvent(0, 1)])
        with pytest.raises(RuntimeError):
            replay.start()

    def test_mixed_kinds(self):
        trace = [TraceEvent(10_000, 1, "page_fault"), TraceEvent(20_000, 1, "filesystem")]
        system, replay = build(trace)
        system.env.run(until=5_000_000)
        kinds = {r.kind.name for r in system.iommu.recent_completed}
        assert kinds == {"page_fault", "filesystem"}
