"""Unit tests for the GPU device model."""

import pytest

from repro.config import SystemConfig
from repro.core import System
from repro.workloads import GpuAppProfile, gpu_app


def build_system(profile, ssr=True, config=None):
    system = System(config or SystemConfig())
    gpu = system.add_gpu_workload(profile, ssr_enabled=ssr)
    return system, gpu


SIMPLE = GpuAppProfile(
    name="simple",
    compute_chunk_ns=200_000,
    faults_per_chunk=4.0,
    blocking=False,
    fault_spacing_ns=2_000,
)


class TestExecution:
    def test_progress_accumulates(self):
        system, gpu = build_system(SIMPLE, ssr=False)
        system.run(5_000_000)
        assert gpu.progress_ns == pytest.approx(5_000_000, rel=0.05)

    def test_ssr_disabled_issues_no_faults(self):
        system, gpu = build_system(SIMPLE, ssr=False)
        system.run(5_000_000)
        assert gpu.faults_issued == 0

    def test_faults_issued_and_completed(self):
        system, gpu = build_system(SIMPLE)
        system.run(5_000_000)
        assert gpu.faults_issued > 0
        assert gpu.faults_completed >= gpu.faults_issued - 64

    def test_blocking_profile_stalls_on_completions(self):
        blocking = GpuAppProfile(
            name="blocky",
            compute_chunk_ns=200_000,
            faults_per_chunk=8.0,
            blocking=True,
            fault_spacing_ns=2_000,
        )
        system, gpu = build_system(blocking)
        system.run(5_000_000)
        assert gpu.stall_ns > 0
        assert gpu.progress_ns < 5_000_000

    def test_double_start_rejected(self):
        system, gpu = build_system(SIMPLE)
        system.run(100_000)
        with pytest.raises(RuntimeError):
            gpu.start()


class TestBackpressure:
    def test_outstanding_limit_never_exceeded(self):
        storm = GpuAppProfile(
            name="storm",
            compute_chunk_ns=1_000,
            faults_per_chunk=1.0,
            blocking=False,
            fault_spacing_ns=0,
        )
        config = SystemConfig()
        system, gpu = build_system(storm, config=config)
        limit = config.gpu.max_outstanding_ssrs

        max_outstanding = 0

        def watch():
            nonlocal max_outstanding
            while True:
                yield system.env.timeout(10_000)
                outstanding = gpu.faults_issued - gpu.faults_completed
                max_outstanding = max(max_outstanding, outstanding)

        system.env.process(watch())
        system.run(3_000_000)
        assert max_outstanding <= limit

    def test_burst_profile_issues_burst_first(self):
        burst = GpuAppProfile(
            name="bursty",
            compute_chunk_ns=1_000_000,
            faults_per_chunk=0.0,
            blocking=False,
            burst_faults=50,
            burst_spacing_ns=5_000,
        )
        system, gpu = build_system(burst)
        system.run(2_000_000)
        assert gpu.faults_issued == 50


class TestDependentFaults:
    def test_dependent_faults_serialize(self):
        loose = GpuAppProfile(
            name="loose", compute_chunk_ns=100_000, faults_per_chunk=8.0,
            blocking=True, dependent_faults=0, fault_spacing_ns=1_000,
        )
        tight = GpuAppProfile(
            name="tight", compute_chunk_ns=100_000, faults_per_chunk=8.0,
            blocking=True, dependent_faults=8, fault_spacing_ns=1_000,
        )
        system_loose, loose_gpu = build_system(loose)
        system_loose.run(5_000_000)
        system_tight, tight_gpu = build_system(tight)
        system_tight.run(5_000_000)
        assert tight_gpu.progress_ns < loose_gpu.progress_ns


class TestHostRuntime:
    def test_host_thread_consumes_cpu(self):
        system, gpu = build_system(SIMPLE, ssr=False)
        system.run(5_000_000)
        assert gpu.host_thread.productive_ns > 0

    def test_catalog_profiles_run(self):
        for name in ("bfs", "bpt", "spmv", "sssp", "xsbench", "ubench"):
            system, gpu = build_system(gpu_app(name))
            system.run(2_000_000)
            assert gpu.faults_issued > 0, name
