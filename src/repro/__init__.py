"""repro — reproduction of *Interference from GPU System Service Requests*
(Basu, Greathouse, Venkataramani, Veselý; IISWC 2018).

A discrete-event simulation of a heterogeneous SoC (CPU cores + integrated
GPU + IOMMU + a Linux-like kernel) that reproduces the paper's host
interference from GPU system services (HISS), its mitigation study
(interrupt steering / coalescing / monolithic bottom half), and its QoS
governor based on SSR backpressure.

Quick start::

    from repro import System, SystemConfig, parsec, gpu_app

    system = System(SystemConfig())
    system.add_cpu_app(parsec("fluidanimate"))
    system.add_gpu_workload(gpu_app("sssp"))
    metrics = system.run(horizon_ns=50_000_000)
    print(metrics.cc6_residency, metrics.ipis)
"""

from .config import (
    COALESCE_WINDOW_PAPER_NS,
    CStateConfig,
    CpuConfig,
    GpuConfig,
    HousekeepingConfig,
    IommuConfig,
    MitigationConfig,
    OsPathConfig,
    PowerConfig,
    QosConfig,
    SchedulerConfig,
    SystemConfig,
)
from .core import (
    DEFAULT_HORIZON_NS,
    ParetoPoint,
    System,
    SystemMetrics,
    cpu_relative_performance,
    geomean,
    gpu_relative_performance,
    pareto_frontier,
    project_accelerator_scaling,
    run_workloads,
)
from .mitigations import ALL_COMBINATIONS, apply_mitigations, combination
from .workloads import (
    GPU_APP_NAMES,
    GPU_NAMES,
    PARSEC_NAMES,
    CpuAppProfile,
    GpuAppProfile,
    gpu_app,
    parsec,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_COMBINATIONS",
    "COALESCE_WINDOW_PAPER_NS",
    "CStateConfig",
    "CpuAppProfile",
    "CpuConfig",
    "DEFAULT_HORIZON_NS",
    "GPU_APP_NAMES",
    "GPU_NAMES",
    "GpuAppProfile",
    "GpuConfig",
    "HousekeepingConfig",
    "IommuConfig",
    "MitigationConfig",
    "OsPathConfig",
    "PARSEC_NAMES",
    "PowerConfig",
    "ParetoPoint",
    "QosConfig",
    "SchedulerConfig",
    "System",
    "SystemConfig",
    "SystemMetrics",
    "apply_mitigations",
    "combination",
    "cpu_relative_performance",
    "geomean",
    "gpu_app",
    "gpu_relative_performance",
    "pareto_frontier",
    "parsec",
    "project_accelerator_scaling",
    "run_workloads",
    "__version__",
]
