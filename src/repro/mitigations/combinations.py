"""Constructors for mitigation configurations and their combinations."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import COALESCE_WINDOW_PAPER_NS, SystemConfig


def steering(config: SystemConfig, target: int = 0) -> SystemConfig:
    """Steer all SSR interrupts (and the bottom-half kthread) to one core."""
    return config.with_mitigation(steer_to_single_core=True, steering_target=target)


def coalescing(config: SystemConfig, window_ns: int = COALESCE_WINDOW_PAPER_NS) -> SystemConfig:
    """Enable IOMMU interrupt coalescing (paper maximum: 13 µs)."""
    return config.with_mitigation(coalesce_window_ns=window_ns)


def monolithic(config: SystemConfig) -> SystemConfig:
    """Fold the bottom half into the hard-IRQ top half."""
    return config.with_mitigation(monolithic_bottom_half=True)


def apply_mitigations(
    config: SystemConfig,
    steer: bool = False,
    coalesce: bool = False,
    mono: bool = False,
) -> SystemConfig:
    """Apply any combination of the three mitigations."""
    if steer:
        config = steering(config)
    if coalesce:
        config = coalescing(config)
    if mono:
        config = monolithic(config)
    return config


#: The eight combinations of the Section V-D Pareto study, as
#: (steer, coalesce, monolithic) flags keyed by the paper's legend labels.
ALL_COMBINATIONS: Dict[str, Tuple[bool, bool, bool]] = {
    "Default": (False, False, False),
    "Intr_to_single_core": (True, False, False),
    "Intr_coalescing": (False, True, False),
    "Monolithic_bottom_half": (False, False, True),
    "Intr_to_single_core + Intr_coalescing": (True, True, False),
    "Intr_to_single_core + Monolithic_bottom_half": (True, False, True),
    "Intr_coalescing + Monolithic_bottom_half": (False, True, True),
    "Intr_to_single_core + Intr_coalescing + Monolithic_bottom_half": (True, True, True),
}

COMBINATION_LABELS: List[str] = list(ALL_COMBINATIONS)


def combination(config: SystemConfig, label: str) -> SystemConfig:
    """Build the configuration for one of the paper's eight combinations."""
    try:
        steer, coalesce, mono = ALL_COMBINATIONS[label]
    except KeyError:
        raise KeyError(
            f"unknown combination {label!r}; known: {COMBINATION_LABELS}"
        ) from None
    return apply_mitigations(config, steer=steer, coalesce=coalesce, mono=mono)
