"""Mitigation strategies from Section V, as configuration helpers.

The three techniques are orthogonal and freely combinable (Section V-D):

* interrupt steering to a single core (high-speed networking heritage),
* IOMMU interrupt coalescing (NIC/storage heritage, 13 µs max window),
* a monolithic bottom-half handler (driver restructuring).
"""

from .combinations import (
    ALL_COMBINATIONS,
    COMBINATION_LABELS,
    apply_mitigations,
    coalescing,
    combination,
    monolithic,
    steering,
)

__all__ = [
    "ALL_COMBINATIONS",
    "COMBINATION_LABELS",
    "apply_mitigations",
    "coalescing",
    "combination",
    "monolithic",
    "steering",
]
