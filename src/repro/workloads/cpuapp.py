"""CPU application threads built from statistical profiles.

A :class:`CpuApp` spawns one :class:`CpuAppThread` per profile thread.
Threads compute in chunks, optionally barrier-synchronize, optionally
think (off-CPU) between chunks, and keep their cache/predictor footprint
resident via sampled windows so kernel SSR handlers have real state to
evict.

The app's *performance* is total retired instructions over the measured
horizon — productive time divided by the profile's solo steady-state CPI —
which is exactly what the paper's normalized-performance bars compare.
"""

from __future__ import annotations

import itertools
from typing import Generator, List, Optional, TYPE_CHECKING

from ..oskernel.thread import KIND_USER, PRIO_NORMAL, Thread
from .barrier import Barrier
from .calibration import SteadyState, address_spec_for, branch_spec_for, steady_state_for
from .profiles import CpuAppProfile

if TYPE_CHECKING:  # pragma: no cover
    from ..oskernel.cpu import Core
    from ..oskernel.kernel import Kernel

#: Global owner-index allocator so every thread gets a distinct address region.
_owner_counter = itertools.count(1)


class CpuAppThread(Thread):
    """One worker thread of a CPU application."""

    def __init__(
        self,
        kernel: "Kernel",
        app: "CpuApp",
        index: int,
        barrier: Optional[Barrier],
    ):
        super().__init__(
            kernel,
            name=f"{app.profile.name}/{index}",
            kind=KIND_USER,
            priority=PRIO_NORMAL,
        )
        self.app = app
        self.index = index
        self.barrier = barrier
        self.duty = app.profile.thread_duty[index]
        owner_index = next(_owner_counter)
        uarch = kernel.config.cpu.uarch
        self.addr_spec = address_spec_for(app.profile, owner_index, uarch.line_size)
        self.branch_spec = branch_spec_for(app.profile, owner_index)
        # Analytic pollution-charge parameters (see Core._run_kernel_window):
        # how much of the shared structures this thread keeps warm, and how
        # likely an evicted line/entry was going to be reused.
        profile = app.profile
        cache_lines = uarch.cache_sets * uarch.cache_ways
        hot_lines = profile.ws_lines * profile.hot_fraction
        self.cache_coverage = min(1.0, hot_lines / cache_lines)
        self.predictor_coverage = min(1.0, profile.branch_sites / uarch.predictor_entries)
        self.reuse_probability = profile.hot_rate

    def on_segment_start(self, core: "Core") -> None:
        """Keep this thread's footprint resident on its core (rate-capped)."""
        core.run_user_window(self.name, self.addr_spec, self.branch_spec)

    def body(self) -> Generator:
        profile = self.app.profile
        compute_ns = profile.chunk_ns * self.duty
        rest_ns = profile.chunk_ns * (1.0 - self.duty) + profile.think_ns
        while True:
            yield from self.run_for(compute_ns)
            if self.barrier is not None:
                event = self.barrier.arrive()
                if not event.triggered:
                    yield from self.wait(event)
            if rest_ns > 0:
                yield from self.sleep(rest_ns)
            elif self.core is not None and self.kernel.scheduler.has_work(self.core):
                # Cooperative fairness point between chunks.
                self._release_cpu(requeue=True)


class CpuApp:
    """A multithreaded CPU application instance."""

    def __init__(self, kernel: "Kernel", profile: CpuAppProfile):
        self.kernel = kernel
        self.profile = profile
        self.steady: SteadyState = steady_state_for(profile, kernel.config.cpu)
        barrier = Barrier(kernel.env, profile.threads) if profile.barriers else None
        self.barrier = barrier
        self.threads: List[CpuAppThread] = [
            CpuAppThread(kernel, self, index, barrier)
            for index in range(profile.threads)
        ]
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError(f"app {self.profile.name} already started")
        self._started = True
        for thread in self.threads:
            self.kernel.spawn(thread)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def productive_ns(self) -> float:
        return sum(thread.productive_ns for thread in self.threads)

    @property
    def instructions_retired(self) -> float:
        freq = self.kernel.config.cpu.freq_ghz
        return self.steady.instructions_for_ns(self.productive_ns, freq)

    @property
    def baseline_l1_misses(self) -> float:
        """Misses this app would take at its solo steady-state rate."""
        accesses = self.instructions_retired * self.profile.apki / 1000.0
        return accesses * self.steady.miss_rate

    @property
    def baseline_mispredicts(self) -> float:
        branches = self.instructions_retired * self.profile.bpki / 1000.0
        return branches * self.steady.mispredict_rate

    @property
    def extra_l1_misses(self) -> float:
        """Misses charged to kernel SSR pollution (Fig. 5a numerator)."""
        return sum(thread.extra_misses for thread in self.threads)

    @property
    def extra_mispredicts(self) -> float:
        return sum(thread.extra_mispredicts for thread in self.threads)

    #: Counter-noise floor: real hardware never reports a 0% miss or
    #: mispredict rate, so relative-increase ratios use at least this rate
    #: as the denominator (prevents divide-by-near-zero blowups for tiny
    #: working sets like blackscholes).
    RATE_FLOOR = 0.01

    def l1_miss_increase(self) -> float:
        """Fractional L1D miss increase from SSR pollution (Fig. 5a)."""
        accesses = self.instructions_retired * self.profile.apki / 1000.0
        baseline = max(self.baseline_l1_misses, accesses * self.RATE_FLOOR)
        return self.extra_l1_misses / baseline if baseline else 0.0

    def mispredict_increase(self) -> float:
        """Fractional branch misprediction increase (Fig. 5b)."""
        branches = self.instructions_retired * self.profile.bpki / 1000.0
        baseline = max(self.baseline_mispredicts, branches * self.RATE_FLOOR)
        return self.extra_mispredicts / baseline if baseline else 0.0

    def measured_uarch_rates(self) -> "tuple[float, float]":
        """(L1D miss rate, branch mispredict rate) actually observed by this
        app's sampled windows across all cores — the simulation's analog of
        reading hardware performance counters (used for Fig. 5)."""
        hits = misses = 0
        predictions = mispredictions = 0
        names = {thread.name for thread in self.threads}
        for core in self.kernel.cores:
            cache_stats = core.uarch.l1d.stats
            branch_stats = core.uarch.predictor.stats
            for name in names:
                hits += cache_stats.hits[name]
                misses += cache_stats.misses[name]
                predictions += branch_stats.predictions[name]
                mispredictions += branch_stats.mispredictions[name]
        miss_rate = misses / (hits + misses) if (hits + misses) else 0.0
        mispredict_rate = mispredictions / predictions if predictions else 0.0
        return miss_rate, mispredict_rate
