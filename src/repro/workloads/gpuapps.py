"""GPU workload profiles: the paper's five applications plus ``ubench``.

SSR-pattern assignments follow Section III/IV:

* ``bfs`` (SHOC) — a low SSR rate with faults clustered near the start of
  execution (first-touch of the frontier structures), so CPUs are
  disturbed briefly and can sleep afterwards.
* ``bpt`` (B+ tree) / ``sssp`` (Pannotia) — fault batches on the GPU
  kernel's critical path (blocking): CPU-side delays stall the GPU, which
  is why these suffer most from busy CPUs and from coalescing latency.
* ``spmv`` (SHOC) / ``xsbench`` — moderate, overlapped fault streams.
* ``ubench`` — the paper's microbenchmark: streams through memory taking a
  fault every few microseconds with plenty of independent parallel work
  (overlapped up to the hardware outstanding-SSR limit).  Its
  "performance" metric is SSR completion rate.
"""

from __future__ import annotations

from typing import Dict, List

from .profiles import GpuAppProfile

US = 1_000
MS = 1_000_000

GPU_PROFILES: Dict[str, GpuAppProfile] = {
    profile.name: profile
    for profile in (
        GpuAppProfile(
            name="bfs",
            compute_chunk_ns=2 * MS,
            faults_per_chunk=4.0,
            blocking=False,
            burst_faults=300,
            burst_spacing_ns=8 * US,
        ),
        GpuAppProfile(
            name="bpt",
            compute_chunk_ns=600 * US,
            faults_per_chunk=30.0,
            blocking=True,
            dependent_faults=12,
            fault_spacing_ns=6 * US,
        ),
        GpuAppProfile(
            name="spmv",
            compute_chunk_ns=1200 * US,
            faults_per_chunk=20.0,
            blocking=False,
        ),
        GpuAppProfile(
            name="sssp",
            compute_chunk_ns=400 * US,
            faults_per_chunk=44.0,
            blocking=True,
            dependent_faults=8,
            fault_spacing_ns=5 * US,
            active_ns=2400 * US,
            idle_ns=600 * US,
        ),
        GpuAppProfile(
            name="xsbench",
            compute_chunk_ns=1 * MS,
            faults_per_chunk=30.0,
            blocking=False,
        ),
        GpuAppProfile(
            name="ubench",
            compute_chunk_ns=12 * US,
            faults_per_chunk=1.0,
            blocking=False,
            fault_spacing_ns=0,
        ),
    )
}

GPU_NAMES: List[str] = ["bfs", "bpt", "spmv", "sssp", "xsbench", "ubench"]
#: The real applications (everything but the microbenchmark).
GPU_APP_NAMES: List[str] = ["bfs", "bpt", "spmv", "sssp", "xsbench"]


def gpu_app(name: str) -> GpuAppProfile:
    """Look up a GPU workload profile by name."""
    try:
        return GPU_PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown GPU workload {name!r}; known: {GPU_NAMES}") from None
