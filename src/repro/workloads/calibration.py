"""Solo steady-state calibration of CPU application profiles.

For each profile we measure (once, on fresh structures) its solo L1 miss
rate and branch misprediction rate, and derive the steady-state CPI used
to convert productive nanoseconds into retired instructions.  Interference
then shows up as *deviations* from these baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..config import CpuConfig
from ..uarch import AddressStreamSpec, BranchStreamSpec, measure_steady_state
from .profiles import CpuAppProfile

#: Address-space carving: each owner gets its own region.
USER_ADDRESS_STRIDE = 0x1_0000_0000
USER_ADDRESS_BASE = 0x10_0000_0000
USER_PC_STRIDE = 0x100_0000
USER_PC_BASE = 0x4000_0000


def address_spec_for(profile: CpuAppProfile, owner_index: int, line_size: int = 64) -> AddressStreamSpec:
    """The data-access stream spec of one of the profile's threads."""
    return AddressStreamSpec(
        base=USER_ADDRESS_BASE + owner_index * USER_ADDRESS_STRIDE,
        lines=profile.ws_lines,
        hot_fraction=profile.hot_fraction,
        hot_rate=profile.hot_rate,
        line_size=line_size,
    )


def branch_spec_for(profile: CpuAppProfile, owner_index: int) -> BranchStreamSpec:
    """The branch stream spec of one of the profile's threads."""
    return BranchStreamSpec(
        base_pc=USER_PC_BASE + owner_index * USER_PC_STRIDE,
        sites=profile.branch_sites,
        bias=profile.branch_bias,
    )


@dataclass(frozen=True)
class SteadyState:
    """A profile's solo baseline rates and derived CPI."""

    miss_rate: float
    mispredict_rate: float
    cpi: float

    def instructions_for_ns(self, ns: float, freq_ghz: float) -> float:
        """Instructions retired in ``ns`` of productive time."""
        return ns * freq_ghz / self.cpi


_CACHE: Dict[Tuple, SteadyState] = {}


def steady_state_for(profile: CpuAppProfile, cpu: CpuConfig) -> SteadyState:
    """Measure (or fetch) the solo steady state of ``profile`` under ``cpu``."""
    key = (profile, cpu.uarch, cpu.l1_miss_penalty_cycles, cpu.branch_mispredict_penalty_cycles, cpu.freq_ghz)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    miss_rate, mispredict_rate = measure_steady_state(
        address_spec_for(profile, owner_index=0, line_size=cpu.uarch.line_size),
        branch_spec_for(profile, owner_index=0),
        cpu.uarch,
    )
    cpi = (
        profile.base_cpi
        + profile.apki / 1000.0 * miss_rate * cpu.l1_miss_penalty_cycles
        + profile.bpki / 1000.0 * mispredict_rate * cpu.branch_mispredict_penalty_cycles
    )
    steady = SteadyState(miss_rate=miss_rate, mispredict_rate=mispredict_rate, cpi=cpi)
    _CACHE[key] = steady
    return steady
