"""Statistical profiles of the 13 PARSEC 2.1 benchmarks (4 threads, native).

The trait assignments encode the qualitative characterizations the paper
relies on (Section IV-A) plus well-known PARSEC behaviour:

* ``raytrace`` — dominantly single-threaded: helper threads are mostly
  idle, so idle cores absorb SSR work (least affected).
* ``fluidanimate`` — fine-grained barriers and a hot, L1-resident working
  set: both balance- and pollution-sensitive (most affected by sssp).
* ``facesim``/``streamcluster`` — barrier-synchronized with static
  partitioning; ``streamcluster`` threads never block, so they also delay
  SSR servicing the most (8% average GPU drop in the paper).
* ``x264`` — huge, well-trained branch footprint and a busy pipeline:
  predictor pollution is expensive (44% loss under the microbenchmark).
* ``canneal`` — a working set far beyond L1: it misses anyway, so extra
  pollution moves its miss rate relatively little.
* ``dedup``/``ferret``/``vips`` — pipeline-parallel with queue waits
  (think time), leaving scheduling gaps that absorb SSR work.
"""

from __future__ import annotations

from typing import Dict, List

from .profiles import CpuAppProfile

US = 1_000
MS = 1_000_000

PARSEC_PROFILES: Dict[str, CpuAppProfile] = {
    profile.name: profile
    for profile in (
        CpuAppProfile(
            name="blackscholes",
            base_cpi=0.8,
            apki=180.0,
            bpki=90.0,
            ws_lines=96,
            hot_fraction=0.5,
            hot_rate=0.9,
            branch_sites=48,
            branch_bias=0.97,
            chunk_ns=2 * MS,
        ),
        CpuAppProfile(
            name="bodytrack",
            base_cpi=1.0,
            apki=280.0,
            bpki=160.0,
            ws_lines=320,
            hot_fraction=0.25,
            hot_rate=0.8,
            branch_sites=320,
            branch_bias=0.92,
            chunk_ns=600 * US,
            barriers=True,
            think_ns=40 * US,
        ),
        CpuAppProfile(
            name="canneal",
            base_cpi=1.1,
            apki=340.0,
            bpki=110.0,
            ws_lines=4096,
            hot_fraction=0.05,
            hot_rate=0.35,
            branch_sites=128,
            branch_bias=0.9,
            chunk_ns=3 * MS,
        ),
        CpuAppProfile(
            name="dedup",
            base_cpi=1.0,
            apki=300.0,
            bpki=140.0,
            ws_lines=512,
            hot_fraction=0.2,
            hot_rate=0.7,
            branch_sites=256,
            branch_bias=0.92,
            chunk_ns=900 * US,
            think_ns=250 * US,
        ),
        CpuAppProfile(
            name="facesim",
            base_cpi=1.0,
            apki=330.0,
            bpki=120.0,
            ws_lines=420,
            hot_fraction=0.3,
            hot_rate=0.85,
            branch_sites=256,
            branch_bias=0.94,
            chunk_ns=450 * US,
            barriers=True,
        ),
        CpuAppProfile(
            name="ferret",
            base_cpi=1.0,
            apki=290.0,
            bpki=150.0,
            ws_lines=384,
            hot_fraction=0.2,
            hot_rate=0.75,
            branch_sites=384,
            branch_bias=0.91,
            chunk_ns=800 * US,
            think_ns=220 * US,
        ),
        CpuAppProfile(
            name="fluidanimate",
            base_cpi=0.9,
            apki=380.0,
            bpki=130.0,
            ws_lines=360,
            hot_fraction=0.6,
            hot_rate=0.92,
            branch_sites=192,
            branch_bias=0.95,
            chunk_ns=350 * US,
            barriers=True,
        ),
        CpuAppProfile(
            name="freqmine",
            base_cpi=1.0,
            apki=310.0,
            bpki=170.0,
            ws_lines=448,
            hot_fraction=0.2,
            hot_rate=0.75,
            branch_sites=448,
            branch_bias=0.9,
            chunk_ns=1500 * US,
        ),
        CpuAppProfile(
            name="raytrace",
            thread_duty=(1.0, 0.06, 0.06, 0.06),
            base_cpi=0.9,
            apki=260.0,
            bpki=140.0,
            ws_lines=288,
            hot_fraction=0.3,
            hot_rate=0.88,
            branch_sites=224,
            branch_bias=0.94,
            chunk_ns=2 * MS,
        ),
        CpuAppProfile(
            name="streamcluster",
            base_cpi=1.1,
            apki=380.0,
            bpki=100.0,
            ws_lines=520,
            hot_fraction=0.25,
            hot_rate=0.8,
            branch_sites=96,
            branch_bias=0.95,
            chunk_ns=500 * US,
            barriers=True,
        ),
        CpuAppProfile(
            name="swaptions",
            base_cpi=0.8,
            apki=200.0,
            bpki=120.0,
            ws_lines=128,
            hot_fraction=0.4,
            hot_rate=0.9,
            branch_sites=96,
            branch_bias=0.96,
            chunk_ns=2500 * US,
        ),
        CpuAppProfile(
            name="vips",
            base_cpi=1.0,
            apki=290.0,
            bpki=150.0,
            ws_lines=400,
            hot_fraction=0.25,
            hot_rate=0.8,
            branch_sites=320,
            branch_bias=0.92,
            chunk_ns=1 * MS,
            think_ns=120 * US,
        ),
        CpuAppProfile(
            name="x264",
            base_cpi=0.9,
            apki=360.0,
            bpki=260.0,
            ws_lines=440,
            hot_fraction=0.55,
            hot_rate=0.9,
            branch_sites=960,
            branch_bias=0.95,
            chunk_ns=700 * US,
            barriers=True,
            think_ns=60 * US,
        ),
    )
}

PARSEC_NAMES: List[str] = sorted(PARSEC_PROFILES)


def parsec(name: str) -> CpuAppProfile:
    """Look up a PARSEC profile by name."""
    try:
        return PARSEC_PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown PARSEC benchmark {name!r}; known: {PARSEC_NAMES}") from None
