"""Statistical workload profiles.

A :class:`CpuAppProfile` captures the traits that govern a CPU
application's *sensitivity* to SSR interference (the paper names these
explicitly: raytrace is mostly serial so idle cores absorb SSRs;
fluidanimate's high L1 hit rate makes pollution expensive; barrier apps
suffer when one core is overloaded).  A :class:`GpuAppProfile` captures an
accelerator workload's SSR *pattern* (rate, clustering, blocking), which
the paper identifies as the other axis of the interference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class CpuAppProfile:
    """Statistical model of a multithreaded CPU application."""

    name: str
    #: Worker thread count (PARSEC runs with 4 threads in the paper).
    threads: int = 4
    #: Per-thread duty cycle: fraction of wall time the thread wants to
    #: compute (raytrace's helper threads are mostly idle).
    thread_duty: Tuple[float, ...] = (1.0, 1.0, 1.0, 1.0)
    #: Cycles per instruction with a perfect L1/predictor.
    base_cpi: float = 0.9
    #: Data-cache accesses per kilo-instruction.
    apki: float = 300.0
    #: Branches per kilo-instruction.
    bpki: float = 150.0
    #: Working-set size in cache lines (the modeled L1 holds 512).
    ws_lines: int = 300
    hot_fraction: float = 0.2
    hot_rate: float = 0.8
    #: Static branch sites (predictor footprint) and predictability.
    branch_sites: int = 256
    branch_bias: float = 0.93
    #: Productive nanoseconds between synchronization points.
    chunk_ns: int = 400_000
    #: Whether threads barrier-synchronize each chunk (balance-sensitive).
    barriers: bool = False
    #: Off-CPU time after each chunk (pipeline/IO waits).
    think_ns: int = 0

    def __post_init__(self):
        if self.threads < 1:
            raise ValueError(f"{self.name}: threads must be >= 1")
        if len(self.thread_duty) < self.threads:
            raise ValueError(f"{self.name}: thread_duty shorter than threads")
        if not all(0.0 < duty <= 1.0 for duty in self.thread_duty):
            raise ValueError(f"{self.name}: duties must be in (0, 1]")


@dataclass(frozen=True)
class GpuAppProfile:
    """Statistical model of a GPU workload and its SSR pattern."""

    name: str
    #: GPU compute per chunk (progress unit).
    compute_chunk_ns: int
    #: Mean page faults issued after each chunk (0 => no SSRs).
    faults_per_chunk: float
    #: Faults gate the next chunk (on the GPU kernel's critical path).
    blocking: bool
    #: Of the per-chunk faults, how many are *serially dependent*
    #: (pointer-chasing: the next access cannot issue until the previous
    #: fault resolves).  These put full SSR round-trip latency on the GPU
    #: kernel's critical path, which is what makes blocking apps sensitive
    #: to coalescing delay and bottom-half scheduling latency (Fig. 6d/6f).
    dependent_faults: int = 0
    #: Pacing between faults within a burst (device fault-issue bandwidth).
    fault_spacing_ns: int = 8_000
    #: Faults clustered near the start of execution (bfs-style).
    burst_faults: int = 0
    burst_spacing_ns: int = 4_000
    #: Duty-cycle phases: compute for active_ns, then idle for idle_ns
    #: (0 disables phasing — continuous execution).
    active_ns: int = 0
    idle_ns: int = 0
    #: Host runtime (HSA) polling thread behaviour.
    host_poll_period_ns: int = 800_000
    host_poll_burst_ns: int = 150_000
    ssr_kind: str = "page_fault"

    @property
    def mean_fault_interval_ns(self) -> float:
        """Average spacing between faults while actively computing."""
        if self.faults_per_chunk <= 0:
            return float("inf")
        return self.compute_chunk_ns / self.faults_per_chunk

    def without_ssrs(self) -> "GpuAppProfile":
        """The same workload with pinned memory (no faults)."""
        from dataclasses import replace

        return replace(self, faults_per_chunk=0.0, burst_faults=0)
