"""Workload models: PARSEC CPU profiles and GPU SSR-generating apps."""

from .barrier import Barrier
from .calibration import (
    SteadyState,
    address_spec_for,
    branch_spec_for,
    steady_state_for,
)
from .cpuapp import CpuApp, CpuAppThread
from .gpuapps import GPU_APP_NAMES, GPU_NAMES, GPU_PROFILES, gpu_app
from .parsec import PARSEC_NAMES, PARSEC_PROFILES, parsec
from .profiles import CpuAppProfile, GpuAppProfile

__all__ = [
    "Barrier",
    "CpuApp",
    "CpuAppProfile",
    "CpuAppThread",
    "GPU_APP_NAMES",
    "GPU_NAMES",
    "GPU_PROFILES",
    "GpuAppProfile",
    "PARSEC_NAMES",
    "PARSEC_PROFILES",
    "SteadyState",
    "address_spec_for",
    "branch_spec_for",
    "gpu_app",
    "parsec",
    "steady_state_for",
]
