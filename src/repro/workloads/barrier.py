"""A reusable cyclic barrier for multithreaded CPU applications.

Barrier applications (fluidanimate, facesim, streamcluster) are the
paper's balance-sensitive workloads: if SSR handling slows one core, every
thread waits at the next barrier, so localized interference becomes global
slowdown (this is why interrupt steering can *hurt* such apps, Fig. 6a).
"""

from __future__ import annotations

from typing import List

from ..sim import Environment, Event


class Barrier:
    """A cyclic barrier over ``parties`` participants."""

    def __init__(self, env: Environment, parties: int):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.env = env
        self.parties = parties
        self._arrived = 0
        self._generation_event = env.event()
        #: Completed barrier rounds.
        self.generations = 0

    @property
    def waiting(self) -> int:
        """Participants currently blocked at the barrier."""
        return self._arrived

    def arrive(self) -> Event:
        """Arrive at the barrier; the returned event fires when all have.

        The last arriver's event fires too (at the same instant).
        """
        event = self._generation_event
        self._arrived += 1
        if self._arrived >= self.parties:
            self._arrived = 0
            self.generations += 1
            self._generation_event = self.env.event()
            event.succeed(self.generations)
        return event
