"""The ``hiss.postmortem/1`` bundle: build, validate, store.

A postmortem bundle is everything an engineer needs to work an incident
*after* the moment is gone, in one JSON file: the trigger that fired,
the build that was running (version + code fingerprint + SystemConfig),
the flight ring's tail of diagnostics, lifecycle trace documents for the
implicated jobs, the top-K blame-ledger rows from any profiled runs,
the ``/metrics`` snapshot, the active-alert document, and a trailing
rollup window.  Every section is data the daemon already had — capture
copies, it never recomputes — and every timestamp is an event timestamp,
so rendering a bundle twice is byte-identical.

:class:`PostmortemStore` writes bundles atomically (temp file +
``os.replace`` in the target directory, conventionally next to the ops
log) with keep-N retention: the oldest bundle is evicted whole, the same
whole-generation policy as ops-log rotation — a reader never sees a torn
bundle.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Optional

__all__ = [
    "POSTMORTEM_SCHEMA",
    "PostmortemStore",
    "blame_top_k",
    "build_postmortem",
    "list_bundles",
    "postmortem_id",
    "validate_postmortem",
]

POSTMORTEM_SCHEMA = "hiss.postmortem/1"

#: Blame-ledger rows carried per bundle (largest charges first).
DEFAULT_BLAME_TOP_K = 20

#: Bundles kept on disk before the oldest is evicted.
DEFAULT_KEEP = 20


def postmortem_id(sequence: int, kind: str) -> str:
    """Stable bundle id: capture sequence + trigger kind."""
    return f"pm-{sequence:06d}-{kind}"


def blame_top_k(
    profile_docs: List[Dict[str, Any]], k: int = DEFAULT_BLAME_TOP_K
) -> List[Dict[str, Any]]:
    """Top-``k`` ledger rows across run profile documents, by charge.

    Each row is the ledger entry (``ssr``/``channel``/``victim``/``app``/
    ``core``/``ns``) plus the run it came from; ties break on the
    attribution key so the selection is deterministic.
    """
    rows: List[Dict[str, Any]] = []
    for doc in profile_docs:
        ledger = doc.get("ledger") if isinstance(doc, dict) else None
        entries = ledger.get("entries") if isinstance(ledger, dict) else None
        for entry in entries or []:
            row = dict(entry)
            row["run"] = doc.get("run")
            rows.append(row)
    rows.sort(
        key=lambda r: (
            -float(r.get("ns", 0)),
            str(r.get("run", "")),
            str(r.get("ssr", "")),
            str(r.get("channel", "")),
            str(r.get("victim", "")),
            r.get("core", -1),
        )
    )
    return rows[:k]


def build_postmortem(
    trigger: Dict[str, Any],
    captured_s: float,
    sequence: int,
    config: Dict[str, Any],
    flight_ring: Dict[str, Any],
    metrics: Optional[Dict[str, Any]] = None,
    alerts: Optional[Dict[str, Any]] = None,
    rollup_window: Optional[Dict[str, Any]] = None,
    jobs: Optional[List[Dict[str, Any]]] = None,
    blame: Optional[List[Dict[str, Any]]] = None,
    triggers: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Assemble one ``hiss.postmortem/1`` document (pure; no I/O)."""
    return {
        "schema": POSTMORTEM_SCHEMA,
        "id": postmortem_id(sequence, trigger["kind"]),
        "sequence": sequence,
        "captured_s": captured_s,
        "trigger": dict(trigger),
        "triggers": list(triggers or []),
        "config": dict(config),
        "flight_ring": flight_ring,
        "metrics": metrics,
        "alerts": alerts,
        "rollup_window": rollup_window,
        "jobs": list(jobs or []),
        "blame": {"top_k": DEFAULT_BLAME_TOP_K, "rows": list(blame or [])},
    }


def validate_postmortem(document: Any) -> List[str]:
    """Validate a postmortem bundle; returns a list of problems.

    An empty list means the document is well-formed: the schema matches,
    the trigger carries its identity and event time, the flight ring's
    entries are shaped records whose weights conserve the append count,
    and each implicated-job section is a span document.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, expected dict"]
    schema = document.get("schema")
    if schema != POSTMORTEM_SCHEMA:
        return [f"unknown schema {schema!r} (expected {POSTMORTEM_SCHEMA})"]
    for field in ("id", "sequence", "captured_s", "trigger", "config", "flight_ring"):
        if field not in document:
            problems.append(f"missing field {field!r}")
    trigger = document.get("trigger")
    if not isinstance(trigger, dict):
        problems.append("trigger: not a dict")
    else:
        for field in ("name", "kind", "at_s"):
            if field not in trigger:
                problems.append(f"trigger: missing field {field!r}")
    sequence = document.get("sequence")
    kind = (trigger or {}).get("kind") if isinstance(trigger, dict) else None
    if isinstance(sequence, int) and isinstance(kind, str):
        expected = postmortem_id(sequence, kind)
        if document.get("id") != expected:
            problems.append(
                f"id {document.get('id')!r} != {expected!r} (sequence/kind)"
            )
    config = document.get("config")
    if isinstance(config, dict):
        for field in ("version", "code_fingerprint", "schema_digest", "system"):
            if field not in config:
                problems.append(f"config: missing field {field!r}")
    elif config is not None:
        problems.append("config: not a dict")
    ring = document.get("flight_ring")
    if not isinstance(ring, dict) or not isinstance(ring.get("entries"), list):
        problems.append("flight_ring: entries missing")
    else:
        weight = 0
        for position, entry in enumerate(ring["entries"]):
            where = f"flight_ring.entries[{position}]"
            if not isinstance(entry, dict):
                problems.append(f"{where}: not a dict")
                continue
            for field in ("seq", "ts_s", "first_ts_s", "kind", "weight", "data"):
                if field not in entry:
                    problems.append(f"{where}: missing field {field!r}")
            if entry.get("weight", 0) < 1:
                problems.append(f"{where}: weight must be >= 1")
            weight += entry.get("weight", 0)
        appended = ring.get("appended")
        if isinstance(appended, int) and weight > appended:
            problems.append(
                f"flight_ring: entry weights {weight} exceed appended {appended}"
            )
    for position, job in enumerate(document.get("jobs") or []):
        where = f"jobs[{position}]"
        if not isinstance(job, dict):
            problems.append(f"{where}: not a dict")
        elif not isinstance(job.get("spans"), list):
            problems.append(f"{where}: spans missing (not a trace document)")
    blame = document.get("blame")
    if isinstance(blame, dict):
        for position, row in enumerate(blame.get("rows") or []):
            where = f"blame.rows[{position}]"
            if not isinstance(row, dict) or "ns" not in row or "channel" not in row:
                problems.append(f"{where}: missing ns/channel")
    elif blame is not None:
        problems.append("blame: not a dict")
    metrics = document.get("metrics")
    if metrics is not None and (
        not isinstance(metrics, dict) or not isinstance(metrics.get("counters"), dict)
    ):
        problems.append("metrics: counters missing")
    return problems


def list_bundles(directory: str) -> List[Dict[str, Any]]:
    """Summaries of the ``pm-*.json`` bundles under ``directory``.

    Pure read side — never creates the directory; an absent one is an
    empty list, matching a daemon that has not captured anything yet.
    """
    try:
        names = sorted(
            name
            for name in os.listdir(directory)
            if name.startswith("pm-") and name.endswith(".json")
        )
    except OSError:
        return []
    rows: List[Dict[str, Any]] = []
    for name in names:
        path = os.path.join(directory, name)
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            continue
        trigger = doc.get("trigger") or {}
        rows.append(
            {
                "id": doc.get("id", name[: -len(".json")]),
                "captured_s": doc.get("captured_s"),
                "trigger": trigger.get("name"),
                "kind": trigger.get("kind"),
                "detail": trigger.get("detail"),
                "jobs": len(doc.get("jobs") or []),
                "ring_entries": len((doc.get("flight_ring") or {}).get("entries") or []),
                "bytes": os.path.getsize(path),
            }
        )
    return rows


_SAFE_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
)


class PostmortemStore:
    """Atomic keep-N bundle storage next to the ops log."""

    def __init__(self, directory: str, keep: int = DEFAULT_KEEP):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = directory
        self.keep = keep
        self._lock = threading.Lock()
        self.written = 0
        self.evicted = 0
        os.makedirs(directory, exist_ok=True)

    def __len__(self) -> int:
        return len(self.paths())

    def paths(self) -> List[str]:
        """Bundle paths on disk, oldest first (id order = capture order)."""
        try:
            names = sorted(
                name
                for name in os.listdir(self.directory)
                if name.startswith("pm-") and name.endswith(".json")
            )
        except OSError:
            return []
        return [os.path.join(self.directory, name) for name in names]

    def write(self, document: Dict[str, Any]) -> str:
        """Atomically persist one bundle; returns its path.

        The write lands in a same-directory temp file first, then
        ``os.replace``s into place — a crash mid-write leaves the prior
        state intact and no reader ever sees a partial bundle.  Bundles
        beyond ``keep`` are evicted oldest-first, whole.
        """
        name = f"{document['id']}.json"
        path = os.path.join(self.directory, name)
        payload = json.dumps(document, sort_keys=True, default=str)
        with self._lock:
            tmp = f"{path}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            self.written += 1
            stored = self.paths()
            while len(stored) > self.keep:
                os.remove(stored.pop(0))
                self.evicted += 1
        return path

    def index(self) -> List[Dict[str, Any]]:
        """Summary rows for every stored bundle (``GET /v1/postmortems``)."""
        return list_bundles(self.directory)

    def load(self, pm_id: str) -> Optional[Dict[str, Any]]:
        """One full bundle by id (None when absent or the id is unsafe)."""
        if not pm_id or not set(pm_id) <= _SAFE_ID_CHARS or ".." in pm_id:
            return None
        path = os.path.join(self.directory, f"{pm_id}.json")
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None
