"""The live flight recorder: ops-stream tee, trigger evaluation, capture.

A :class:`FlightRecorder` sits on the ops log's tee hook: every record
the daemon logs (and, with the log disabled, would have logged) lands in
:meth:`observe`, which appends it to the :class:`~repro.flight.ring.FlightRing`
and evaluates the trigger predicates against it.  When one fires, a
capture request is queued for the recorder's own thread — captures read
service-wide state (SLO engine, job store, metrics) and must never run
under the locks an emitting subsystem holds while logging, so the
trigger path only enqueues.  ``stop()`` drains the queue synchronously;
manual triggers capture on the calling (HTTP) thread, which holds no
subsystem locks, and return the finished bundle.

The scheduler additionally feeds in-sim diagnostics through
:meth:`note_run` — the tail of each executed run's event stream and, for
profiled runs, the tail of its :class:`~repro.profiling.sampler.SimSampler`
frames — so a bundle's ring shows what the simulator was doing, not just
what the service logged about it.

Everything is clocked by event timestamps (the ``ts`` the ops record
carries, the run's wall window), never by a clock read of this module's
own, so identical event streams produce identical rings and suppression
decisions.
"""

from __future__ import annotations

import threading
import traceback
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence

from .bundle import PostmortemStore, blame_top_k, build_postmortem
from .ring import DEFAULT_RING_CAPACITY, FlightRing
from .triggers import (
    KIND_JOB_LATENCY,
    KIND_LEDGER_INVARIANT,
    KIND_MANUAL,
    KIND_SLO_ALERT,
    KIND_WORKER_CRASH,
    TriggerSpec,
    TriggerState,
)

__all__ = ["FlightRecorder"]

#: In-sim events kept per run tail entry.
_SIM_TAIL_EVENTS = 16
#: Sampler frames kept per profiled-run tail entry.
_SAMPLER_TAIL_ROWS = 8
#: Implicated jobs attached when the trigger names none (most recent
#: terminal jobs at capture time).
_FALLBACK_JOBS = 3
#: Trailing rollup window carried in a bundle (seconds of event time).
_ROLLUP_WINDOW_S = 300.0


class FlightRecorder:
    """Always-on diagnostics ring + triggered postmortem capture."""

    def __init__(
        self,
        store: Optional[PostmortemStore],
        triggers: Sequence[TriggerSpec] = (),
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        metrics=None,
        ops_log=None,
    ):
        self.ring = FlightRing(ring_capacity)
        self.store = store
        self.metrics = metrics
        self.ops_log = ops_log
        self.states = [TriggerState(spec) for spec in triggers]
        self._by_kind: Dict[str, List[TriggerState]] = {}
        for state in self.states:
            self._by_kind.setdefault(state.spec.kind, []).append(state)
        #: Reentrant: a capture's own ``postmortem.written`` ops event
        #: tees back into :meth:`observe` on the same thread.
        self._lock = threading.RLock()
        self._queue: Deque[Dict[str, Any]] = deque()
        self._wake = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._service = None
        self._sequence = 0
        self.captured = 0
        self.capture_errors = 0
        self._last_pool_crashes = 0
        self._last: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Lifecycle (owned by HissService.start/stop)
    # ------------------------------------------------------------------
    def attach(self, service) -> None:
        self._service = service

    def start(self, service) -> None:
        self.attach(service)
        if self._thread is not None:
            return

        def _loop() -> None:
            while True:
                self._wake.wait(timeout=0.2)
                self._wake.clear()
                self._drain_queue()
                if self._stop.is_set() and not self._queue:
                    return

        self._thread = threading.Thread(target=_loop, name="hiss-flight", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Finish every queued capture, then retire the thread."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._drain_queue()  # no thread (in-process use): capture inline

    def flush(self, timeout_s: float = 10.0) -> bool:
        """Block until queued captures are written (tests, smoke checks)."""
        import time as _time

        if self._thread is None:
            self._drain_queue()
            return True
        deadline = _time.monotonic() + timeout_s
        while True:
            self._wake.set()
            if not self._queue and self._idle.is_set():
                return True
            if _time.monotonic() >= deadline:
                return False
            _time.sleep(0.01)

    def _drain_queue(self) -> None:
        while True:
            # Drop idle *before* the pop: flush() must never observe an
            # empty queue + idle flag while a capture is still running.
            self._idle.clear()
            try:
                request = self._queue.popleft()
            except IndexError:
                self._idle.set()
                return
            self._capture(request)

    # ------------------------------------------------------------------
    # The tee: every ops record lands here
    # ------------------------------------------------------------------
    def observe(self, record: Dict[str, Any]) -> None:
        """Ring-append one ops record and evaluate the trigger predicates."""
        event = record.get("event", "?")
        ts_s = float(record.get("ts", 0.0))
        with self._lock:
            self.ring.append(ts_s, event, record)
            if event.startswith("postmortem."):
                return  # our own capture events never re-trigger
            if event == "slo.alert":
                self._maybe_fire(
                    KIND_SLO_ALERT, ts_s, event,
                    detail=f"slo {record.get('slo', '?')} firing "
                    f"(burn {record.get('burn_fast', 0)}x/{record.get('burn_slow', 0)}x)",
                )
            elif event in ("job.done", "job.failed"):
                job_id = record.get("job")
                e2e_s = record.get("e2e_s")
                if e2e_s is not None:
                    for state in self._by_kind.get(KIND_JOB_LATENCY, ()):
                        if e2e_s >= state.spec.threshold_s:
                            self._maybe_fire(
                                KIND_JOB_LATENCY, ts_s, event,
                                detail=f"job {job_id} e2e {e2e_s:.3f}s >= "
                                f"{state.spec.threshold_s:g}s",
                                jobs=[job_id] if job_id else [],
                                states=[state],
                            )
                if event == "job.done" and self._by_kind.get(KIND_LEDGER_INVARIANT):
                    self._check_ledger(ts_s, event, job_id)
            elif event == "batch.executed":
                self._check_pool(ts_s, event)

    def note_invariant_violation(
        self, ts_s: float, detail: str, job_id: Optional[str] = None
    ) -> None:
        """Report a ledger-reconciliation failure found outside the tee."""
        with self._lock:
            self.ring.append(ts_s, "ledger.violation", {"detail": detail})
            self._maybe_fire(
                KIND_LEDGER_INVARIANT, ts_s, "ledger.violation", detail=detail,
                jobs=[job_id] if job_id else [],
            )

    def note_run(self, info: Dict[str, Any], events, profile_doc) -> None:
        """Scheduler hook: ring the tail of one executed run's diagnostics."""
        ts_s = float(info.get("wall_end_s") or 0.0)
        with self._lock:
            tail = {
                "run": info.get("run"),
                "worker_pid": info.get("worker_pid"),
                "wall_start_s": info.get("wall_start_s"),
                "wall_end_s": info.get("wall_end_s"),
                "events_total": len(events) if events is not None else 0,
                "events": list(events[-_SIM_TAIL_EVENTS:]) if events else [],
            }
            self.ring.append(ts_s, "sim.tail", tail)
            samples = (profile_doc or {}).get("samples")
            if isinstance(samples, dict) and samples.get("rows"):
                self.ring.append(
                    ts_s,
                    "sampler.tail",
                    {
                        "run": info.get("run"),
                        "interval_ns": samples.get("interval_ns"),
                        "columns": samples.get("columns"),
                        "rows_total": len(samples["rows"]),
                        "rows": list(samples["rows"][-_SAMPLER_TAIL_ROWS:]),
                    },
                )

    # ------------------------------------------------------------------
    # Trigger evaluation (lock held)
    # ------------------------------------------------------------------
    def _check_pool(self, ts_s: float, event: str) -> None:
        if not self._by_kind.get(KIND_WORKER_CRASH):
            return
        from ..core.pool import shared_pool_stats

        stats = shared_pool_stats()
        crashes = int(stats.get("crashed_workers", 0))
        delta = crashes - self._last_pool_crashes
        self._last_pool_crashes = crashes
        if delta > 0:
            self._maybe_fire(
                KIND_WORKER_CRASH, ts_s, event,
                detail=f"{delta} pool worker(s) crashed "
                f"(lifetime {crashes}, spawned {int(stats.get('spawned_workers', 0))})",
            )

    def _check_ledger(self, ts_s: float, event: str, job_id: Optional[str]) -> None:
        service = self._service
        if service is None or not job_id:
            return
        job = service.store.get(job_id)
        if job is None or not job.profiles:
            return
        from ..profiling import validate_profile

        problems: List[str] = []
        for doc in job.profiles:
            problems.extend(validate_profile(doc))
        if problems:
            self._maybe_fire(
                KIND_LEDGER_INVARIANT, ts_s, event,
                detail=f"job {job_id} attribution reconciliation failed: "
                f"{problems[0]} (+{len(problems) - 1} more)"
                if len(problems) > 1
                else f"job {job_id} attribution reconciliation failed: {problems[0]}",
                jobs=[job_id],
            )

    def _maybe_fire(
        self,
        kind: str,
        ts_s: float,
        event: str,
        detail: str,
        jobs: Optional[List[str]] = None,
        states: Optional[List[TriggerState]] = None,
    ) -> None:
        for state in states if states is not None else self._by_kind.get(kind, ()):
            if not state.should_fire(ts_s):
                if self.metrics is not None:
                    self.metrics.counter("postmortem.suppressed").inc()
                continue
            if self.metrics is not None:
                self.metrics.counter("postmortem.triggered").inc()
            self._queue.append(
                {
                    "name": state.spec.name,
                    "kind": kind,
                    "at_s": ts_s,
                    "event": event,
                    "detail": detail,
                    "jobs": list(jobs or []),
                }
            )
            self._wake.set()

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    def trigger_manual(
        self,
        reason: str = "operator request",
        jobs: Sequence[str] = (),
        at_s: Optional[float] = None,
    ) -> Optional[Dict[str, Any]]:
        """``POST /v1/postmortems/trigger``: capture now, synchronously.

        ``at_s`` is the request's receive time (the endpoint's one clock
        read); everything below it stays event-clocked.  Returns the
        finished bundle, or None when the manual trigger is debounced/
        rate-limited (or not configured).
        """
        states = self._by_kind.get(KIND_MANUAL, ())
        if not states:
            return None
        state = states[0]
        if at_s is None:
            import time as _time

            at_s = _time.time()
        ts_s = at_s
        with self._lock:
            if not state.should_fire(ts_s):
                if self.metrics is not None:
                    self.metrics.counter("postmortem.suppressed").inc()
                return None
            if self.metrics is not None:
                self.metrics.counter("postmortem.triggered").inc()
        request = {
            "name": state.spec.name,
            "kind": KIND_MANUAL,
            "at_s": ts_s,
            "event": "postmortems.trigger",
            "detail": reason,
            "jobs": list(jobs),
        }
        return self._capture(request)

    def _capture(self, trigger: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Build and persist one bundle; never raises into the caller."""
        try:
            return self._capture_inner(trigger)
        except Exception:
            self.capture_errors += 1
            if self.metrics is not None:
                self.metrics.counter("postmortem.errors").inc()
            if self.ops_log is not None:
                self.ops_log.log(
                    "postmortem.error",
                    trigger=trigger.get("name"),
                    detail=traceback.format_exc(limit=5),
                )
            return None

    def _capture_inner(self, trigger: Dict[str, Any]) -> Dict[str, Any]:
        service = self._service
        with self._lock:
            sequence = self._sequence
            self._sequence += 1
            ring_doc = self.ring.as_dict()
            trigger_docs = [state.as_dict() for state in self.states]

        jobs_section: List[Dict[str, Any]] = []
        blame_rows: List[Dict[str, Any]] = []
        metrics_doc = alerts_doc = rollup_doc = None
        if service is not None:
            from ..service.obs import build_trace_document

            implicated = []
            for job_id in trigger.get("jobs") or []:
                job = service.store.get(job_id)
                if job is not None:
                    implicated.append(job)
            if not implicated:
                terminal = [
                    job for job in service.store.jobs() if job.finished_s is not None
                ]
                terminal.sort(key=lambda j: j.finished_s, reverse=True)
                implicated = terminal[:_FALLBACK_JOBS]
            profile_docs: List[Dict[str, Any]] = []
            for job in implicated:
                jobs_section.append(build_trace_document(job))
                profile_docs.extend(job.profiles)
            blame_rows = blame_top_k(profile_docs)
            metrics_doc = service.metrics_document()
            engine = getattr(service, "slo_engine", None)
            if engine is not None:
                alerts_doc = engine.alerts_document()
                rollup_doc = engine.rollup_window(_ROLLUP_WINDOW_S)

        document = build_postmortem(
            trigger=trigger,
            captured_s=trigger["at_s"],
            sequence=sequence,
            config=self._config_section(),
            flight_ring=ring_doc,
            metrics=metrics_doc,
            alerts=alerts_doc,
            rollup_window=rollup_doc,
            jobs=jobs_section,
            blame=blame_rows,
            triggers=trigger_docs,
        )
        path = None
        if self.store is not None:
            path = self.store.write(document)
        self.captured += 1
        self._last = {
            "id": document["id"],
            "captured_s": document["captured_s"],
            "trigger": trigger["name"],
            "kind": trigger["kind"],
        }
        if self.metrics is not None:
            self.metrics.counter("postmortem.captured").inc()
        if self.ops_log is not None:
            self.ops_log.log(
                "postmortem.written",
                id=document["id"],
                trigger=trigger["name"],
                kind=trigger["kind"],
                detail=trigger.get("detail"),
                path=path,
                jobs=[j.get("job_id") for j in jobs_section],
            )
        return document

    @staticmethod
    def _config_section() -> Dict[str, Any]:
        import json as _json

        import repro
        from ..config import SystemConfig
        from ..core.runcache import code_fingerprint

        config = SystemConfig()
        return {
            "version": repro.__version__,
            "code_fingerprint": code_fingerprint(),
            "schema_digest": config.schema_digest(),
            "label": config.label,
            "system": _json.loads(config.stable_json()),
        }

    # ------------------------------------------------------------------
    # Read side (endpoints, /metrics, hiss-top)
    # ------------------------------------------------------------------
    def gauges(self) -> Dict[str, float]:
        """``postmortem.*`` gauges merged into the service ``/metrics``."""
        with self._lock:
            suppressed = sum(state.suppressed for state in self.states)
            return {
                "postmortem.captured": float(self.captured),
                "postmortem.errors": float(self.capture_errors),
                "postmortem.stored": float(len(self.store)) if self.store else 0.0,
                "postmortem.suppressed": float(suppressed),
                "postmortem.triggers": float(len(self.states)),
                "postmortem.queue_depth": float(len(self._queue)),
                "postmortem.ring_entries": float(len(self.ring)),
                "postmortem.ring_appended": float(self.ring.appended),
                "postmortem.ring_decimations": float(self.ring.decimations),
            }

    def document(self) -> Dict[str, Any]:
        """The ``postmortems`` section of ``GET /v1/ops``."""
        with self._lock:
            return {
                "enabled": True,
                "directory": self.store.directory if self.store else None,
                "keep": self.store.keep if self.store else None,
                "stored": len(self.store) if self.store else 0,
                "captured": self.captured,
                "errors": self.capture_errors,
                "suppressed": sum(state.suppressed for state in self.states),
                "ring": {
                    "entries": len(self.ring),
                    "appended": self.ring.appended,
                    "decimations": self.ring.decimations,
                },
                "triggers": [state.as_dict() for state in self.states],
                "last": dict(self._last) if self._last else None,
            }
