"""Deterministic text and single-file HTML rendering for postmortems.

Same contract as :mod:`repro.obsd.report` and
:mod:`repro.profiling.report`: zero external dependencies (inline CSS,
server-side inline SVG), the raw bundle JSON embedded in a ``<script
type="application/json">`` block so tooling can recover the exact data
from the page alone, and — because a bundle is a closed capture and
every renderer below is a pure function of it — byte-identical output
for the same bundle, run to run.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional

__all__ = ["postmortem_text", "render_postmortem_html", "write_html"]


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} µs"


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f} µs"
    return f"{ns:.0f} ns"


def _job_rows(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    rows = []
    for trace in doc.get("jobs") or []:
        root = next(
            (s for s in trace.get("spans", []) if s.get("span_id") == "root"), None
        )
        args = (root or {}).get("args", {})
        rows.append(
            {
                "job_id": trace.get("job_id"),
                "trace_id": trace.get("trace_id"),
                "state": trace.get("state"),
                "e2e_s": (root or {}).get("duration_s"),
                "planned_runs": args.get("planned_runs"),
                "runs_executed": args.get("runs_executed"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def postmortem_text(doc: Dict[str, Any]) -> str:
    """Aligned-text summary of one ``hiss.postmortem/1`` bundle."""
    trigger = doc.get("trigger") or {}
    ring = doc.get("flight_ring") or {}
    entries = ring.get("entries") or []
    config = doc.get("config") or {}
    lines: List[str] = []
    lines.append(
        f"postmortem {doc.get('id', '?')} @ {doc.get('captured_s', 0.0):.3f} "
        f"— trigger {trigger.get('name', '?')} ({trigger.get('kind', '?')})"
    )
    if trigger.get("detail"):
        lines.append(f"  {trigger['detail']}")
    lines.append(
        f"build: v{config.get('version', '?')} "
        f"fingerprint {str(config.get('code_fingerprint', '?'))[:12]} "
        f"schema {str(config.get('schema_digest', '?'))[:12]}"
    )
    lines.append(
        f"ring: {len(entries)} entries representing {ring.get('appended', 0)} "
        f"records ({ring.get('decimations', 0)} decimations)"
    )
    kinds: Dict[str, int] = {}
    for entry in entries:
        kinds[entry.get("kind", "?")] = (
            kinds.get(entry.get("kind", "?"), 0) + entry.get("weight", 1)
        )
    if kinds:
        lines.append(
            "  " + "  ".join(f"{kind}={kinds[kind]}" for kind in sorted(kinds))
        )
    jobs = _job_rows(doc)
    if jobs:
        lines.append("")
        header = f"{'implicated job':<26} {'state':<10} {'runs':>5} {'e2e':>12}"
        lines.append(header)
        lines.append("-" * len(header))
        for row in jobs:
            lines.append(
                f"{str(row['job_id']):<26} {str(row['state']):<10} "
                f"{row['planned_runs'] if row['planned_runs'] is not None else '-':>5} "
                f"{_fmt_s(row['e2e_s']):>12}"
            )
    blame = (doc.get("blame") or {}).get("rows") or []
    if blame:
        lines.append("")
        header = (
            f"{'blame (top rows)':<22} {'channel':<12} {'victim':<14} "
            f"{'core':>4} {'charge':>12}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in blame[:10]:
            lines.append(
                f"{str(row.get('ssr', '?')):<22} {str(row.get('channel', '?')):<12} "
                f"{str(row.get('victim', '?')):<14} {row.get('core', '-'):>4} "
                f"{_fmt_ns(float(row.get('ns', 0))):>12}"
            )
    alerts = doc.get("alerts")
    if alerts:
        firing = alerts.get("firing") or []
        lines.append("")
        lines.append(
            f"alerts: {len(firing)} firing"
            + (f" ({', '.join(firing)})" if firing else "")
            + f", {len(alerts.get('history') or [])} transitions recorded"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML assembly
# ----------------------------------------------------------------------
_CSS = """
body { font: 14px/1.45 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 960px; color: #222; padding: 0 1em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.8em; }
table { border-collapse: collapse; width: 100%; margin: 0.6em 0; }
th, td { text-align: left; padding: 4px 10px; border-bottom: 1px solid #e5e5e5;
         font-variant-numeric: tabular-nums; }
th { background: #f7f7f7; font-weight: 600; }
td.num, th.num { text-align: right; }
.muted { color: #888; } .mono { font-family: ui-monospace, monospace; }
.bar { background: #4c78a8; height: 11px; display: inline-block;
       vertical-align: middle; border-radius: 2px; }
.bar.bad { background: #e45756; }
.firing { color: #b0272a; font-weight: 600; }
.ok { color: #2a7d2e; }
"""

_LANE_COLORS = ("#4c78a8", "#f58518", "#54a24b", "#b279a2", "#9d755d", "#72b7b2")


def _timeline_svg(doc: Dict[str, Any], width: int = 860) -> str:
    """The flight ring as one inline SVG timeline: lanes per entry kind
    category, a mark per entry (heavier = a decimated pair run), and a
    red line at the trigger instant."""
    ring = doc.get("flight_ring") or {}
    entries = ring.get("entries") or []
    if len(entries) < 2:
        return "<p class='muted'>not enough ring entries for a timeline</p>"
    trigger_s = (doc.get("trigger") or {}).get("at_s")
    t0 = min(entry.get("first_ts_s", entry.get("ts_s", 0.0)) for entry in entries)
    t1 = max(entry.get("ts_s", 0.0) for entry in entries)
    if trigger_s is not None:
        t0 = min(t0, trigger_s)
        t1 = max(t1, trigger_s)
    span = max(t1 - t0, 1e-9)
    categories = sorted({str(entry.get("kind", "?")).split(".")[0] for entry in entries})
    lane_h, pad, label_w = 26, 10, 90
    height = pad * 2 + lane_h * len(categories)
    plot_w = width - label_w - pad

    def x_of(ts: float) -> float:
        return label_w + (ts - t0) / span * plot_w

    out: List[str] = []
    out.append(
        f"<svg viewBox='0 0 {width} {height}' width='{width}' height='{height}' "
        "xmlns='http://www.w3.org/2000/svg' role='img'>"
        f"<rect x='0' y='0' width='{width}' height='{height}' fill='#fafafa' "
        "stroke='#ddd'/>"
    )
    for lane, category in enumerate(categories):
        y = pad + lane * lane_h + lane_h // 2
        color = _LANE_COLORS[lane % len(_LANE_COLORS)]
        out.append(
            f"<text x='{pad}' y='{y + 4}' font-size='10' fill='#555'>"
            f"{html.escape(category)}</text>"
        )
        out.append(
            f"<line x1='{label_w}' y1='{y}' x2='{width - pad}' y2='{y}' "
            "stroke='#eee'/>"
        )
        for entry in entries:
            if str(entry.get("kind", "?")).split(".")[0] != category:
                continue
            weight = entry.get("weight", 1)
            first = entry.get("first_ts_s", entry.get("ts_s", 0.0))
            last = entry.get("ts_s", 0.0)
            if weight > 1 and last > first:
                # A decimated pair run: draw its span, not just a point.
                out.append(
                    f"<line x1='{x_of(first):.1f}' y1='{y}' "
                    f"x2='{x_of(last):.1f}' y2='{y}' "
                    f"stroke='{color}' stroke-width='3' opacity='0.35'/>"
                )
            out.append(
                f"<circle cx='{x_of(last):.1f}' cy='{y}' "
                f"r='{3 if weight == 1 else 4}' fill='{color}'/>"
            )
    if trigger_s is not None:
        out.append(
            f"<line x1='{x_of(trigger_s):.1f}' y1='{pad // 2}' "
            f"x2='{x_of(trigger_s):.1f}' y2='{height - pad // 2}' "
            "stroke='#b0272a' stroke-width='1.5' stroke-dasharray='4,3'/>"
        )
    out.append("</svg>")
    return "".join(out)


def render_postmortem_html(
    doc: Dict[str, Any], title: Optional[str] = None
) -> str:
    """One self-contained page for a ``hiss.postmortem/1`` bundle."""
    e = html.escape
    trigger = doc.get("trigger") or {}
    ring = doc.get("flight_ring") or {}
    config = doc.get("config") or {}
    title = title or f"HISS postmortem {doc.get('id', '?')}"
    out: List[str] = []
    out.append("<!doctype html><html lang='en'><head><meta charset='utf-8'>")
    out.append(f"<title>{e(title)}</title><style>{_CSS}</style></head><body>")
    out.append(f"<h1>{e(title)}</h1>")
    out.append(
        f"<p><span class='firing'>{e(str(trigger.get('name', '?')))}</span> "
        f"({e(str(trigger.get('kind', '?')))}) at "
        f"<span class='mono'>{trigger.get('at_s', 0.0):.3f}</span> &middot; "
        f"{len(ring.get('entries') or [])} ring entries representing "
        f"{ring.get('appended', 0)} records &middot; "
        f"v{e(str(config.get('version', '?')))} "
        f"<span class='mono'>{e(str(config.get('code_fingerprint', '?'))[:12])}</span></p>"
    )
    if trigger.get("detail"):
        out.append(f"<p class='muted'>{e(str(trigger['detail']))}</p>")

    out.append("<h2>Timeline: the moments around the trigger</h2>")
    out.append(_timeline_svg(doc))
    out.append(
        "<p class='muted'>One lane per diagnostic category; faded spans are "
        "decimated pair runs (older history at coarser resolution), the "
        "dashed red line is the trigger instant.</p>"
    )

    jobs = _job_rows(doc)
    if jobs:
        out.append("<h2>Implicated jobs</h2>")
        out.append(
            "<table><thead><tr><th>job</th><th>trace</th><th>state</th>"
            "<th class='num'>planned runs</th><th class='num'>executed</th>"
            "<th class='num'>e2e</th></tr></thead><tbody>"
        )
        for row in jobs:
            cls = "ok" if row["state"] == "done" else "firing"
            out.append(
                f"<tr><td class='mono'>{e(str(row['job_id']))}</td>"
                f"<td class='mono'>{e(str(row['trace_id']))}</td>"
                f"<td class='{cls}'>{e(str(row['state']))}</td>"
                f"<td class='num'>{row['planned_runs'] if row['planned_runs'] is not None else '-'}</td>"
                f"<td class='num'>{row['runs_executed'] if row['runs_executed'] is not None else '-'}</td>"
                f"<td class='num'>{e(_fmt_s(row['e2e_s']))}</td></tr>"
            )
        out.append("</tbody></table>")

    blame = (doc.get("blame") or {}).get("rows") or []
    if blame:
        out.append("<h2>Top blame-ledger rows</h2>")
        peak = max(float(row.get("ns", 0)) for row in blame) or 1e-9
        out.append(
            "<table><thead><tr><th>ssr</th><th>channel</th><th>victim</th>"
            "<th class='num'>core</th><th class='num'>charge</th>"
            "<th style='width:28%'></th><th>run</th></tr></thead><tbody>"
        )
        for row in blame:
            ns = float(row.get("ns", 0))
            px = int(240 * ns / peak)
            out.append(
                f"<tr><td class='mono'>{e(str(row.get('ssr', '?')))}</td>"
                f"<td>{e(str(row.get('channel', '?')))}</td>"
                f"<td>{e(str(row.get('victim', '?')))}</td>"
                f"<td class='num'>{row.get('core', '-')}</td>"
                f"<td class='num'>{e(_fmt_ns(ns))}</td>"
                f"<td><span class='bar' style='width:{max(px, 2)}px'></span></td>"
                f"<td class='mono muted'>{e(str(row.get('run', '')))}</td></tr>"
            )
        out.append("</tbody></table>")

    alerts = doc.get("alerts")
    if alerts:
        firing = alerts.get("firing") or []
        verdict = (
            f"<span class='firing'>{len(firing)} firing: {e(', '.join(firing))}</span>"
            if firing
            else "<span class='ok'>no objectives firing</span>"
        )
        out.append(f"<h2>Alerts at capture</h2><p>{verdict}</p>")
        history = alerts.get("history") or []
        if history:
            out.append(
                "<table><thead><tr><th>slo</th><th>state</th>"
                "<th class='num'>burn fast</th><th class='num'>burn slow</th>"
                "<th>detail</th></tr></thead><tbody>"
            )
            for event in history[-10:]:
                cls = "firing" if event.get("state") == "firing" else "ok"
                out.append(
                    f"<tr><td class='mono'>{e(str(event.get('slo', '?')))}</td>"
                    f"<td class='{cls}'>{e(str(event.get('state', '?')))}</td>"
                    f"<td class='num'>{event.get('burn_fast', 0.0):.2f}x</td>"
                    f"<td class='num'>{event.get('burn_slow', 0.0):.2f}x</td>"
                    f"<td class='muted'>{e(str(event.get('detail') or ''))}</td></tr>"
                )
            out.append("</tbody></table>")

    metrics = doc.get("metrics") or {}
    counters = metrics.get("counters") or {}
    if counters:
        out.append("<h2>Counters at capture</h2>")
        out.append(
            "<table><thead><tr><th>counter</th><th class='num'>value</th>"
            "</tr></thead><tbody>"
        )
        for name in sorted(counters):
            out.append(
                f"<tr><td class='mono'>{e(name)}</td>"
                f"<td class='num'>{counters[name]}</td></tr>"
            )
        out.append("</tbody></table>")

    payload = json.dumps(doc, sort_keys=True).replace("</", "<\\/")
    out.append(
        f"<script type='application/json' id='hiss-postmortem-data'>{payload}</script>"
    )
    out.append("</body></html>")
    return "".join(out)


def write_html(text: str, path: str) -> int:
    """Write a rendered page to ``path``; returns the byte count."""
    data = text.encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)
