"""Flight recorder + triggered postmortem capture.

The serving tier can *detect* trouble (burn-rate alerts) and *explain
steady-state blame* (the interference profiler), but SSR interference is
bursty: by the time an operator looks, the moments around an alert or a
worker crash are gone — averaged into rollups that were decimated while
nobody watched.  This package is the black box: an always-on bounded
ring of recent diagnostics, trigger predicates that watch the ops event
stream, and — when one fires — a self-contained ``hiss.postmortem/1``
bundle written atomically next to the ops log.

Layout:

* :mod:`~repro.flight.ring` — :class:`FlightRing`, the bounded
  deterministic diagnostics ring (pair-merge decimation, mirroring
  :class:`repro.obsd.rollup.RollupStore`)
* :mod:`~repro.flight.triggers` — :class:`TriggerSpec` predicates with
  per-trigger debounce and hourly rate limits
* :mod:`~repro.flight.bundle` — the ``hiss.postmortem/1`` document,
  validation, and the atomic keep-N :class:`PostmortemStore`
* :mod:`~repro.flight.recorder` — :class:`FlightRecorder`, the live
  half: tees off the ops log, evaluates triggers, captures bundles
* :mod:`~repro.flight.report` — deterministic text + single-file HTML
  rendering (inline timeline SVG)
* :mod:`~repro.flight.cli` — the ``hiss-postmortem`` console script

Disabled (the default) the subsystem is a ``None`` attribute on the
service and a skipped tee check in :class:`repro.service.obs.OpsLog` —
served results are byte-for-byte what a build without it produces.
"""

from .bundle import (
    POSTMORTEM_SCHEMA,
    PostmortemStore,
    blame_top_k,
    build_postmortem,
    list_bundles,
    postmortem_id,
    validate_postmortem,
)
from .recorder import FlightRecorder
from .ring import FlightEntry, FlightRing
from .triggers import (
    KIND_JOB_LATENCY,
    KIND_LEDGER_INVARIANT,
    KIND_MANUAL,
    KIND_SLO_ALERT,
    KIND_WORKER_CRASH,
    TRIGGER_KINDS,
    TriggerSpec,
    TriggerState,
    default_triggers,
)

__all__ = [
    "FlightEntry",
    "FlightRecorder",
    "FlightRing",
    "KIND_JOB_LATENCY",
    "KIND_LEDGER_INVARIANT",
    "KIND_MANUAL",
    "KIND_SLO_ALERT",
    "KIND_WORKER_CRASH",
    "POSTMORTEM_SCHEMA",
    "PostmortemStore",
    "TRIGGER_KINDS",
    "TriggerSpec",
    "TriggerState",
    "blame_top_k",
    "build_postmortem",
    "default_triggers",
    "list_bundles",
    "postmortem_id",
    "validate_postmortem",
]
