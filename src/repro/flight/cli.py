"""``hiss-postmortem``: list, render, and inspect postmortem bundles.

Subcommands::

    hiss-postmortem list [DIR]             # bundles in a directory
    hiss-postmortem list --url URL         # bundles of a live daemon
    hiss-postmortem summary pm-....json    # aligned-text incident summary
    hiss-postmortem render pm-....json -o report.html
    hiss-postmortem validate pm-....json   # schema check; exit 1 on problems

Bundles are written by a daemon started with ``hiss-serve
--postmortem-dir`` (auto-captured on SLO alerts, worker crashes, and the
other triggers) or fetched from it with ``hiss-client postmortem <id> -o
pm.json``.  The HTML report is fully self-contained (inline CSS, inline
timeline SVG, embedded raw JSON) and byte-identical across re-renders of
the same bundle.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

from ..version import add_version_flag
from .bundle import list_bundles, validate_postmortem
from .report import postmortem_text, render_postmortem_html, write_html


def _load(path: str) -> Any:
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as error:
        raise SystemExit(f"hiss-postmortem: cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        raise SystemExit(f"hiss-postmortem: {path} is not valid JSON: {error}")


def _checked(path: str) -> Any:
    document = _load(path)
    problems = validate_postmortem(document)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        raise SystemExit(2)
    return document


def _cmd_list(args: argparse.Namespace) -> int:
    if args.url:
        from ..service.client import ServiceClient

        body = ServiceClient(args.url).postmortems()
        rows = body.get("postmortems", [])
    else:
        rows = list_bundles(args.directory)
    if not rows:
        where = args.url or args.directory
        print(f"no postmortem bundles at {where}")
        return 0
    header = (
        f"{'id':<28} {'trigger':<18} {'kind':<16} {'jobs':>4} "
        f"{'ring':>5} {'bytes':>9}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{str(row.get('id', '?')):<28} {str(row.get('trigger', '?')):<18} "
            f"{str(row.get('kind', '?')):<16} {row.get('jobs', 0):>4} "
            f"{row.get('ring_entries', 0):>5} {row.get('bytes', 0):>9}"
        )
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    print(postmortem_text(_checked(args.bundle)))
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    document = _checked(args.bundle)
    size = write_html(render_postmortem_html(document, title=args.title), args.output)
    entries = len((document.get("flight_ring") or {}).get("entries") or [])
    print(
        f"wrote {args.output} ({size} bytes, {entries} ring entries, "
        f"{len(document.get('jobs') or [])} job(s))"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    status = 0
    for path in args.bundles:
        document = _load(path)
        problems = validate_postmortem(document)
        if problems:
            for problem in problems:
                print(f"INVALID: {path}: {problem}", file=sys.stderr)
            status = 1
            continue
        ring = document.get("flight_ring") or {}
        print(
            f"OK: {path} ({document.get('id')}, "
            f"{len(ring.get('entries') or [])} ring entries, "
            f"{len(document.get('jobs') or [])} job(s))"
        )
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="hiss-postmortem",
        description="List, render, and inspect HISS postmortem bundles.",
    )
    add_version_flag(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="list bundles in a directory or daemon")
    listing.add_argument(
        "directory", nargs="?", default=".",
        help="bundle directory (default: current directory)",
    )
    listing.add_argument(
        "--url", default=None,
        help="list a live daemon's bundles (GET /v1/postmortems) instead",
    )
    listing.set_defaults(func=_cmd_list)

    summary = sub.add_parser("summary", help="print a text incident summary")
    summary.add_argument("bundle", help="postmortem bundle JSON")
    summary.set_defaults(func=_cmd_summary)

    render = sub.add_parser("render", help="write the self-contained HTML report")
    render.add_argument("bundle", help="postmortem bundle JSON")
    render.add_argument(
        "-o", "--output", default="postmortem.html", help="HTML output path"
    )
    render.add_argument("--title", default=None, help="report page title")
    render.set_defaults(func=_cmd_render)

    validate = sub.add_parser(
        "validate", help="schema check; exit 1 on problems"
    )
    validate.add_argument("bundles", nargs="+", help="postmortem bundle JSON file(s)")
    validate.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; devnull out the flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
