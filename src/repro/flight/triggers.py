"""Trigger predicates: when does the flight recorder snapshot a bundle?

A :class:`TriggerSpec` is a frozen description of one capture condition;
:class:`TriggerState` is its mutable runtime companion (owned by the
recorder) holding debounce and rate-limit bookkeeping.  Both limits are
per-trigger and evaluated against the *event's* timestamp, so replaying
the same event stream suppresses the same captures.

Kinds:

* ``slo_alert`` — an SLO burn-rate rule started firing (``slo.alert``
  edge from the :class:`~repro.obsd.engine.SloEngine`)
* ``worker_crash`` — the warm pool's lifetime ``crashed_workers``
  counter advanced (checked after every batch; the respawn shows up in
  the same :class:`~repro.core.pool.PoolStats` delta)
* ``job_latency`` — a job finished with end-to-end latency at or above
  ``threshold_s``
* ``ledger_invariant`` — a profiled job's attribution failed
  reconciliation (:func:`repro.profiling.validate_profile` found
  problems: service-channel sums no longer match the SSR accumulator)
* ``manual`` — ``POST /v1/postmortems/trigger``

Debounce suppresses rapid-fire repeats of one condition (an alert storm
is one incident, not thirty bundles); the hourly rate limit bounds what
a pathological trigger can write to disk.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, Tuple

__all__ = [
    "KIND_JOB_LATENCY",
    "KIND_LEDGER_INVARIANT",
    "KIND_MANUAL",
    "KIND_SLO_ALERT",
    "KIND_WORKER_CRASH",
    "RATE_WINDOW_S",
    "TRIGGER_KINDS",
    "TriggerSpec",
    "TriggerState",
    "default_triggers",
]

KIND_SLO_ALERT = "slo_alert"
KIND_WORKER_CRASH = "worker_crash"
KIND_JOB_LATENCY = "job_latency"
KIND_LEDGER_INVARIANT = "ledger_invariant"
KIND_MANUAL = "manual"

TRIGGER_KINDS = (
    KIND_SLO_ALERT,
    KIND_WORKER_CRASH,
    KIND_JOB_LATENCY,
    KIND_LEDGER_INVARIANT,
    KIND_MANUAL,
)

#: The rate-limit accounting window (one hour, in event-time seconds).
RATE_WINDOW_S = 3600.0


@dataclass(frozen=True)
class TriggerSpec:
    """One capture condition with its debounce and rate-limit policy."""

    name: str
    kind: str
    #: ``job_latency`` only: fire when a job's e2e_s reaches this.
    threshold_s: Optional[float] = None
    #: Minimum event-time seconds between two captures of this trigger.
    debounce_s: float = 30.0
    #: Hard cap on captures per trailing hour of event time.
    max_per_hour: int = 6

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("trigger name must be non-empty")
        if self.kind not in TRIGGER_KINDS:
            raise ValueError(
                f"unknown trigger kind {self.kind!r} (expected one of {TRIGGER_KINDS})"
            )
        if self.kind == KIND_JOB_LATENCY:
            if self.threshold_s is None or self.threshold_s <= 0:
                raise ValueError(
                    f"{self.name}: job_latency triggers need threshold_s > 0"
                )
        if self.debounce_s < 0:
            raise ValueError(f"{self.name}: debounce_s must be >= 0")
        if self.max_per_hour < 1:
            raise ValueError(f"{self.name}: max_per_hour must be >= 1")

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "debounce_s": self.debounce_s,
            "max_per_hour": self.max_per_hour,
        }
        if self.threshold_s is not None:
            doc["threshold_s"] = self.threshold_s
        return doc


class TriggerState:
    """Runtime debounce/rate-limit state for one :class:`TriggerSpec`."""

    def __init__(self, spec: TriggerSpec):
        self.spec = spec
        self.fired = 0
        self.suppressed_debounce = 0
        self.suppressed_rate = 0
        self._last_fired_s: Optional[float] = None
        self._recent: Deque[float] = deque()

    def should_fire(self, now_s: float) -> bool:
        """Admit or suppress one occurrence at event time ``now_s``."""
        if (
            self._last_fired_s is not None
            and now_s - self._last_fired_s < self.spec.debounce_s
        ):
            self.suppressed_debounce += 1
            return False
        while self._recent and now_s - self._recent[0] >= RATE_WINDOW_S:
            self._recent.popleft()
        if len(self._recent) >= self.spec.max_per_hour:
            self.suppressed_rate += 1
            return False
        self._recent.append(now_s)
        self._last_fired_s = now_s
        self.fired += 1
        return True

    @property
    def suppressed(self) -> int:
        return self.suppressed_debounce + self.suppressed_rate

    def as_dict(self) -> Dict[str, Any]:
        doc = self.spec.as_dict()
        doc.update(
            fired=self.fired,
            suppressed_debounce=self.suppressed_debounce,
            suppressed_rate=self.suppressed_rate,
        )
        return doc


def default_triggers(
    e2e_threshold_s: Optional[float] = None,
) -> Tuple[TriggerSpec, ...]:
    """The standard trigger set ``hiss-serve --postmortem-dir`` installs.

    ``e2e_threshold_s`` adds the per-job latency trigger (off by default:
    a sensible threshold is deployment-specific, and the SLO alert edge
    already covers systematic tail regressions).
    """
    specs = [
        TriggerSpec("slo-alert", KIND_SLO_ALERT),
        TriggerSpec("worker-crash", KIND_WORKER_CRASH),
        TriggerSpec("ledger-invariant", KIND_LEDGER_INVARIANT),
        TriggerSpec("manual", KIND_MANUAL, debounce_s=0.0, max_per_hour=60),
    ]
    if e2e_threshold_s is not None:
        specs.append(
            TriggerSpec("job-e2e", KIND_JOB_LATENCY, threshold_s=e2e_threshold_s)
        )
    return tuple(specs)
