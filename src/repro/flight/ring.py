"""The bounded, deterministic diagnostics ring behind the flight recorder.

A :class:`FlightRing` keeps the tail of everything the daemon's ops
stream saw — job transitions, batch executions, SLO alert edges, in-sim
event tails, sampler frames — as timestamped, kind-tagged entries.  Like
:class:`repro.obsd.rollup.RollupStore` (whose decimation model this
mirrors) it trades *resolution* for *span* instead of dropping history
outright: when the ring fills, adjacent entry pairs merge — the later
entry's payload survives, its ``weight`` becomes the pair's sum, and its
``first_ts_s`` reaches back to the earlier entry — so the number of
records *represented* is conserved (``total_weight == appended``) while
detail coarsens toward the past, which is exactly the bias a postmortem
wants: full fidelity near the trigger, summaries further back.

Determinism: merge points depend only on the append count, never on wall
clock, so the same entry sequence always produces the same ring, byte
for byte.  Nothing here reads the clock; every timestamp is the
caller's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["DEFAULT_RING_CAPACITY", "FlightEntry", "FlightRing"]

#: Default entry capacity.  512 entries comfortably cover minutes of ops
#: events around a trigger at serving-tier event rates.
DEFAULT_RING_CAPACITY = 512


@dataclass
class FlightEntry:
    """One diagnostics record (or, after decimation, a merged pair run)."""

    seq: int
    ts_s: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)
    #: Records this entry represents (1 until decimation merges pairs).
    weight: int = 1
    #: Timestamp of the oldest record merged into this entry.
    first_ts_s: float = 0.0

    def absorb(self, earlier: "FlightEntry") -> "FlightEntry":
        """Fold an earlier entry into this one in place; returns ``self``.

        The later payload survives (near-trigger fidelity); the merged
        entry's weight and time span account for what was coarsened.
        """
        self.weight += earlier.weight
        self.first_ts_s = min(self.first_ts_s, earlier.first_ts_s)
        return self

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "ts_s": self.ts_s,
            "first_ts_s": self.first_ts_s,
            "kind": self.kind,
            "weight": self.weight,
            "data": self.data,
        }


class FlightRing:
    """Bounded ring of :class:`FlightEntry` with pair-merge decimation."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity < 16 or capacity % 2:
            raise ValueError(f"capacity must be an even number >= 16, got {capacity}")
        self.capacity = capacity
        self.entries: List[FlightEntry] = []
        #: Entries ever appended (== total_weight; conservation check).
        self.appended = 0
        #: Times the ring overflowed and adjacent pairs were merged.
        self.decimations = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def total_weight(self) -> int:
        """Records represented across all entries (== :attr:`appended`)."""
        return sum(entry.weight for entry in self.entries)

    def append(self, ts_s: float, kind: str, data: Dict[str, Any]) -> FlightEntry:
        entry = FlightEntry(
            seq=self.appended, ts_s=float(ts_s), kind=kind, data=data,
            first_ts_s=float(ts_s),
        )
        self.appended += 1
        self.entries.append(entry)
        if len(self.entries) >= self.capacity:
            # Deterministic decimation, mirroring RollupStore._append:
            # merge adjacent pairs (later payload wins, weights add).
            merged = [
                self.entries[i + 1].absorb(self.entries[i])
                for i in range(0, len(self.entries) - 1, 2)
            ]
            if len(self.entries) % 2:
                merged.append(self.entries[-1])
            self.entries = merged
            self.decimations += 1
        return entry

    def kind_counts(self) -> Dict[str, int]:
        """Represented-record counts per kind (weights, not entries)."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.kind] = counts.get(entry.kind, 0) + entry.weight
        return {kind: counts[kind] for kind in sorted(counts)}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "appended": self.appended,
            "decimations": self.decimations,
            "entries": [entry.as_dict() for entry in self.entries],
        }
