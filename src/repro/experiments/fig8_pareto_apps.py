"""Figure 8: Pareto trade-off of mitigations for the real GPU applications.

Like Figure 7 but aggregated over the non-microbenchmark GPU workloads
(the paper plots the four most interesting combinations).  Paper
headlines: the default is again not Pareto optimal; the monolithic bottom
half dominates on GPU throughput; steering+coalescing trades ~35% GPU
performance for ~10% more CPU performance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import SystemConfig
from ..core import ParetoPoint, frontier_labels, geomean, run_workloads
from ..mitigations import ALL_COMBINATIONS, combination
from ..workloads import GPU_APP_NAMES, PARSEC_NAMES
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register

#: The combinations the paper's Figure 8 plots.
PAPER_FIG8_COMBOS = [
    "Default",
    "Monolithic_bottom_half",
    "Intr_to_single_core + Intr_coalescing",
    "Intr_to_single_core + Monolithic_bottom_half",
]


@register("fig8")
def run(
    config: Optional[SystemConfig] = None,
    cpu_names: Optional[List[str]] = None,
    gpu_names: Optional[List[str]] = None,
    combos: Optional[List[str]] = None,
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
) -> ExperimentResult:
    config = config or SystemConfig()
    cpu_names = cpu_names or PARSEC_NAMES
    gpu_names = gpu_names or GPU_APP_NAMES
    combos = combos or PAPER_FIG8_COMBOS
    points: List[ParetoPoint] = []
    idle_metrics: Dict[str, float] = {
        gpu_name: run_workloads(None, gpu_name, True, config, horizon_ns)
        .gpu.performance_metric()
        for gpu_name in gpu_names
    }
    for label in combos:
        combo_config = combination(config, label)
        cpu_values: List[float] = []
        gpu_values: List[float] = []
        for gpu_name in gpu_names:
            for cpu_name in cpu_names:
                pair = run_workloads(cpu_name, gpu_name, True, combo_config, horizon_ns)
                baseline = run_workloads(cpu_name, gpu_name, False, config, horizon_ns)
                cpu_values.append(
                    pair.cpu_app.instructions / baseline.cpu_app.instructions
                )
                gpu_values.append(
                    pair.gpu.performance_metric() / idle_metrics[gpu_name]
                )
        points.append(
            ParetoPoint(
                label=label,
                cpu_performance=geomean(cpu_values),
                gpu_performance=geomean(gpu_values),
            )
        )
    frontier = set(frontier_labels(points))
    result = ExperimentResult(
        experiment_id="fig8",
        title="Mitigation-combination Pareto chart (real GPU apps)",
        columns=["combination", "cpu_perf_gmean", "gpu_perf_gmean", "pareto_optimal"],
        notes="aggregated over " + ", ".join(gpu_names),
    )
    for point in points:
        result.add_row(
            point.label,
            point.cpu_performance,
            point.gpu_performance,
            "yes" if point.label in frontier else "no",
        )
    return result
