"""Figure 5: microarchitectural effects of GPU SSRs on CPU applications.

For each PARSEC app running against the microbenchmark's SSR stream,
reports the increase in L1D misses (Fig. 5a) and branch mispredictions
(Fig. 5b) attributable to kernel SSR handlers polluting the shared
structures.  Paper ranges: L1D miss increases up to ~50%, branch
misprediction increases up to ~30%.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..core import run_workloads
from ..workloads import PARSEC_NAMES
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register


@register("fig5")
def run(
    config: Optional[SystemConfig] = None,
    cpu_names: Optional[List[str]] = None,
    gpu_name: str = "ubench",
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
) -> ExperimentResult:
    config = config or SystemConfig()
    cpu_names = cpu_names or PARSEC_NAMES
    result = ExperimentResult(
        experiment_id="fig5",
        title="Increase in L1D misses / branch mispredictions from GPU SSRs",
        columns=[
            "cpu_app",
            "l1d_miss_increase_pct",
            "branch_mispredict_increase_pct",
            "pollution_stall_ms",
        ],
        notes=f"relative to the app's solo steady-state rates; SSR source: {gpu_name}",
    )
    for cpu_name in cpu_names:
        metrics = run_workloads(cpu_name, gpu_name, True, config, horizon_ns)
        cpu = metrics.cpu_app
        result.add_row(
            cpu_name,
            cpu.l1_miss_increase * 100.0,
            cpu.mispredict_increase * 100.0,
            cpu.pollution_stall_ns / 1e6,
        )
    return result
