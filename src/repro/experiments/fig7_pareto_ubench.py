"""Figure 7: Pareto trade-off of mitigation combinations (microbenchmark).

For each of the eight mitigation combinations: X = geometric mean of the
CPU applications' performance while ubench generates SSRs (normalized to
no-SSR runs), Y = geometric mean of ubench's SSR completion rate across
those co-executions (normalized to ubench with idle CPUs under the default
configuration).  Paper headlines: the default configuration is not Pareto
optimal; steering+coalescing gives the best CPU performance (+10%) while
speeding ubench up ~45%; the monolithic handler gives the best ubench
throughput.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import SystemConfig
from ..core import ParetoPoint, frontier_labels, geomean, run_workloads
from ..mitigations import ALL_COMBINATIONS, combination
from ..workloads import PARSEC_NAMES
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register


def pareto_points(
    config: SystemConfig,
    cpu_names: List[str],
    gpu_name: str,
    combos: List[str],
    horizon_ns: int,
) -> List[ParetoPoint]:
    """Compute (CPU perf, GPU perf) geomeans per combination."""
    default_idle = run_workloads(None, gpu_name, True, config, horizon_ns)
    idle_metric = default_idle.gpu.performance_metric()
    points = []
    for label in combos:
        combo_config = combination(config, label)
        cpu_values = []
        gpu_values = []
        for cpu_name in cpu_names:
            pair = run_workloads(cpu_name, gpu_name, True, combo_config, horizon_ns)
            baseline = run_workloads(cpu_name, gpu_name, False, config, horizon_ns)
            cpu_values.append(pair.cpu_app.instructions / baseline.cpu_app.instructions)
            gpu_values.append(pair.gpu.performance_metric() / idle_metric)
        points.append(
            ParetoPoint(
                label=label,
                cpu_performance=geomean(cpu_values),
                gpu_performance=geomean(gpu_values),
            )
        )
    return points


@register("fig7")
def run(
    config: Optional[SystemConfig] = None,
    cpu_names: Optional[List[str]] = None,
    combos: Optional[List[str]] = None,
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
) -> ExperimentResult:
    config = config or SystemConfig()
    cpu_names = cpu_names or PARSEC_NAMES
    combos = combos or list(ALL_COMBINATIONS)
    points = pareto_points(config, cpu_names, "ubench", combos, horizon_ns)
    frontier = set(frontier_labels(points))
    result = ExperimentResult(
        experiment_id="fig7",
        title="Mitigation-combination Pareto chart (ubench)",
        columns=["combination", "cpu_perf_gmean", "ubench_perf_gmean", "pareto_optimal"],
        notes="X: CPU perf vs no-SSR; Y: ubench SSR rate vs idle-CPU default",
    )
    for point in points:
        result.add_row(
            point.label,
            point.cpu_performance,
            point.gpu_performance,
            "yes" if point.label in frontier else "no",
        )
    return result
