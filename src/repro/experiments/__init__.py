"""Experiment harnesses: one module per paper table/figure.

Importing this package populates :data:`repro.experiments.common.REGISTRY`;
use :func:`repro.experiments.common.run_experiment` or the
``hiss-experiments`` CLI to regenerate any figure.
"""

from . import (  # noqa: F401 - imported for registration side effects
    energy,
    fig3a_cpu_slowdown,
    fig3b_gpu_slowdown,
    fig4_cc6,
    fig5_uarch,
    fig6_mitigations,
    fig7_pareto_ubench,
    fig8_pareto_apps,
    fig9_cc6_mitigations,
    fig12_qos,
    stats_ipi,
    sweeps,
    table1_ssr_complexity,
)
from .common import (
    EXPERIMENT_HORIZON_NS,
    ExperimentResult,
    QUICK_CPU_NAMES,
    QUICK_GPU_NAMES,
    REGISTRY,
    run_experiment,
)

__all__ = [
    "EXPERIMENT_HORIZON_NS",
    "ExperimentResult",
    "QUICK_CPU_NAMES",
    "QUICK_GPU_NAMES",
    "REGISTRY",
    "run_experiment",
]
