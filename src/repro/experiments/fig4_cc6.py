"""Figure 4: CPU low-power (CC6) residency with and without GPU SSRs.

Each GPU workload runs alone (no CPU application).  The metric is the
fraction of core-time spent in CC6.  Paper headlines: ~86% with no SSRs;
bfs loses only ~14 points (its faults cluster early); the other apps lose
23-30 points; the microbenchmark collapses residency from 86% to 12%.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..core import run_workloads
from ..workloads import GPU_NAMES
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register


@register("fig4")
def run(
    config: Optional[SystemConfig] = None,
    gpu_names: Optional[List[str]] = None,
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
) -> ExperimentResult:
    config = config or SystemConfig()
    gpu_names = gpu_names or GPU_NAMES
    result = ExperimentResult(
        experiment_id="fig4",
        title="CC6 residency while running GPU workloads (no CPU app)",
        columns=["gpu_app", "no_SSR", "gpu_SSR", "lost_points"],
        notes="percent of core-time in CC6; higher is better",
    )
    for gpu_name in gpu_names:
        without = run_workloads(None, gpu_name, False, config, horizon_ns)
        with_ssr = run_workloads(None, gpu_name, True, config, horizon_ns)
        no_ssr_pct = without.cc6_residency * 100.0
        ssr_pct = with_ssr.cc6_residency * 100.0
        result.add_row(gpu_name, no_ssr_pct, ssr_pct, no_ssr_pct - ssr_pct)
    return result
