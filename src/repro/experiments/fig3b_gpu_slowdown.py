"""Figure 3b: normalized GPU performance with concurrent CPU applications.

Each cell is a GPU workload's performance (compute progress; SSR rate for
``ubench``) while the named PARSEC app runs, normalized to the same GPU
workload with idle CPUs.  Paper headlines: up to 18% loss (sssp x
streamcluster), 4% average; streamcluster is the worst CPU partner;
occasional values slightly above 1 because busy (awake) cores respond to
SSRs faster than sleeping ones.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..core import geomean, gpu_relative_performance
from ..workloads import GPU_NAMES, PARSEC_NAMES
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register


@register("fig3b")
def run(
    config: Optional[SystemConfig] = None,
    cpu_names: Optional[List[str]] = None,
    gpu_names: Optional[List[str]] = None,
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
) -> ExperimentResult:
    config = config or SystemConfig()
    cpu_names = cpu_names or PARSEC_NAMES
    gpu_names = gpu_names or GPU_NAMES
    result = ExperimentResult(
        experiment_id="fig3b",
        title="Normalized GPU performance when running with CPU applications",
        columns=["cpu_app", *gpu_names],
        notes="1.0 = same GPU app with idle CPUs",
    )
    per_gpu: dict = {gpu_name: [] for gpu_name in gpu_names}
    for cpu_name in cpu_names:
        values = []
        for gpu_name in gpu_names:
            value = gpu_relative_performance(gpu_name, cpu_name, config, horizon_ns)
            per_gpu[gpu_name].append(value)
            values.append(value)
        result.add_row(cpu_name, *values)
    result.add_row("gmean", *[geomean(per_gpu[gpu_name]) for gpu_name in gpu_names])
    return result
