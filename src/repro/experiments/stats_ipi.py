"""Section IV-C statistics: interrupt distribution and the IPI explosion.

The paper observes (via ``/proc/interrupts``) that SSR interrupts are
evenly distributed across all CPUs when the system is busy, and that the
microbenchmark's SSRs inflate inter-processor interrupts by ~477x (the top
half waking the bottom-half kthread on other cores).
"""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig
from ..core import run_workloads
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register


@register("ipi")
def run(
    config: Optional[SystemConfig] = None,
    cpu_name: str = "x264",
    gpu_name: str = "ubench",
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
) -> ExperimentResult:
    config = config or SystemConfig()
    result = ExperimentResult(
        experiment_id="ipi",
        title="Interrupt distribution and IPI increase from GPU SSRs",
        columns=["run", "irq_core0", "irq_core1", "irq_core2", "irq_core3", "ipis", "balance"],
        notes="balance = max/mean interrupts across cores (1.0 = perfectly even)",
    )
    rows = {
        "gpu_alone_no_SSR": run_workloads(None, gpu_name, False, config, horizon_ns),
        "gpu_alone_SSR": run_workloads(None, gpu_name, True, config, horizon_ns),
        f"busy({cpu_name})_no_SSR": run_workloads(cpu_name, gpu_name, False, config, horizon_ns),
        f"busy({cpu_name})_SSR": run_workloads(cpu_name, gpu_name, True, config, horizon_ns),
    }
    for label, metrics in rows.items():
        result.add_row(
            label,
            *metrics.interrupts_per_core,
            metrics.ipis,
            metrics.interrupt_balance(),
        )
    idle_base = max(1, rows["gpu_alone_no_SSR"].ipis)
    busy_base = max(1, rows[f"busy({cpu_name})_no_SSR"].ipis)
    result.add_row(
        "ipi_increase_x",
        "-",
        "-",
        "-",
        "-",
        f"idle:{rows['gpu_alone_SSR'].ipis / idle_base:.0f}x "
        f"busy:{rows[f'busy({cpu_name})_SSR'].ipis / busy_base:.0f}x",
        "-",
    )
    return result
