"""Table I: system service request kinds, complexity, and measured latency.

Reproduces the paper's qualitative catalog and grounds it quantitatively:
for each SSR kind we run a small dedicated workload that issues only that
kind of request on otherwise-idle CPUs and report the measured end-to-end
service latency through the full handling chain.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..config import SystemConfig
from ..core import System
from ..iommu import SSR_CATALOG
from ..workloads import GpuAppProfile
from .common import ExperimentResult, register

#: A light probe workload: modest request rate, non-blocking.
_PROBE_HORIZON_NS = 5_000_000


def _measure_kind(kind_name: str, config: SystemConfig) -> float:
    """Mean end-to-end latency (us) of one SSR kind on an idle system."""
    system = System(config)
    if kind_name == "signal":
        # Signals use the direct S_SENDMSG path, not the IOMMU.
        def sender():
            for _ in range(40):
                yield system.env.timeout(100_000)
                system.signal_path.send()

        system.kernel.boot()
        system.driver.start()
        system.env.process(sender())
        system.env.run(until=_PROBE_HORIZON_NS)
        system.kernel.finalize()
        return system.signal_path.latency.mean_ns / 1_000.0
    profile = GpuAppProfile(
        name=f"probe-{kind_name}",
        compute_chunk_ns=100_000,
        faults_per_chunk=2.0,
        blocking=False,
        fault_spacing_ns=10_000,
        ssr_kind=kind_name,
    )
    system.add_gpu_workload(profile, ssr_enabled=True)
    system.run(_PROBE_HORIZON_NS)
    return system.iommu.latency.mean_ns / 1_000.0


@register("table1", plannable=False)  # probes Systems directly, not run_workloads
def run(config: Optional[SystemConfig] = None) -> ExperimentResult:
    config = config or SystemConfig()
    result = ExperimentResult(
        experiment_id="table1",
        title="SSR kinds: complexity and measured end-to-end latency",
        columns=["ssr", "complexity", "worker_service_us", "measured_latency_us", "description"],
        notes="latency measured through the full chain on idle CPUs",
    )
    for kind in SSR_CATALOG.values():
        service_ns = (
            config.os_path.page_fault_service_ns
            if kind.name == "page_fault"
            else kind.service_ns
        )
        result.add_row(
            kind.name,
            kind.complexity,
            service_ns / 1_000.0,
            _measure_kind(kind.name, config),
            kind.description,
        )
    return result
