"""Figure 12: the backpressure QoS governor under the SSR storm.

Every PARSEC application runs against the microbenchmark under four
configurations: default (no QoS) and governors capping SSR CPU time at
25%, 5%, and 1% (``th_25``/``th_5``/``th_1``).

* 12a — CPU application performance, normalized to the pair without SSRs.
* 12b — ubench SSR throughput, normalized to ubench with idle CPUs.

Paper headlines: ``th_1`` caps average CPU loss below ~4% (from 28%) while
ubench's throughput collapses to ~5% of its unhindered rate; enforcement
is periodic, so the cap can be exceeded slightly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import SystemConfig
from ..core import geomean, run_workloads
from ..workloads import PARSEC_NAMES
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register

#: The paper's throttling thresholds, by label.
THRESHOLDS: Dict[str, Optional[float]] = {
    "default": None,
    "th_25": 0.25,
    "th_5": 0.05,
    "th_1": 0.01,
}


def _qos_config(config: SystemConfig, threshold: Optional[float]) -> SystemConfig:
    if threshold is None:
        return config
    return config.with_qos(enabled=True, ssr_time_threshold=threshold)


def _run_panel(
    side: str,
    config: SystemConfig,
    cpu_names: List[str],
    gpu_name: str,
    horizon_ns: int,
) -> ExperimentResult:
    what = (
        "CPU application performance (vs. no-SSR pair)"
        if side == "cpu"
        else "GPU (ubench) SSR throughput (vs. idle-CPU run)"
    )
    result = ExperimentResult(
        experiment_id=f"fig12{'a' if side == 'cpu' else 'b'}",
        title=f"QoS throttling: {what}",
        columns=["cpu_app", *THRESHOLDS.keys()],
        notes="th_x caps SSR servicing at x% of CPU time (backpressure governor)",
    )
    idle = run_workloads(None, gpu_name, True, config, horizon_ns)
    idle_metric = idle.gpu.performance_metric()
    per_threshold: Dict[str, List[float]] = {label: [] for label in THRESHOLDS}
    for cpu_name in cpu_names:
        baseline = run_workloads(cpu_name, gpu_name, False, config, horizon_ns)
        values = []
        for label, threshold in THRESHOLDS.items():
            pair = run_workloads(
                cpu_name, gpu_name, True, _qos_config(config, threshold), horizon_ns
            )
            if side == "cpu":
                value = pair.cpu_app.instructions / baseline.cpu_app.instructions
            else:
                value = pair.gpu.performance_metric() / idle_metric
            per_threshold[label].append(value)
            values.append(value)
        result.add_row(cpu_name, *values)
    result.add_row("gmean", *[geomean(per_threshold[label]) for label in THRESHOLDS])
    return result


@register("fig12a")
def run_cpu(
    config: Optional[SystemConfig] = None,
    cpu_names: Optional[List[str]] = None,
    gpu_name: str = "ubench",
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
) -> ExperimentResult:
    return _run_panel(
        "cpu", config or SystemConfig(), cpu_names or PARSEC_NAMES, gpu_name, horizon_ns
    )


@register("fig12b")
def run_gpu(
    config: Optional[SystemConfig] = None,
    cpu_names: Optional[List[str]] = None,
    gpu_name: str = "ubench",
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
) -> ExperimentResult:
    return _run_panel(
        "gpu", config or SystemConfig(), cpu_names or PARSEC_NAMES, gpu_name, horizon_ns
    )
