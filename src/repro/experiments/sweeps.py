"""Ablation sweeps over the design choices DESIGN.md calls out.

Beyond reproducing the paper's figures, these sweeps vary one mechanism at
a time to show *why* the system behaves as it does:

* ``sweep_coalesce`` — the IOMMU coalescing window from 0 to 4x the paper's
  maximum: CPU relief vs. blocking-GPU latency cost (Section V-B's knob).
* ``sweep_outstanding`` — the GPU's outstanding-SSR hardware limit: the
  backpressure substrate of the Section VI QoS mechanism.
* ``sweep_dispatch`` — the bottom-half scheduler dispatch latency: the
  quantity the monolithic handler eliminates (its GPU benefit should
  scale with this).
* ``sweep_qos`` — a fine-grained threshold curve for the governor,
  including the adaptive mode as the final row.

Each sweep names its full run batch up front (``make_run_key``) and
pushes it through :func:`~repro.core.execute_runs` before building rows,
so a sweep rides the warm worker pool, cost-model dispatch, and the disk
cache, and gains a ``jobs`` parameter — with rows byte-identical to the
old serial path because row assembly stays pure cache hits.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from ..config import SystemConfig
from ..core import make_run_key, run_workloads
from ..core.experiment import planning_active
from ..core.planner import execute_runs
from ..core.runcache import RunKey
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register


def _fan_out(keys: List[RunKey], jobs: int) -> None:
    """Pre-execute a sweep's full run batch through the planner backend.

    One call fills both cache levels (warm worker pool, cost-model
    dispatch, disk cache when configured), so the row-building loops
    below are pure cache hits — their arithmetic is byte-identical to
    the old serial path.  During planning the keys are already being
    recorded by the ``run_workloads`` placeholders, so executing here
    would defeat the plan/execute split; skip.
    """
    if planning_active():
        return
    execute_runs(keys, jobs=jobs)


@register("sweep_coalesce")
def sweep_coalesce(
    config: Optional[SystemConfig] = None,
    cpu_name: str = "x264",
    windows_us: Optional[List[int]] = None,
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
    jobs: int = 1,
) -> ExperimentResult:
    config = config or SystemConfig()
    windows_us = windows_us or [0, 4, 13, 26, 52]
    keys = [make_run_key(cpu_name, "ubench", False, config, horizon_ns)]
    for window in windows_us:
        swept = config.with_mitigation(coalesce_window_ns=window * 1_000)
        keys.append(make_run_key(cpu_name, "ubench", True, swept, horizon_ns))
        keys.append(make_run_key(None, "sssp", True, swept, horizon_ns))
    _fan_out(keys, jobs)
    result = ExperimentResult(
        experiment_id="sweep_coalesce",
        title="Ablation: IOMMU coalescing window",
        columns=[
            "window_us",
            "cpu_perf(ubench)",
            "ssr_interrupts(ubench)",
            "sssp_latency_us",
            "sssp_progress_ms",
        ],
        notes="cpu_perf vs no-SSR pair; paper hardware max is 13 us",
    )
    cpu_base = run_workloads(cpu_name, "ubench", False, config, horizon_ns)
    for window in windows_us:
        swept = config.with_mitigation(coalesce_window_ns=window * 1_000)
        storm = run_workloads(cpu_name, "ubench", True, swept, horizon_ns)
        blocking = run_workloads(None, "sssp", True, swept, horizon_ns)
        result.add_row(
            str(window),
            storm.cpu_app.instructions / cpu_base.cpu_app.instructions,
            storm.ssr_interrupts,
            blocking.gpu.mean_ssr_latency_ns / 1e3,
            blocking.gpu.progress_ns / 1e6,
        )
    return result


@register("sweep_outstanding")
def sweep_outstanding(
    config: Optional[SystemConfig] = None,
    limits: Optional[List[int]] = None,
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
    jobs: int = 1,
) -> ExperimentResult:
    config = config or SystemConfig()
    limits = limits or [1, 2, 4, 8, 16, 32, 64]
    qos_base = config.with_qos(enabled=True, ssr_time_threshold=0.01)
    keys = []
    for limit in limits:
        swept = replace(config, gpu=replace(config.gpu, max_outstanding_ssrs=limit))
        keys.append(make_run_key(None, "ubench", True, swept, horizon_ns))
        swept_qos = replace(
            qos_base, gpu=replace(qos_base.gpu, max_outstanding_ssrs=limit)
        )
        keys.append(make_run_key("x264", "ubench", True, swept_qos, horizon_ns))
    _fan_out(keys, jobs)
    result = ExperimentResult(
        experiment_id="sweep_outstanding",
        title="Ablation: GPU outstanding-SSR hardware limit",
        columns=["limit", "ubench_ssrs_per_s", "mean_latency_us", "throttled_ssrs_per_s"],
        notes="the bounded window is what makes backpressure QoS possible",
    )
    qos = config.with_qos(enabled=True, ssr_time_threshold=0.01)
    for limit in limits:
        swept = replace(config, gpu=replace(config.gpu, max_outstanding_ssrs=limit))
        free = run_workloads(None, "ubench", True, swept, horizon_ns)
        swept_qos = replace(qos, gpu=replace(qos.gpu, max_outstanding_ssrs=limit))
        throttled = run_workloads("x264", "ubench", True, swept_qos, horizon_ns)
        seconds = horizon_ns / 1e9
        result.add_row(
            str(limit),
            free.gpu.faults_completed / seconds,
            free.gpu.mean_ssr_latency_ns / 1e3,
            throttled.gpu.faults_completed / seconds,
        )
    return result


@register("sweep_dispatch")
def sweep_dispatch(
    config: Optional[SystemConfig] = None,
    latencies_us: Optional[List[int]] = None,
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
    jobs: int = 1,
) -> ExperimentResult:
    config = config or SystemConfig()
    latencies_us = latencies_us or [0, 6, 18, 36, 72]
    keys = []
    for latency in latencies_us:
        swept = replace(
            config,
            os_path=replace(config.os_path, bottom_half_dispatch_ns=latency * 1_000),
        )
        keys.append(make_run_key("streamcluster", "sssp", True, swept, horizon_ns))
        keys.append(
            make_run_key(
                "streamcluster",
                "sssp",
                True,
                swept.with_mitigation(monolithic_bottom_half=True),
                horizon_ns,
            )
        )
    _fan_out(keys, jobs)
    result = ExperimentResult(
        experiment_id="sweep_dispatch",
        title="Ablation: bottom-half dispatch latency vs monolithic gain",
        columns=["dispatch_us", "split_sssp_ms", "monolithic_sssp_ms", "monolithic_gain"],
        notes="the monolithic handler's benefit tracks the latency it removes",
    )
    for latency in latencies_us:
        swept = replace(
            config,
            os_path=replace(config.os_path, bottom_half_dispatch_ns=latency * 1_000),
        )
        split = run_workloads("streamcluster", "sssp", True, swept, horizon_ns)
        mono = run_workloads(
            "streamcluster",
            "sssp",
            True,
            swept.with_mitigation(monolithic_bottom_half=True),
            horizon_ns,
        )
        result.add_row(
            str(latency),
            split.gpu.progress_ns / 1e6,
            mono.gpu.progress_ns / 1e6,
            mono.gpu.progress_ns / split.gpu.progress_ns,
        )
    return result


@register("sweep_qos")
def sweep_qos(
    config: Optional[SystemConfig] = None,
    cpu_name: str = "x264",
    thresholds: Optional[List[float]] = None,
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
    jobs: int = 1,
) -> ExperimentResult:
    config = config or SystemConfig()
    thresholds = thresholds or [0.25, 0.10, 0.05, 0.02, 0.01]
    keys = [
        make_run_key(cpu_name, "ubench", False, config, horizon_ns),
        make_run_key(None, "ubench", True, config, horizon_ns),
        make_run_key(cpu_name, "ubench", True, config, horizon_ns),
    ]
    for threshold in thresholds:
        keys.append(
            make_run_key(
                cpu_name,
                "ubench",
                True,
                config.with_qos(enabled=True, ssr_time_threshold=threshold),
                horizon_ns,
            )
        )
    keys.append(
        make_run_key(
            cpu_name,
            "ubench",
            True,
            config.with_qos(enabled=True, adaptive=True),
            horizon_ns,
        )
    )
    _fan_out(keys, jobs)
    result = ExperimentResult(
        experiment_id="sweep_qos",
        title="Ablation: QoS threshold curve (plus adaptive mode)",
        columns=["threshold", "cpu_perf", "ssr_time_pct", "ubench_rate"],
        notes="cpu_perf vs no-SSR pair; ubench_rate vs idle-CPU run",
    )
    base = run_workloads(cpu_name, "ubench", False, config, horizon_ns)
    idle = run_workloads(None, "ubench", True, config, horizon_ns)

    def add(label: str, qos_config: SystemConfig) -> None:
        metrics = run_workloads(cpu_name, "ubench", True, qos_config, horizon_ns)
        result.add_row(
            label,
            metrics.cpu_app.instructions / base.cpu_app.instructions,
            metrics.ssr_time_fraction * 100.0,
            metrics.gpu.faults_completed / idle.gpu.faults_completed,
        )

    add("off", config)
    for threshold in thresholds:
        add(
            f"{threshold * 100:.0f}%",
            config.with_qos(enabled=True, ssr_time_threshold=threshold),
        )
    add("adaptive", config.with_qos(enabled=True, adaptive=True))
    return result
