"""Figure 3a: normalized CPU application performance under GPU SSRs.

Each cell is a PARSEC application's performance while the named GPU
workload generates page-fault SSRs, normalized to the same pair with SSRs
disabled (pinned memory).  Bars below 1.0 are loss attributable purely to
SSR interference.  Paper headlines: up to 31% loss from a real GPU app
(fluidanimate x sssp), up to 44% and 28% on average from the
microbenchmark, with raytrace least affected.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..core import cpu_relative_performance, geomean
from ..workloads import GPU_NAMES, PARSEC_NAMES
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register


@register("fig3a")
def run(
    config: Optional[SystemConfig] = None,
    cpu_names: Optional[List[str]] = None,
    gpu_names: Optional[List[str]] = None,
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
) -> ExperimentResult:
    config = config or SystemConfig()
    cpu_names = cpu_names or PARSEC_NAMES
    gpu_names = gpu_names or GPU_NAMES
    result = ExperimentResult(
        experiment_id="fig3a",
        title="Normalized CPU application performance under GPU SSRs",
        columns=["cpu_app", *gpu_names],
        notes="1.0 = same pair without SSRs; lower = SSR-induced loss",
    )
    per_gpu: dict = {gpu_name: [] for gpu_name in gpu_names}
    for cpu_name in cpu_names:
        values = []
        for gpu_name in gpu_names:
            value = cpu_relative_performance(cpu_name, gpu_name, config, horizon_ns)
            per_gpu[gpu_name].append(value)
            values.append(value)
        result.add_row(cpu_name, *values)
    result.add_row("gmean", *[geomean(per_gpu[gpu_name]) for gpu_name in gpu_names])
    return result
