"""Extension: the energy cost of GPU SSRs, in joules.

The paper argues energy efficiency through CC6 residency (Figures 4/9).
This extension closes the loop with a simple per-core power model
(:class:`repro.config.PowerConfig`): for each GPU workload running alone,
it reports CPU-complex energy with and without SSRs, and the energy cost
*per thousand SSRs serviced* — the number a platform architect actually
budgets.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..core import run_workloads
from ..workloads import GPU_NAMES
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register


@register("energy")
def run(
    config: Optional[SystemConfig] = None,
    gpu_names: Optional[List[str]] = None,
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
) -> ExperimentResult:
    config = config or SystemConfig()
    gpu_names = gpu_names or GPU_NAMES
    power = config.power
    result = ExperimentResult(
        experiment_id="energy",
        title="CPU-complex energy cost of GPU SSRs (GPU running alone)",
        columns=[
            "gpu_app",
            "energy_no_SSR_mJ",
            "energy_SSR_mJ",
            "overhead_pct",
            "mJ_per_kSSR",
            "avg_power_W",
        ],
        notes=f"power model: active {power.active_w}W, idle {power.idle_w}W, "
        f"cc6 {power.cc6_w}W per core",
    )
    for gpu_name in gpu_names:
        quiet = run_workloads(None, gpu_name, False, config, horizon_ns)
        noisy = run_workloads(None, gpu_name, True, config, horizon_ns)
        base_mj = quiet.cpu_energy_mj(power)
        ssr_mj = noisy.cpu_energy_mj(power)
        completed = max(1, noisy.ssr_completed)
        result.add_row(
            gpu_name,
            base_mj,
            ssr_mj,
            (ssr_mj / base_mj - 1.0) * 100.0,
            (ssr_mj - base_mj) / (completed / 1000.0),
            noisy.average_cpu_power_w(power),
        )
    return result
