"""Command-line entry point: regenerate any or all paper figures/tables.

Usage::

    hiss-experiments --list
    hiss-experiments fig3a fig4
    hiss-experiments --all --quick
    python -m repro.experiments.run_all fig12a

``--quick`` trims the workload grid (6 CPU apps, 4 GPU apps) for a fast
smoke pass; the full grid reproduces every bar the paper plots.

``--jobs N`` fans the simulations out over N worker processes (0 = one
per CPU core; default 1 = serial).  Results are bit-for-bit identical to
a serial run — the simulator is deterministic and workers execute the
exact same code.  ``--cache-dir DIR`` adds a persistent result cache so
repeated invocations skip already-simulated runs; entries are invalidated
automatically when the simulator's code changes.  See docs/performance.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

# Importing the modules populates the registry.
from . import (  # noqa: F401
    energy,
    fig3a_cpu_slowdown,
    fig3b_gpu_slowdown,
    fig4_cc6,
    fig5_uarch,
    fig6_mitigations,
    fig7_pareto_ubench,
    fig8_pareto_apps,
    fig9_cc6_mitigations,
    fig12_qos,
    stats_ipi,
    sweeps,
    table1_ssr_complexity,
)
from .common import (
    QUICK_CPU_NAMES,
    QUICK_GPU_NAMES,
    REGISTRY,
    UNPLANNABLE,
    run_experiment,
)

#: Experiments that accept workload-list arguments.
_TAKES_CPU = {
    "fig3a", "fig3b", "fig5", "fig6a", "fig6b", "fig6c", "fig6d", "fig6e",
    "fig6f", "fig7", "fig8", "fig12a", "fig12b",
}
_TAKES_GPU = {"fig3a", "fig3b", "fig4", "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "fig8"}

#: A sensible execution order (roughly the paper's).
DEFAULT_ORDER = [
    "table1",
    "fig3a",
    "fig3b",
    "fig4",
    "fig5",
    "ipi",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig6d",
    "fig6e",
    "fig6f",
    "fig7",
    "fig8",
    "fig9",
    "fig12a",
    "fig12b",
]

#: Ablation sweeps beyond the paper's figures (run with --extensions).
EXTENSION_ORDER = [
    "energy",
    "sweep_coalesce",
    "sweep_outstanding",
    "sweep_dispatch",
    "sweep_qos",
]


def listed_experiments() -> List[str]:
    """Every registered experiment id, in execution order.

    Derived from ``REGISTRY`` — the curated orders come first, then any
    registered experiment they missed (sorted) — so registering an
    experiment without updating an order list can never make it invisible
    to ``--list`` or to the serving API.
    """
    curated = [e for e in DEFAULT_ORDER + EXTENSION_ORDER if e in REGISTRY]
    stragglers = sorted(set(REGISTRY) - set(curated))
    return curated + stragglers


def experiment_kwargs(
    experiment_id: str, quick: bool = False, horizon_ms: Optional[float] = None
) -> dict:
    """The kwargs one experiment runs with under the given CLI options.

    Shared by the CLI and the serving daemon (``repro.service``) so a job
    submitted over HTTP sees exactly the grid ``hiss-experiments`` would.
    """
    kwargs: dict = {}
    if quick:
        if experiment_id in _TAKES_CPU:
            kwargs["cpu_names"] = QUICK_CPU_NAMES
        if experiment_id in _TAKES_GPU:
            kwargs["gpu_names"] = [
                g for g in QUICK_GPU_NAMES if experiment_id != "fig8" or g != "ubench"
            ]
    if horizon_ms is not None and experiment_id != "table1":
        kwargs["horizon_ns"] = int(horizon_ms * 1_000_000)
    return kwargs


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hiss-experiments",
        description="Reproduce the figures/tables of 'Interference from GPU "
        "System Service Requests' (IISWC 2018) on the simulator.",
    )
    from ..version import add_version_flag

    add_version_flag(parser)
    parser.add_argument("experiments", nargs="*", help="experiment ids (e.g. fig3a)")
    parser.add_argument("--all", action="store_true", help="run every paper experiment")
    parser.add_argument(
        "--extensions", action="store_true", help="also run the ablation sweeps"
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--quick", action="store_true", help="reduced workload grid for a fast pass"
    )
    parser.add_argument(
        "--horizon-ms",
        type=float,
        default=None,
        help="override the simulated horizon in milliseconds",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write all results as a JSON document",
    )
    parser.add_argument(
        "--markdown", metavar="FILE", default=None,
        help="also write all results as a markdown report",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a structured event trace of every simulated run and "
        "write it as Chrome trace_event JSON (open in Perfetto or "
        "chrome://tracing; inspect with hiss-trace)",
    )
    parser.add_argument(
        "--trace-capacity", type=int, default=2_000_000,
        help="trace ring-buffer size in events (oldest dropped beyond this)",
    )
    parser.add_argument(
        "--profile", metavar="FILE", default=None,
        help="attribute every simulated run's SSR interference (blame "
        "ledger + sim-time samples) and write the profile bundle as JSON "
        "(render with hiss-report; already-cached runs are re-simulated "
        "so every run gets a profile)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="simulate runs on N worker processes (0 = one per CPU core; "
        "default 1 = serial; results are identical either way)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist simulated runs under DIR and reuse them across "
        "invocations (auto-invalidated when the simulator changes)",
    )
    parser.add_argument(
        "--cold-pool", action="store_true",
        help="with --jobs N, spawn a fresh worker pool per batch instead "
        "of the warm resident pool (results identical; A/B lever)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in listed_experiments():
            marker = "  (serial-only)" if experiment_id in UNPLANNABLE else ""
            print(f"{experiment_id}{marker}")
        return 0

    targets = list(args.experiments)
    if args.all:
        targets = list(DEFAULT_ORDER)
    if args.extensions:
        targets += [t for t in EXTENSION_ORDER if t not in targets]
    if not targets:
        parser.error("no experiments given (use --all, --list, or name some)")

    unknown = [t for t in targets if t not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; known: {sorted(REGISTRY)}")

    tracer = None
    if args.trace:
        from ..telemetry import Tracer, set_active_tracer

        tracer = Tracer(capacity=args.trace_capacity)
        set_active_tracer(tracer)

    collector = None
    if args.profile:
        from ..profiling import ProfileCollector, set_active_collector

        collector = ProfileCollector()
        # Systems built outside the planned grid (e.g. table1's inline
        # simulations) pick the collector up as the process default.
        set_active_collector(collector)

    if args.cache_dir:
        from ..core import configure_disk_cache

        configure_disk_cache(args.cache_dir)

    def kwargs_for(experiment_id: str) -> dict:
        return experiment_kwargs(
            experiment_id, quick=args.quick, horizon_ms=args.horizon_ms
        )

    # Profiling forces the plan/execute path even serially: a profile only
    # exists for an *executed* run, so cached keys must be re-simulated.
    if args.jobs != 1 or collector is not None:
        from ..core import prewarm_experiments

        report = prewarm_experiments(
            targets,
            kwargs_for,
            jobs=args.jobs,
            tracer=tracer,
            unplannable=UNPLANNABLE,
            collector=collector,
            warm=False if args.cold_pool else None,
        )
        print(report.summary())
        print()

    results = []
    for experiment_id in targets:
        result = run_experiment(experiment_id, **kwargs_for(experiment_id))
        results.append(result)
        print(result.render())
        print(f"[{experiment_id} finished in {result.elapsed_s:.1f}s]\n")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump([r.as_dict() for r in results], handle, indent=2)
        print(f"wrote {args.json}")
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(render_markdown(results))
        print(f"wrote {args.markdown}")
    if args.cache_dir:
        from ..core import get_disk_cache

        cache = get_disk_cache()
        print(
            f"cache {cache.directory}: {cache.hits} hits, {cache.misses} misses, "
            f"{cache.stores} stored this run, {len(cache)} entries on disk"
        )
    if tracer is not None:
        from ..telemetry import set_active_tracer, write_chrome_trace

        set_active_tracer(None)
        write_chrome_trace(tracer, args.trace, label=f"hiss:{','.join(targets)}")
        print(
            f"wrote {args.trace} ({len(tracer)} events, {tracer.dropped} dropped; "
            f"inspect with 'hiss-trace summary {args.trace}')"
        )
    if collector is not None:
        from ..profiling import set_active_collector

        set_active_collector(None)
        bundle = collector.bundle(
            meta={
                "experiments": targets,
                "quick": args.quick,
                "horizon_ms": args.horizon_ms,
            }
        )
        with open(args.profile, "w") as handle:
            json.dump(bundle, handle)
        print(
            f"wrote {args.profile} ({len(collector)} run profile(s); render "
            f"with 'hiss-report render {args.profile} -o report.html')"
        )
    return 0


def render_markdown(results) -> str:
    """Render a list of ExperimentResults as a markdown report."""
    lines = ["# Reproduced results", ""]
    for result in results:
        lines.append(f"## {result.experiment_id} — {result.title}")
        lines.append("")
        header = "| " + " | ".join(str(c) for c in result.columns) + " |"
        lines.append(header)
        lines.append("|" + "---|" * len(result.columns))
        for row in result.rows:
            cells = [
                f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
            ]
            lines.append("| " + " | ".join(cells) + " |")
        if result.notes:
            lines.append("")
            lines.append(f"*{result.notes}*")
        lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":
    sys.exit(main())
