"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment module registers a function that produces an
:class:`ExperimentResult` — a labeled table whose rows/series mirror what
the paper's figure or table reports.  Results render as aligned text and
serialize to plain dicts for programmatic use.

Runs are memoized process-wide (see :mod:`repro.core.experiment`), so
figures that share baselines — most of them — reuse each other's work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Default measured horizon for experiments (simulated nanoseconds).  Long
#: enough for several fault-burst and barrier periods of every workload.
EXPERIMENT_HORIZON_NS = 20_000_000

#: Reduced workload sets for --quick runs.
QUICK_CPU_NAMES = [
    "blackscholes",
    "facesim",
    "fluidanimate",
    "raytrace",
    "streamcluster",
    "x264",
]
QUICK_GPU_NAMES = ["bfs", "sssp", "xsbench", "ubench"]


@dataclass
class ExperimentResult:
    """One reproduced table/figure as a labeled grid of numbers."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: str = ""
    elapsed_s: float = 0.0

    def add_row(self, label: str, *values: Any) -> None:
        self.rows.append([label, *values])

    def column(self, name: str) -> List[Any]:
        """All values of one named column (excluding the label column)."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def cell(self, row_label: str, column: str) -> Any:
        index = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_label:
                return row[index]
        raise KeyError(f"no row labeled {row_label!r}")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
            "elapsed_s": self.elapsed_s,
        }

    def render(self) -> str:
        """Render as an aligned, monospaced text table."""

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        table = [[fmt(v) for v in row] for row in self.rows]
        header = [str(c) for c in self.columns]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in table)) if table else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in table:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


#: The experiment registry: id -> callable(**kwargs) -> ExperimentResult.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}

#: Experiments the parallel planner must not pre-plan: they simulate
#: outside ``run_workloads`` (directly through System), so planning-mode
#: recording cannot see — or would actually execute — their runs.
UNPLANNABLE: set = set()


def register(experiment_id: str, plannable: bool = True) -> Callable:
    """Decorator: add an experiment function to the registry.

    ``plannable=False`` marks experiments whose simulations bypass
    ``run_workloads``; the parallel engine leaves them to the serial pass.
    """

    def decorator(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if experiment_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        REGISTRY[experiment_id] = fn
        if not plannable:
            UNPLANNABLE.add(experiment_id)
        return fn

    return decorator


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run one registered experiment, stamping its wall-clock time."""
    try:
        fn = REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None
    start = time.time()
    result = fn(**kwargs)
    result.elapsed_s = time.time() - start
    return result
