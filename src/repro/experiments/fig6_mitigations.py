"""Figure 6: each mitigation in isolation, CPU and GPU sides.

Six panels, as in the paper:

* 6a/6b — interrupt steering to a single core, CPU / GPU performance,
  normalized to the default (spread) configuration.
* 6c/6d — IOMMU interrupt coalescing (13 µs window) vs. no coalescing.
* 6e/6f — monolithic bottom half vs. the split driver.

Paper headlines: steering helps neither universally (facesim hurt under
sssp; the microbenchmark's storm is contained); coalescing buys CPU
performance on continuous streams (+13% with sssp) but can cost blocking
GPU apps up to 50%; the monolithic handler boosts GPU performance up to
2.3x while adding hard-IRQ time on the CPUs (+35% overhead under ubench).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import SystemConfig
from ..core import cpu_mitigation_ratio, geomean, gpu_mitigation_ratio
from ..mitigations import coalescing, monolithic, steering
from ..workloads import GPU_NAMES, PARSEC_NAMES
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register

#: Panel -> (mitigation builder, side).
PANELS = {
    "fig6a": ("steering", "cpu"),
    "fig6b": ("steering", "gpu"),
    "fig6c": ("coalescing", "cpu"),
    "fig6d": ("coalescing", "gpu"),
    "fig6e": ("monolithic", "cpu"),
    "fig6f": ("monolithic", "gpu"),
}

_BUILDERS = {
    "steering": steering,
    "coalescing": coalescing,
    "monolithic": monolithic,
}


def _panel(
    panel_id: str,
    mitigation_name: str,
    side: str,
    config: SystemConfig,
    cpu_names: List[str],
    gpu_names: List[str],
    horizon_ns: int,
) -> ExperimentResult:
    mitigated = _BUILDERS[mitigation_name](config)
    what = "CPU app" if side == "cpu" else "GPU app"
    result = ExperimentResult(
        experiment_id=panel_id,
        title=f"{what} performance with {mitigation_name} (normalized to default)",
        columns=["cpu_app", *gpu_names],
        notes="both runs have SSRs enabled; 1.0 = default configuration",
    )
    per_gpu: Dict[str, List[float]] = {gpu_name: [] for gpu_name in gpu_names}
    for cpu_name in cpu_names:
        values = []
        for gpu_name in gpu_names:
            if side == "cpu":
                value = cpu_mitigation_ratio(
                    cpu_name, gpu_name, mitigated, config, horizon_ns
                )
            else:
                value = gpu_mitigation_ratio(
                    cpu_name, gpu_name, mitigated, config, horizon_ns
                )
            per_gpu[gpu_name].append(value)
            values.append(value)
        result.add_row(cpu_name, *values)
    result.add_row("gmean", *[geomean(per_gpu[gpu_name]) for gpu_name in gpu_names])
    return result


def _make_runner(panel_id: str):
    mitigation_name, side = PANELS[panel_id]

    def runner(
        config: Optional[SystemConfig] = None,
        cpu_names: Optional[List[str]] = None,
        gpu_names: Optional[List[str]] = None,
        horizon_ns: int = EXPERIMENT_HORIZON_NS,
    ) -> ExperimentResult:
        return _panel(
            panel_id,
            mitigation_name,
            side,
            config or SystemConfig(),
            cpu_names or PARSEC_NAMES,
            gpu_names or GPU_NAMES,
            horizon_ns,
        )

    runner.__name__ = f"run_{panel_id}"
    runner.__doc__ = f"Figure 6 panel {panel_id}: {mitigation_name} ({side} side)."
    return runner


run_fig6a = _make_runner("fig6a")
run_fig6b = _make_runner("fig6b")
run_fig6c = _make_runner("fig6c")
run_fig6d = _make_runner("fig6d")
run_fig6e = _make_runner("fig6e")
run_fig6f = _make_runner("fig6f")

for _panel_id, _runner in (
    ("fig6a", run_fig6a),
    ("fig6b", run_fig6b),
    ("fig6c", run_fig6c),
    ("fig6d", run_fig6d),
    ("fig6e", run_fig6e),
    ("fig6f", run_fig6f),
):
    register(_panel_id)(_runner)
