"""Figure 9: CC6 residency under each mitigation combination (ubench).

The microbenchmark runs alone; the bars report sleep residency with no
SSRs, then with SSRs under each combination.  Paper headlines: 86% with no
SSRs collapsing to 12% by default; steering -> ~50% (only the IRQ core and
the worker core stay awake); the monolithic handler behaves similarly (no
kthread wake-balance IPIs dragging sleeping cores in); coalescing alone
barely helps; all three together reach 57%.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..core import run_workloads
from ..mitigations import ALL_COMBINATIONS, combination
from .common import EXPERIMENT_HORIZON_NS, ExperimentResult, register


@register("fig9")
def run(
    config: Optional[SystemConfig] = None,
    combos: Optional[List[str]] = None,
    gpu_name: str = "ubench",
    horizon_ns: int = EXPERIMENT_HORIZON_NS,
) -> ExperimentResult:
    config = config or SystemConfig()
    combos = combos or list(ALL_COMBINATIONS)
    result = ExperimentResult(
        experiment_id="fig9",
        title="CC6 residency under mitigation combinations (ubench alone)",
        columns=["configuration", "cc6_pct"],
        notes="percent of core-time in CC6; higher is better",
    )
    no_ssr = run_workloads(None, gpu_name, False, config, horizon_ns)
    result.add_row(f"{gpu_name}_no_SSR", no_ssr.cc6_residency * 100.0)
    for label in combos:
        combo_config = combination(config, label)
        metrics = run_workloads(None, gpu_name, True, combo_config, horizon_ns)
        result.add_row(label, metrics.cc6_residency * 100.0)
    return result
