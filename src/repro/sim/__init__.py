"""Discrete-event simulation kernel.

A compact, deterministic engine in the SimPy idiom: generator-driven
processes suspend on events, a global heap orders occurrences by
``(time, priority, insertion)``, and bounded stores provide backpressure.
All higher layers of the reproduction (OS kernel, IOMMU, GPU) are built on
these primitives.
"""

from .environment import EmptySchedule, Environment
from .events import AllOf, AnyOf, Event, Interrupt, Timeout, NORMAL, PENDING, URGENT
from .process import Process
from .resources import Resource
from .rng import RngRegistry, derive_seed
from .store import Store

__all__ = [
    "AllOf",
    "AnyOf",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "NORMAL",
    "PENDING",
    "Process",
    "Resource",
    "RngRegistry",
    "Store",
    "Timeout",
    "URGENT",
    "derive_seed",
]
