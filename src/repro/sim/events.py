"""Core event primitives for the discrete-event simulation kernel.

The simulation kernel is a small, self-contained engine in the style of
SimPy: an :class:`Event` is a one-shot occurrence that callbacks can attach
to, a :class:`Timeout` is an event scheduled a fixed delay in the future, and
conditions (:class:`AnyOf` / :class:`AllOf`) compose events.

Simulated time is kept in integer nanoseconds by convention (the engine
itself only requires a comparable, addable number type).
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, List, Optional

#: Sentinel for "event has not been triggered yet".
PENDING = object()

#: Scheduling priority for interrupts and other must-run-first occurrences.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Interrupt(Exception):
    """Raised inside a process when another actor interrupts it.

    The ``cause`` attribute carries an arbitrary, caller-supplied payload
    describing why the interruption happened (for example, an IRQ vector or
    a preemption notice).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot occurrence within an :class:`~repro.sim.environment.Environment`.

    Lifecycle: *pending* -> *triggered* (a value or failure is set and the
    event is scheduled) -> *processed* (its callbacks have run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked with this event when it is processed.  ``None``
        #: once the event has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise RuntimeError("event has not been triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` (or the failure exception)."""
        if self._value is PENDING:
            raise RuntimeError("event has not been triggered")
        return self._value

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now, priority, eid, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters will see ``exception`` raised."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now, priority, eid, self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine does not re-raise it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        if self.processed:
            state += ",processed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        env._eid = eid = env._eid + 1
        heappush(env._queue, (env._now + delay, NORMAL, eid, self))


class AnyOf(Event):
    """Succeeds as soon as the first of ``events`` is triggered.

    The value of the condition is the sub-event that fired first.  If a
    sub-event *fails*, the condition succeeds with that failed event as its
    value (and defuses it); the waiter is responsible for inspecting it.
    """

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        for event in self.events:
            if event.processed:
                if not event.ok:
                    event.defuse()
                if not self.triggered:
                    self.succeed(event)
            elif not self.triggered:
                # Not processed yet (even if already triggered, its callbacks
                # run at its scheduled time, e.g. a Timeout's expiry).  Once
                # the condition has fired there is no point subscribing to
                # the remaining events: on long-lived events the callbacks
                # would pile up and slow every later dispatch.
                event.callbacks.append(self._on_trigger)

    def _on_trigger(self, event: Event) -> None:
        if not event.ok:
            event.defuse()
        if not self.triggered:
            self.succeed(event)
            # Detach from the still-pending siblings; a long-lived event
            # should not accumulate dead condition callbacks.
            for other in self.events:
                if other is not event and other.callbacks is not None:
                    try:
                        other.callbacks.remove(self._on_trigger)
                    except ValueError:
                        pass


class AllOf(Event):
    """Succeeds once every one of ``events`` has been processed.

    The value is the list of sub-events, in the order given.  A failed
    sub-event fails the condition with the sub-event's exception.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._remaining = 0
        for event in self.events:
            if event.processed:
                continue
            self._remaining += 1
            event.callbacks.append(self._on_trigger)
        if self._remaining == 0:
            self._finish()

    def _on_trigger(self, event: Event) -> None:
        self._remaining -= 1
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        if self._remaining == 0:
            self._finish()

    def _finish(self) -> None:
        failed = [event for event in self.events if event.triggered and not event.ok]
        if failed:
            failed[0].defuse()
            self.fail(failed[0].value)
        else:
            self.succeed(list(self.events))
