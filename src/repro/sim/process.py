"""Generator-driven simulation processes.

A :class:`Process` wraps a Python generator.  The generator advances by
yielding :class:`~repro.sim.events.Event` objects; the process suspends until
the yielded event is processed and then resumes with the event's value (or
with the event's exception raised at the yield point).

Processes are themselves events: they trigger when the generator returns,
with the generator's return value as payload.  This makes ``yield process``
a natural join operation.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .events import NORMAL, PENDING, URGENT, Event, Interrupt


class Process(Event):
    """A running simulation process (also an event: fires at termination)."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently suspended on.
        self._target: Optional[Event] = None
        bootstrap = Event(env)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks.append(self._resume)
        env.schedule(bootstrap, delay=0, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is a silent no-op, which lets callers
        fire-and-forget preemption notices without racing on liveness.
        """
        if not self.is_alive:
            return
        interruptor = Event(self.env)
        interruptor._ok = True
        interruptor._value = cause
        interruptor.callbacks.append(self._deliver_interrupt)
        self.env.schedule(interruptor, delay=0, priority=URGENT)

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _deliver_interrupt(self, interruptor: Event) -> None:
        if not self.is_alive:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._advance(throw=Interrupt(interruptor._value))

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._advance(send=event._value)
        else:
            event.defuse()
            self._advance(throw=event._value)

    def _advance(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        """Drive the generator until it suspends on a pending event or ends."""
        generator = self._generator
        while True:
            try:
                if throw is not None:
                    target = generator.throw(throw)
                else:
                    target = generator.send(send)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                self.env.schedule(self, delay=0, priority=NORMAL)
                return
            except Interrupt as exc:
                # An unhandled Interrupt escaping a process is a bug in the
                # process code; surface it as a failure.
                self._ok = False
                self._value = RuntimeError(
                    f"process {self.name!r} did not handle {exc!r}"
                )
                self.env.schedule(self, delay=0, priority=NORMAL)
                return
            except BaseException as exc:
                self._ok = False
                self._value = exc
                self.env.schedule(self, delay=0, priority=NORMAL)
                return

            if not isinstance(target, Event):
                throw = TypeError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
                send = None
                continue
            if target is self:
                throw = ValueError("a process cannot wait on itself")
                send = None
                continue
            if target.callbacks is not None:
                # Pending, or triggered but not yet processed: suspend.
                target.callbacks.append(self._resume)
                self._target = target
                return
            # Already processed: consume its outcome immediately.
            if target._ok:
                send, throw = target._value, None
            else:
                target.defuse()
                send, throw = None, target._value
