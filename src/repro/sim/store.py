"""FIFO stores with optional capacity bounds.

A :class:`Store` holds items; ``put`` and ``get`` return events.  A bounded
store is the simulator's backpressure primitive: when it is full, ``put``
events stay pending, which stalls the producing process — exactly how a
hardware queue with finite entries (e.g., the IOMMU's peripheral page
request queue, or a GPU's outstanding-fault table) throttles its producer.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Optional, Tuple

from .events import Event


class Store:
    """An ordered item store with blocking put/get semantics."""

    def __init__(self, env, capacity: float = math.inf):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        """True when a new ``put`` would have to wait."""
        return len(self.items) >= self.capacity

    @property
    def pending_puts(self) -> int:
        """Number of producers currently blocked on a full store."""
        return len(self._putters)

    @property
    def pending_gets(self) -> int:
        """Number of consumers currently blocked on an empty store."""
        return len(self._getters)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event fires once it is accepted."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._dispatch()
        return event

    def get(self) -> Event:
        """Remove the oldest item; the returned event fires with the item."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put: returns False instead of waiting when full."""
        if self.is_full or self._putters:
            return False
        self.put(item)
        return True

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get: ``(False, None)`` when nothing is available."""
        if not self.items or self._getters:
            return False, None
        item = self.items.popleft()
        self._dispatch()
        return True, item

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending put/get event (e.g., after a timeout race).

        Returns True if the event was found and removed; False if it had
        already been satisfied (in which case the caller owns its outcome).
        """
        for queue in (self._getters,):
            try:
                queue.remove(event)
                return True
            except ValueError:
                pass
        for entry in list(self._putters):
            if entry[0] is event:
                self._putters.remove(entry)
                return True
        return False

    def drain(self) -> list:
        """Remove and return all currently stored items (no event plumbing)."""
        items = list(self.items)
        self.items.clear()
        self._dispatch()
        return items

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        moved = True
        while moved:
            moved = False
            while self._putters and len(self.items) < self.capacity:
                event, item = self._putters.popleft()
                self.items.append(item)
                event.succeed()
                moved = True
            while self._getters and self.items:
                self._getters.popleft().succeed(self.items.popleft())
                moved = True
