"""The simulation environment: clock, event heap, and run loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from ..telemetry import NULL_TRACER
from .events import NORMAL, AllOf, AnyOf, Event, Timeout


class EmptySchedule(Exception):
    """Raised internally when the event heap runs dry."""


class Environment:
    """A discrete-event simulation environment.

    Time is a monotonically non-decreasing number (integer nanoseconds by
    convention throughout this project).  Events are processed in
    ``(time, priority, insertion order)`` order, which makes runs fully
    deterministic.
    """

    def __init__(self, initial_time: int = 0):
        self._now = initial_time
        self._queue: List[Tuple[Any, int, int, Event]] = []
        self._eid = 0
        #: Telemetry sink (never affects scheduling; NULL_TRACER is a no-op).
        self.tracer = NULL_TRACER

    @property
    def now(self):
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # Event creation helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create a condition that fires when the first of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create a condition that fires when all of ``events`` have."""
        return AllOf(self, events)

    def process(self, generator: Generator) -> "Process":
        """Start a new process driving ``generator``."""
        from .process import Process

        return Process(self, generator)

    def call_at(self, when, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute time ``when`` (must not be in the past)."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        return self.call_later(when - self._now, fn)

    def call_later(self, delay, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` time units."""
        timeout = self.timeout(delay)
        timeout.callbacks.append(lambda _event: fn())
        return timeout

    # ------------------------------------------------------------------
    # Scheduling and the run loop
    # ------------------------------------------------------------------
    def schedule(self, event: Event, delay=0, priority: int = NORMAL) -> None:
        """Schedule a triggered ``event`` for processing ``delay`` from now."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self):
        """Return the time of the next scheduled event (or ``None``)."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        try:
            when, _priority, _eid, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until=None) -> None:
        """Run until the heap is empty or simulated time exceeds ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return, even if no event lands on that instant.

        This is the simulator's hottest loop, so :meth:`step` is inlined
        here with the heap, pop, and bound checks held in locals — the
        behaviour is identical, event for event.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        start = self._now
        queue = self._queue
        pop = heapq.heappop
        if until is None:
            while queue:
                when, _priority, _eid, event = pop(queue)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
        else:
            while queue and queue[0][0] <= until:
                when, _priority, _eid, event = pop(queue)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
        if until is not None and self._now < until:
            self._now = until
        if self.tracer.enabled:
            self.tracer.span(
                "sim.run", "sim", "sim", start, self._now,
                args={"events_pending": len(self._queue)},
            )

    def run_until_event(self, event: Event, limit=None) -> Any:
        """Run until ``event`` is processed; return its value.

        ``limit`` optionally bounds simulated time; exceeding it raises
        :class:`TimeoutError`.

        The dispatch loop is inlined the same way :meth:`run` inlines
        :meth:`step` — heap, pop, and bound checks in locals — and
        processes events in the identical order.
        """
        queue = self._queue
        pop = heapq.heappop
        while not event.processed:
            if not queue:
                raise RuntimeError("schedule ran dry before the event fired")
            if limit is not None and queue[0][0] > limit:
                raise TimeoutError(f"event did not fire by t={limit}")
            when, _priority, _eid, ready = pop(queue)
            self._now = when
            callbacks, ready.callbacks = ready.callbacks, None
            for callback in callbacks:
                callback(ready)
            if ready._ok is False and not ready._defused:
                raise ready._value
        if not event.ok:
            event.defuse()
            raise event.value
        return event.value
