"""Deterministic, named random-number streams.

Every stochastic component of the simulator draws from its own named
stream derived from a single master seed.  Components therefore stay
statistically independent, and adding a new consumer never perturbs the
draws seen by existing ones — a property the calibration tests rely on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed for ``name`` from ``master_seed``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A factory for named, reproducible :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry whose master seed depends on ``name``."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
