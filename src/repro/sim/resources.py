"""Counting resources with FIFO queueing.

A :class:`Resource` models mutual exclusion over ``capacity`` identical
units (locks when ``capacity == 1``).  Requests are granted strictly in
arrival order, keeping simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from .events import Event


class Resource:
    """A counting resource; ``request()``/``release()`` bracket usage."""

    def __init__(self, env, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of units currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiters)

    def request(self) -> Event:
        """Acquire one unit; the returned event fires once granted."""
        event = Event(self.env)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            # Hand the unit directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending request (returns False if already granted)."""
        try:
            self._waiters.remove(event)
            return True
        except ValueError:
            return False
