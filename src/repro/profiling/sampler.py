"""Fixed-interval sim-time sampling into a bounded ring.

The ledger answers *who paid* — the sampler answers *when*: per-core
execution mode, PPR queue depth, outstanding-SSR count, and cumulative
CC6 residency captured at a fixed simulated-time interval, so the HTML
report can draw a timeline strip of a run.

Two properties matter:

* **Determinism** — samples are taken by ``env.call_later`` callbacks
  that only *read* simulator state.  Inserted timer events shift event
  ids uniformly, so tie-breaking order between all other events is
  preserved, and since a sample mutates nothing, a sampled run is
  bit-for-bit identical to an unsampled one.
* **Bounded memory with deterministic downsampling** — when the ring
  fills, every other retained sample is dropped and the sampling
  interval doubles.  The decimation points depend only on simulated
  time, never on wall clock, so the same run always yields the same
  timeline.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

from ..oskernel import accounting as acct

if TYPE_CHECKING:  # pragma: no cover
    from ..core.system import System

__all__ = ["DEFAULT_SAMPLE_INTERVAL_NS", "DEFAULT_SAMPLER_CAPACITY", "MODE_CODES", "SimSampler"]

#: Default sampling cadence (sim time).  100 µs over a 20 ms experiment
#: horizon yields 200 samples — well under the default ring capacity.
DEFAULT_SAMPLE_INTERVAL_NS = 100_000

#: Default ring capacity (samples retained before decimation).
DEFAULT_SAMPLER_CAPACITY = 4096

#: One-character codes for per-core modes (a row stores one char per core).
MODE_CODES: Dict[str, str] = {
    acct.USER: "u",
    acct.KERNEL: "k",
    acct.IRQ: "q",
    acct.SWITCH: "s",
    acct.IDLE: "i",
    acct.TRANSITION: "t",
    acct.CC6: "c",
}

#: Column names of one sample row, in storage order.
SAMPLE_COLUMNS = ("ts_ns", "core_modes", "ppr_depth", "outstanding_ssrs", "cc6_ns")


class SimSampler:
    """Periodic read-only snapshots of a running :class:`System`."""

    def __init__(
        self,
        interval_ns: int = DEFAULT_SAMPLE_INTERVAL_NS,
        capacity: int = DEFAULT_SAMPLER_CAPACITY,
    ):
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        if capacity < 16:
            raise ValueError(f"capacity must be >= 16, got {capacity}")
        self.initial_interval_ns = interval_ns
        self.interval_ns = interval_ns
        self.capacity = capacity
        self.samples: List[Tuple] = []
        #: Times the ring overflowed and was decimated (interval doubled).
        self.decimations = 0
        self._system = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, system: "System") -> None:
        """Begin the tick chain on ``system``'s environment."""
        if self._system is not None:
            raise RuntimeError("sampler already attached to a system")
        self._system = system
        system.env.call_later(self.interval_ns, self._tick)

    def _tick(self) -> None:
        self.samples.append(self._snapshot())
        if len(self.samples) >= self.capacity:
            # Deterministic decimation: keep every other sample, double
            # the cadence.  Each row carries its own timestamp, so the
            # irregular spacing at the decimation boundary is harmless.
            self.samples = self.samples[::2]
            self.interval_ns *= 2
            self.decimations += 1
        self._system.env.call_later(self.interval_ns, self._tick)

    # ------------------------------------------------------------------
    # Snapshot (strictly read-only)
    # ------------------------------------------------------------------
    def _snapshot(self) -> Tuple:
        system = self._system
        kernel = system.kernel
        now = system.env.now
        modes = []
        cc6_ns = kernel.accounting.total(acct.CC6)
        for core in kernel.cores:
            segment = core._segment
            if segment is None:
                modes.append(MODE_CODES[acct.IDLE])
            else:
                modes.append(MODE_CODES.get(segment[0], "?"))
                if segment[0] == acct.CC6:
                    # The in-flight sleep segment is not yet in the closed
                    # totals; include its elapsed part so residency is
                    # monotone instead of jumping at each wake.
                    cc6_ns += now - segment[1]
        outstanding = (
            kernel.counters.get(acct.CTR_SSR_REQUEST) - kernel.ssr_accounting.completed
        )
        return (
            now,
            "".join(modes),
            len(system.iommu.ppr_queue),
            outstanding,
            cc6_ns,
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "interval_ns": self.interval_ns,
            "initial_interval_ns": self.initial_interval_ns,
            "capacity": self.capacity,
            "decimations": self.decimations,
            "columns": list(SAMPLE_COLUMNS),
            "mode_codes": {mode: code for mode, code in MODE_CODES.items()},
            "rows": [list(row) for row in self.samples],
        }
