"""``hiss-report``: render and inspect interference profiles.

Subcommands::

    hiss-report render profile.json -o report.html --collapsed flame.txt
    hiss-report summary profile.json       # text attribution table
    hiss-report validate profile.json      # schema + conservation check

Profiles are produced by ``hiss-experiments ... --profile profile.json``
or fetched from a running service with ``hiss-client profile <job-id>``.
The ``--collapsed`` output is collapsed-stack format, directly consumable
by flamegraph.pl or speedscope; the HTML report is fully self-contained
(inline CSS/SVG, embedded raw JSON).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any

from ..version import add_version_flag
from .flamegraph import write_collapsed
from .profiler import profile_runs, validate_profile
from .report import text_summary, write_html


def _load(path: str) -> Any:
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as error:
        raise SystemExit(f"hiss-report: cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        raise SystemExit(f"hiss-report: {path} is not valid JSON: {error}")


def _checked(path: str) -> Any:
    document = _load(path)
    problems = validate_profile(document)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        raise SystemExit(2)
    return document


def _cmd_render(args: argparse.Namespace) -> int:
    document = _checked(args.profile)
    runs = profile_runs(document)
    entries = sum(len(r.get("ledger", {}).get("entries", [])) for r in runs)
    size = write_html(document, args.output, title=args.title)
    print(f"wrote {args.output} ({size} bytes, {len(runs)} run(s), {entries} attribution cells)")
    if args.collapsed:
        lines = write_collapsed(document, args.collapsed)
        print(f"wrote {args.collapsed} ({lines} collapsed stacks)")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    print(text_summary(_checked(args.profile)))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    document = _load(args.profile)
    problems = validate_profile(document)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    runs = profile_runs(document)
    entries = sum(len(r.get("ledger", {}).get("entries", [])) for r in runs)
    samples = sum(len(r.get("samples", {}).get("rows", [])) for r in runs)
    print(
        f"OK: {args.profile} ({len(runs)} run(s), {entries} attribution cells, "
        f"{samples} samples, conservation holds)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="hiss-report",
        description="Render and inspect HISS interference-attribution profiles.",
    )
    add_version_flag(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    render = sub.add_parser("render", help="write the self-contained HTML report")
    render.add_argument("profile", help="profile JSON (bundle or single run)")
    render.add_argument("-o", "--output", default="report.html", help="HTML output path")
    render.add_argument(
        "--collapsed", metavar="FILE",
        help="also write collapsed-stack flamegraph input to FILE",
    )
    render.add_argument(
        "--title", default="HISS interference profile", help="report page title"
    )
    render.set_defaults(func=_cmd_render)

    summary = sub.add_parser("summary", help="print a text attribution table")
    summary.add_argument("profile", help="profile JSON (bundle or single run)")
    summary.set_defaults(func=_cmd_summary)

    validate = sub.add_parser(
        "validate", help="schema + conservation check; exit 1 on problems"
    )
    validate.add_argument("profile", help="profile JSON (bundle or single run)")
    validate.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (e.g. `summary | head`).
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
