"""Self-contained single-file HTML report for interference profiles.

Renders a profile bundle (or a single run document) into one HTML file
with zero external dependencies — inline CSS, server-side-generated
inline SVG for the timeline strip, and the raw profile JSON embedded in a
``<script type="application/json">`` block so downstream tooling can
recover the exact data from the report alone.

Sections mirror the paper's presentation:

* **Attribution table** (à la Table 1): stolen ns per SSR source and
  channel, with each service channel's share of the SSR accumulator.
* **Per-app blame** (à la Fig. 3): how much time each victim application
  lost, split by channel, as horizontal bars.
* **Timeline strip** (per run): per-core mode bands plus the PPR queue
  depth curve, from the sim-time sampler.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Tuple

from .ledger import ALL_CHANNELS, SIDE_CHANNELS, SSR_SERVICE_CHANNELS
from .profiler import profile_runs

__all__ = [
    "aggregate_app_blame",
    "aggregate_attribution",
    "render_html",
    "text_summary",
    "write_html",
]

#: Timeline band colors per mode code (see ``sampler.MODE_CODES``).
_MODE_COLORS = {
    "u": "#4c78a8",  # user
    "k": "#e45756",  # kernel
    "q": "#f58518",  # irq
    "s": "#b279a2",  # switch
    "i": "#e8e8e8",  # idle
    "t": "#f2cf5b",  # transition
    "c": "#2f2f2f",  # cc6
    "?": "#ffffff",
}

_MODE_LEGEND = (
    ("u", "user"), ("k", "kernel"), ("q", "irq"), ("s", "switch"),
    ("i", "idle"), ("t", "transition"), ("c", "cc6"),
)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def aggregate_attribution(document: Dict) -> List[Dict]:
    """Rows of (ssr, channel) -> ns across all runs, largest first."""
    cells: Dict[Tuple[str, str], float] = {}
    for run in profile_runs(document):
        for entry in run.get("ledger", {}).get("entries", []):
            key = (entry["ssr"], entry["channel"])
            cells[key] = cells.get(key, 0) + entry["ns"]
    service_total = sum(
        ns for (_, channel), ns in cells.items() if channel in SSR_SERVICE_CHANNELS
    )
    rows = [
        {
            "ssr": ssr,
            "channel": channel,
            "family": "service" if channel in SSR_SERVICE_CHANNELS else "side",
            "ns": ns,
            "share": (ns / service_total)
            if channel in SSR_SERVICE_CHANNELS and service_total
            else None,
        }
        for (ssr, channel), ns in cells.items()
    ]
    rows.sort(key=lambda r: (-r["ns"], r["ssr"], r["channel"]))
    return rows


def aggregate_app_blame(document: Dict) -> List[Dict]:
    """Per victim app: total stolen ns and a by-channel breakdown."""
    blame: Dict[str, Dict[str, float]] = {}
    for run in profile_runs(document):
        for entry in run.get("ledger", {}).get("entries", []):
            per_channel = blame.setdefault(entry["app"], {})
            per_channel[entry["channel"]] = (
                per_channel.get(entry["channel"], 0) + entry["ns"]
            )
    rows = [
        {
            "app": app,
            "total_ns": sum(per_channel.values()),
            "channels": {
                channel: per_channel[channel]
                for channel in ALL_CHANNELS
                if channel in per_channel
            },
        }
        for app, per_channel in blame.items()
    ]
    rows.sort(key=lambda r: (-r["total_ns"], r["app"]))
    return rows


def _fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f} µs"
    return f"{ns:.0f} ns"


# ----------------------------------------------------------------------
# Text summary (hiss-report summary / render chatter)
# ----------------------------------------------------------------------
def text_summary(document: Dict) -> str:
    runs = profile_runs(document)
    lines = [f"profile: {len(runs)} run(s)"]
    ssr_total = sum(run.get("ssr_time_ns", 0) for run in runs)
    lines.append(f"SSR service time: {_fmt_ns(ssr_total)} across all runs")
    lines.append("")
    lines.append(f"{'ssr':<18} {'channel':<12} {'family':<8} {'stolen':>12} {'share':>7}")
    for row in aggregate_attribution(document):
        share = f"{row['share'] * 100:.1f}%" if row["share"] is not None else "-"
        lines.append(
            f"{row['ssr']:<18} {row['channel']:<12} {row['family']:<8} "
            f"{_fmt_ns(row['ns']):>12} {share:>7}"
        )
    lines.append("")
    lines.append(f"{'victim app':<22} {'stolen':>12}")
    for row in aggregate_app_blame(document):
        lines.append(f"{row['app']:<22} {_fmt_ns(row['total_ns']):>12}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Timeline SVG
# ----------------------------------------------------------------------
def _timeline_svg(run: Dict, width: int = 860) -> str:
    samples = run.get("samples", {})
    rows = samples.get("rows") or []
    if not rows:
        return "<p class='muted'>no samples recorded</p>"
    horizon = run.get("horizon_ns") or rows[-1][0]
    num_cores = run.get("num_cores") or len(rows[0][1])
    band_h, gap, depth_h = 14, 3, 48
    left = 64
    height = num_cores * (band_h + gap) + depth_h + 34
    scale = (width - left - 8) / max(1, horizon)
    parts = [
        f"<svg viewBox='0 0 {width} {height}' width='{width}' height='{height}' "
        f"xmlns='http://www.w3.org/2000/svg' role='img'>"
    ]
    # Per-core mode bands: each sample colors [ts, next_ts).
    for core in range(num_cores):
        y = core * (band_h + gap)
        parts.append(
            f"<text x='4' y='{y + band_h - 3}' font-size='10' fill='#555'>core {core}</text>"
        )
        for index, row in enumerate(rows):
            code = row[1][core] if core < len(row[1]) else "?"
            # A sample at ts describes the state from the previous sample
            # (or 0) up to the next one; the first sample also covers the
            # lead-in so the band starts at t=0.
            seg_start = 0 if index == 0 else row[0]
            seg_end = rows[index + 1][0] if index + 1 < len(rows) else horizon
            x = left + seg_start * scale
            w = max(0.5, (seg_end - seg_start) * scale)
            color = _MODE_COLORS.get(code, "#fff")
            parts.append(
                f"<rect x='{x:.1f}' y='{y}' width='{w:.1f}' height='{band_h}' "
                f"fill='{color}'/>"
            )
    # PPR depth polyline.
    depth_y0 = num_cores * (band_h + gap) + 14
    max_depth = max(1, max(row[2] for row in rows))
    points = " ".join(
        f"{left + row[0] * scale:.1f},{depth_y0 + depth_h - (row[2] / max_depth) * depth_h:.1f}"
        for row in rows
    )
    parts.append(
        f"<text x='4' y='{depth_y0 + 10}' font-size='10' fill='#555'>ppr depth</text>"
    )
    parts.append(
        f"<text x='4' y='{depth_y0 + 22}' font-size='10' fill='#999'>max {max_depth}</text>"
    )
    parts.append(
        f"<rect x='{left}' y='{depth_y0}' width='{width - left - 8}' height='{depth_h}' "
        f"fill='#fafafa' stroke='#ddd'/>"
    )
    parts.append(
        f"<polyline points='{points}' fill='none' stroke='#4c78a8' stroke-width='1.2'/>"
    )
    parts.append(
        f"<text x='{left}' y='{height - 6}' font-size='10' fill='#555'>0</text>"
        f"<text x='{width - 60}' y='{height - 6}' font-size='10' fill='#555'>"
        f"{horizon / 1e6:g} ms</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# HTML assembly
# ----------------------------------------------------------------------
_CSS = """
body { font: 14px/1.45 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 960px; color: #222; padding: 0 1em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.8em; }
table { border-collapse: collapse; width: 100%; margin: 0.6em 0; }
th, td { text-align: left; padding: 4px 10px; border-bottom: 1px solid #e5e5e5;
         font-variant-numeric: tabular-nums; }
th { background: #f7f7f7; font-weight: 600; }
td.num, th.num { text-align: right; }
.muted { color: #888; } .mono { font-family: ui-monospace, monospace; }
.bar { background: #4c78a8; height: 11px; display: inline-block;
       vertical-align: middle; border-radius: 2px; }
.side { color: #946; }
.legend span { display: inline-block; margin-right: 1em; font-size: 12px; }
.legend i { display: inline-block; width: 11px; height: 11px;
            margin-right: 4px; vertical-align: -1px; }
"""


def render_html(document: Dict, title: str = "HISS interference profile") -> str:
    """Render ``document`` (bundle or run) as one self-contained page."""
    runs = profile_runs(document)
    attribution = aggregate_attribution(document)
    blame = aggregate_app_blame(document)
    ssr_total = sum(run.get("ssr_time_ns", 0) for run in runs)
    side_total = sum(row["ns"] for row in attribution if row["family"] == "side")
    completed = sum(run.get("ssr_completed", 0) for run in runs)
    core_time = sum(
        run.get("horizon_ns", 0) * run.get("num_cores", 0) for run in runs
    )

    out: List[str] = []
    e = html.escape
    out.append("<!doctype html><html lang='en'><head><meta charset='utf-8'>")
    out.append(f"<title>{e(title)}</title><style>{_CSS}</style></head><body>")
    out.append(f"<h1>{e(title)}</h1>")
    out.append(
        "<p>"
        f"{len(runs)} run(s) &middot; {completed} SSRs completed &middot; "
        f"service time {e(_fmt_ns(ssr_total))} &middot; "
        f"side-channel interference {e(_fmt_ns(side_total))}"
        + (
            f" &middot; {ssr_total / core_time * 100:.2f}% of machine time"
            if core_time
            else ""
        )
        + "</p>"
    )

    # --- Attribution table (Table 1 analogue) -------------------------
    out.append("<h2>Attribution: who stole the time, and how</h2>")
    out.append(
        "<table><thead><tr><th>SSR source</th><th>channel</th><th>family</th>"
        "<th class='num'>stolen</th><th class='num'>share of SSR time</th>"
        "</tr></thead><tbody>"
    )
    for row in attribution:
        share = f"{row['share'] * 100:.1f}%" if row["share"] is not None else "&mdash;"
        family = (
            "service"
            if row["family"] == "service"
            else "<span class='side'>side</span>"
        )
        out.append(
            f"<tr><td class='mono'>{e(str(row['ssr']))}</td>"
            f"<td class='mono'>{e(row['channel'])}</td><td>{family}</td>"
            f"<td class='num'>{e(_fmt_ns(row['ns']))}</td>"
            f"<td class='num'>{share}</td></tr>"
        )
    if not attribution:
        out.append("<tr><td colspan='5' class='muted'>no attribution entries</td></tr>")
    out.append("</tbody></table>")
    out.append(
        "<p class='muted'>Service channels reconcile exactly with the kernel's "
        "SSR time accumulator; side channels (IPIs, mode switches, CC6 wakeups, "
        "µarch pollution stalls) are interference accounted in other buckets.</p>"
    )

    # --- Per-app blame (Fig. 3 analogue) ------------------------------
    out.append("<h2>Per-app blame: who paid</h2>")
    max_blame = max((row["total_ns"] for row in blame), default=0)
    out.append(
        "<table><thead><tr><th>victim app</th><th class='num'>stolen</th>"
        "<th style='width:45%'></th><th>by channel</th></tr></thead><tbody>"
    )
    for row in blame:
        bar = int(260 * row["total_ns"] / max_blame) if max_blame else 0
        channels = ", ".join(
            f"{channel} {_fmt_ns(ns)}" for channel, ns in row["channels"].items()
        )
        out.append(
            f"<tr><td class='mono'>{e(row['app'])}</td>"
            f"<td class='num'>{e(_fmt_ns(row['total_ns']))}</td>"
            f"<td><span class='bar' style='width:{max(bar, 2)}px'></span></td>"
            f"<td class='muted'>{e(channels)}</td></tr>"
        )
    if not blame:
        out.append("<tr><td colspan='4' class='muted'>no victims charged</td></tr>")
    out.append("</tbody></table>")

    # --- Timelines ----------------------------------------------------
    out.append("<h2>Timeline strips</h2>")
    out.append("<p class='legend'>")
    for code, name in _MODE_LEGEND:
        out.append(
            f"<span><i style='background:{_MODE_COLORS[code]}'></i>{name}</span>"
        )
    out.append("</p>")
    for run in runs[:6]:
        out.append(f"<h3 class='mono'>{e(str(run.get('run', '?')))}</h3>")
        out.append(_timeline_svg(run))
    if len(runs) > 6:
        out.append(
            f"<p class='muted'>({len(runs) - 6} more run(s) in the embedded data)</p>"
        )

    # --- Embedded raw data --------------------------------------------
    payload = json.dumps(document, sort_keys=True).replace("</", "<\\/")
    out.append(
        "<script type='application/json' id='hiss-profile-data'>"
        f"{payload}</script>"
    )
    out.append("</body></html>")
    return "".join(out)


def write_html(document: Dict, path: str, title: str = "HISS interference profile") -> int:
    """Write the rendered report to ``path``; returns the byte count."""
    text = render_html(document, title=title)
    data = text.encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)
