"""The interference ledger: every stolen nanosecond gets an owner.

The paper's contribution is *attribution* — which SSR stole how much CPU
time, through which mechanism, from which victim.  The simulator already
accounts every nanosecond (``oskernel.accounting``) and tallies the SSR
total for the QoS governor; this module splits that total (and the
indirect channels the accumulator deliberately excludes) by a
``(ssr, channel, victim, core)`` key.

Channels come in two families:

* **Service channels** — CPU time spent *executing* SSR handling code.
  These are exactly the sites that feed ``SsrAccounting`` (through
  :meth:`repro.oskernel.kernel.Kernel.charge_ssr`), so the conservation
  invariant holds *by construction*: the sum over service-channel cells
  equals ``SsrAccounting.total_ns`` to the last nanosecond.
* **Side channels** — costs the SSR *causes* but that are accounted
  elsewhere (IPI receive cost, user<->kernel mode crossings around an SSR
  interrupt, CC6 exit latency paid to wake for an SSR, and µarch
  pollution stall repaid inside victim segments).  These are tracked in
  the same ledger but excluded from the conservation check.

The zero-overhead contract mirrors the tracer's: instrumentation sites
hold a ledger reference and guard with ``if ledger.enabled:``; the
default :data:`NULL_LEDGER` makes a disabled run pay one attribute load
and one branch per site.  Charging never schedules simulation events and
never consumes randomness, so a profiled run is bit-for-bit identical to
an unprofiled one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "ALL_CHANNELS",
    "CH_BOTTOM_HALF",
    "CH_CC6_WAKEUP",
    "CH_ENQUEUE",
    "CH_IPI",
    "CH_MODE_SWITCH",
    "CH_POLL",
    "CH_POLLUTION",
    "CH_TOP_HALF",
    "CH_WORKER",
    "InterferenceLedger",
    "NO_VICTIM",
    "NULL_LEDGER",
    "NullLedger",
    "SIDE_CHANNELS",
    "SSR_SERVICE_CHANNELS",
    "victim_app",
]

#: Service channels: CPU time executing SSR handling code.  Their ledger
#: sum reconciles exactly with ``SsrAccounting.total_ns``.
CH_TOP_HALF = "top_half"  # hard-IRQ top half of an SSR interrupt
CH_BOTTOM_HALF = "bottom_half"  # bottom-half pre-processing (kthread or poller)
CH_ENQUEUE = "enqueue"  # work-queue insertion cost
CH_WORKER = "worker"  # kworker servicing of one SSR item
CH_POLL = "poll"  # empty-poll register reads (polled mode)

SSR_SERVICE_CHANNELS = (CH_TOP_HALF, CH_BOTTOM_HALF, CH_ENQUEUE, CH_WORKER, CH_POLL)

#: Side channels: interference the SSR causes that lands in *other*
#: accounting buckets (IRQ/switch/transition modes, victim stall time).
CH_IPI = "ipi"  # resched/wake IPI receive cost
CH_MODE_SWITCH = "mode_switch"  # user<->kernel crossings around SSR IRQ drains
CH_CC6_WAKEUP = "cc6_wakeup"  # CC6 exit latency paid to wake for an SSR
CH_POLLUTION = "pollution"  # µarch pollution stall repaid by victims

SIDE_CHANNELS = (CH_IPI, CH_MODE_SWITCH, CH_CC6_WAKEUP, CH_POLLUTION)

ALL_CHANNELS = SSR_SERVICE_CHANNELS + SIDE_CHANNELS
_CHANNEL_SET = frozenset(ALL_CHANNELS)
_SERVICE_SET = frozenset(SSR_SERVICE_CHANNELS)

#: Placeholder victim for charges with no displaced thread (e.g. work
#: queued to an empty core, enqueue cost).
NO_VICTIM = "-"


def victim_app(thread_name: Optional[str]) -> str:
    """Collapse a thread name to the application it belongs to.

    ``blackscholes/3`` -> ``blackscholes`` (CPU app worker threads),
    ``gpu-host/bfs`` stays whole (the GPU's host runtime thread *is* the
    app's CPU presence), kernel threads collapse to ``kernel``, and the
    swapper to ``idle``.
    """
    if not thread_name or thread_name == NO_VICTIM:
        return NO_VICTIM
    if thread_name.startswith("swapper/"):
        return "idle"
    if thread_name.startswith(("kworker/", "iommu/", "kdaemon", "tick/")):
        return "kernel"
    if thread_name.startswith("gpu-host/"):
        return thread_name
    return thread_name.split("/", 1)[0]


class InterferenceLedger:
    """Blame accumulator keyed by ``(ssr, channel, victim, core)``.

    ``ssr`` is a stable label for the *cause* — the IRQ name for
    top-half/IPI charges (``iommu-ppr``, ``gpu-signal``), the SSR kind
    for worker-stage charges (``page_fault``, ``signal``, ...).
    ``victim`` is the displaced thread's name (:data:`NO_VICTIM` when the
    charge displaced no one).
    """

    enabled = True

    def __init__(self):
        self._cells: Dict[Tuple[str, str, str, int], float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def charge(
        self,
        ssr: str,
        channel: str,
        victim: Optional[str],
        core_id: int,
        ns: float,
    ) -> None:
        """Charge ``ns`` of stolen time to one attribution cell."""
        if ns < 0:
            raise ValueError(f"ledger charge: negative duration {ns}")
        if channel not in _CHANNEL_SET:
            raise ValueError(f"ledger charge: unknown channel {channel!r}")
        key = (ssr, channel, victim or NO_VICTIM, core_id)
        cells = self._cells
        cells[key] = cells.get(key, 0) + ns

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cells)

    def channel_total(self, channel: str) -> float:
        if channel not in _CHANNEL_SET:
            raise ValueError(f"unknown channel {channel!r}")
        return sum(ns for (_, ch, _, _), ns in self._cells.items() if ch == channel)

    def channel_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {channel: 0 for channel in ALL_CHANNELS}
        for (_, channel, _, _), ns in self._cells.items():
            totals[channel] += ns
        return totals

    def service_total_ns(self) -> float:
        """Sum over service channels — must equal ``SsrAccounting.total_ns``."""
        return sum(
            ns for (_, channel, _, _), ns in self._cells.items()
            if channel in _SERVICE_SET
        )

    def side_total_ns(self) -> float:
        return sum(
            ns for (_, channel, _, _), ns in self._cells.items()
            if channel not in _SERVICE_SET
        )

    def entries(self) -> List[Dict[str, object]]:
        """All cells as plain dicts, largest charge first (JSON-ready)."""
        rows = [
            {
                "ssr": ssr,
                "channel": channel,
                "victim": victim,
                "app": victim_app(victim),
                "core": core,
                "ns": ns,
            }
            for (ssr, channel, victim, core), ns in self._cells.items()
        ]
        rows.sort(key=lambda r: (-r["ns"], r["ssr"], r["channel"], r["victim"], r["core"]))
        return rows

    def reconcile(self, ssr_total_ns: float) -> float:
        """Difference between service-channel sum and the SSR accumulator.

        Zero means the conservation invariant holds; the property tests
        assert exactly that.
        """
        return self.service_total_ns() - ssr_total_ns

    def as_dict(self) -> Dict[str, object]:
        return {
            "entries": self.entries(),
            "channel_totals": self.channel_totals(),
            "service_total_ns": self.service_total_ns(),
            "side_total_ns": self.side_total_ns(),
        }


class NullLedger:
    """The disabled ledger: every operation is a no-op.

    Hook sites check :attr:`enabled` before building charge arguments, so
    with this ledger the hot path pays a single branch (the same
    zero-overhead pattern as :class:`repro.telemetry.NullTracer`).
    """

    enabled = False

    def charge(self, *args, **kwargs) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def channel_total(self, channel: str) -> float:
        return 0.0

    def channel_totals(self) -> Dict[str, float]:
        return {channel: 0 for channel in ALL_CHANNELS}

    def service_total_ns(self) -> float:
        return 0.0

    def side_total_ns(self) -> float:
        return 0.0

    def entries(self) -> List[Dict[str, object]]:
        return []

    def reconcile(self, ssr_total_ns: float) -> float:
        return -ssr_total_ns

    def as_dict(self) -> Dict[str, object]:
        return {
            "entries": [],
            "channel_totals": self.channel_totals(),
            "service_total_ns": 0.0,
            "side_total_ns": 0.0,
        }


#: The process-wide disabled ledger (shared; it holds no state).
NULL_LEDGER = NullLedger()
