"""Interference attribution: blame ledgers, sim-time sampling, reports.

The analysis layer the paper's characterization implies: every stolen
nanosecond charged to a ``(ssr, channel, victim, core)`` cell
(:mod:`~repro.profiling.ledger`), fixed-interval timeline sampling
(:mod:`~repro.profiling.sampler`), per-run document assembly and the
process-wide collector (:mod:`~repro.profiling.profiler`), plus the
exporters behind the ``hiss-report`` CLI
(:mod:`~repro.profiling.flamegraph`, :mod:`~repro.profiling.report`).

Opt-in and zero-cost when off: the disabled :data:`NULL_LEDGER` /
:data:`NULL_PROFILER` singletons make unprofiled runs pay one branch per
hook site, and profiling never perturbs simulated results.
"""

from .ledger import (
    ALL_CHANNELS,
    CH_BOTTOM_HALF,
    CH_CC6_WAKEUP,
    CH_ENQUEUE,
    CH_IPI,
    CH_MODE_SWITCH,
    CH_POLL,
    CH_POLLUTION,
    CH_TOP_HALF,
    CH_WORKER,
    NO_VICTIM,
    NULL_LEDGER,
    InterferenceLedger,
    NullLedger,
    SIDE_CHANNELS,
    SSR_SERVICE_CHANNELS,
    victim_app,
)
from .sampler import (
    DEFAULT_SAMPLE_INTERVAL_NS,
    DEFAULT_SAMPLER_CAPACITY,
    MODE_CODES,
    SimSampler,
)
from .profiler import (
    BUNDLE_SCHEMA,
    NULL_PROFILER,
    NullProfiler,
    ProfileCollector,
    Profiler,
    RUN_SCHEMA,
    get_active_collector,
    profile_runs,
    set_active_collector,
    validate_profile,
)
from .flamegraph import collapsed_stacks, write_collapsed
from .report import (
    aggregate_app_blame,
    aggregate_attribution,
    render_html,
    text_summary,
    write_html,
)

__all__ = [
    "ALL_CHANNELS",
    "BUNDLE_SCHEMA",
    "CH_BOTTOM_HALF",
    "CH_CC6_WAKEUP",
    "CH_ENQUEUE",
    "CH_IPI",
    "CH_MODE_SWITCH",
    "CH_POLL",
    "CH_POLLUTION",
    "CH_TOP_HALF",
    "CH_WORKER",
    "DEFAULT_SAMPLER_CAPACITY",
    "DEFAULT_SAMPLE_INTERVAL_NS",
    "InterferenceLedger",
    "MODE_CODES",
    "NO_VICTIM",
    "NULL_LEDGER",
    "NULL_PROFILER",
    "NullLedger",
    "NullProfiler",
    "ProfileCollector",
    "Profiler",
    "RUN_SCHEMA",
    "SIDE_CHANNELS",
    "SSR_SERVICE_CHANNELS",
    "SimSampler",
    "aggregate_app_blame",
    "aggregate_attribution",
    "collapsed_stacks",
    "get_active_collector",
    "profile_runs",
    "render_html",
    "set_active_collector",
    "text_summary",
    "validate_profile",
    "victim_app",
    "write_collapsed",
    "write_html",
]
