"""Collapsed-stack export: attribution cells as flamegraph input.

One line per stack, ``frame;frame;frame <weight>`` — the format consumed
by Brendan Gregg's ``flamegraph.pl`` and by speedscope's "collapsed
stacks" importer.  The stack is the attribution hierarchy read outward:

    victim app ; victim thread ; channel:ssr        weight = stolen ns

so the flame graph's x-axis is stolen nanoseconds, the base frames are
the victims (who paid), and the leaves are the mechanisms (what stole).
"""

from __future__ import annotations

from typing import Dict, List

from .profiler import profile_runs

__all__ = ["collapsed_stacks", "write_collapsed"]


def collapsed_stacks(document: Dict) -> List[str]:
    """Render a bundle or run document as collapsed-stack lines.

    Weights are integer nanoseconds (flamegraph.pl requires integers);
    identical stacks across runs are merged.  Lines are sorted for
    stable, diffable output.
    """
    weights: Dict[str, float] = {}
    for run in profile_runs(document):
        for entry in run.get("ledger", {}).get("entries", []):
            stack = (
                f"{entry['app']};{entry['victim']};"
                f"{entry['channel']}:{entry['ssr']}"
            )
            weights[stack] = weights.get(stack, 0) + entry["ns"]
    lines = [
        f"{stack} {int(round(ns))}"
        for stack, ns in weights.items()
        if int(round(ns)) > 0
    ]
    lines.sort()
    return lines


def write_collapsed(document: Dict, path: str) -> int:
    """Write collapsed stacks to ``path``; returns the line count."""
    lines = collapsed_stacks(document)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)
