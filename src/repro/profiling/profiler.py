"""Per-run profiler assembly and the process-wide collector.

A :class:`Profiler` bundles one run's :class:`InterferenceLedger` and
:class:`SimSampler` and freezes them into a plain-dict *run document* at
the end of the measured horizon.  A :class:`ProfileCollector` hands a
fresh profiler to every :class:`~repro.core.system.System` built while it
is installed as the process-wide active collector (mirroring
``set_active_tracer``), and gathers the resulting documents into a
*bundle* — what ``hiss-experiments --profile`` writes and ``hiss-report``
renders.

Profile data lives strictly outside :class:`SystemMetrics`: results are
byte-for-byte identical with profiling on or off, and the profile is a
side-channel artifact like a trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union, TYPE_CHECKING

from ..oskernel import accounting as acct
from .ledger import ALL_CHANNELS, NULL_LEDGER, SSR_SERVICE_CHANNELS, InterferenceLedger
from .sampler import DEFAULT_SAMPLE_INTERVAL_NS, DEFAULT_SAMPLER_CAPACITY, SimSampler

if TYPE_CHECKING:  # pragma: no cover
    from ..core.system import System

__all__ = [
    "BUNDLE_SCHEMA",
    "NULL_PROFILER",
    "NullProfiler",
    "ProfileCollector",
    "Profiler",
    "RUN_SCHEMA",
    "get_active_collector",
    "profile_runs",
    "set_active_collector",
    "validate_profile",
]

#: Schema tags embedded in every document (bump on breaking change).
RUN_SCHEMA = "hiss.profile.run/1"
BUNDLE_SCHEMA = "hiss.profile/1"


def run_label_for(system: "System") -> str:
    """A compact name for one run (same shape as ``planner.run_label``)."""
    cpu = system.cpu_app.profile.name if system.cpu_app is not None else "idle"
    gpu = system.gpus[0].profile.name if system.gpus else "nogpu"
    label = f"{cpu}x{gpu}"
    if system.gpus and not system.gpus[0].ssr_enabled:
        label += "!nossr"
    config_label = system.config.label
    if config_label != "Default":
        label += f"[{config_label}]"
    return label


class Profiler:
    """One run's attribution state: ledger + sampler + document builder.

    A profiler serves exactly one :class:`System`; build a fresh one per
    run (``ProfileCollector.new_profiler`` does).
    """

    enabled = True

    def __init__(
        self,
        sample_interval_ns: int = DEFAULT_SAMPLE_INTERVAL_NS,
        sampler_capacity: int = DEFAULT_SAMPLER_CAPACITY,
        collector: Optional["ProfileCollector"] = None,
    ):
        self.ledger = InterferenceLedger()
        self.sampler = SimSampler(sample_interval_ns, sampler_capacity)
        self.collector = collector
        self.documents: List[Dict] = []

    def start(self, system: "System") -> None:
        """Hook the sampler onto ``system`` (called by ``System.run``)."""
        self.sampler.attach(system)

    def finish_run(self, system: "System", horizon_ns: int) -> Dict:
        """Freeze this run's attribution into a document; register it."""
        kernel = system.kernel
        document = {
            "schema": RUN_SCHEMA,
            "run": run_label_for(system),
            "config": system.config.label,
            "horizon_ns": horizon_ns,
            "num_cores": kernel.config.cpu.num_cores,
            "ssr_time_ns": kernel.ssr_accounting.total_ns,
            "ssr_completed": kernel.ssr_accounting.completed,
            "ssr_requests": kernel.counters.get(acct.CTR_SSR_REQUEST),
            "ledger": self.ledger.as_dict(),
            "samples": self.sampler.as_dict(),
        }
        self.documents.append(document)
        if self.collector is not None:
            self.collector.add(document)
        return document

    def take_document(self) -> Optional[Dict]:
        """The most recent run document (None before any run finishes)."""
        return self.documents[-1] if self.documents else None


class NullProfiler:
    """The disabled profiler: shares :data:`NULL_LEDGER`, does nothing."""

    enabled = False
    ledger = NULL_LEDGER

    def start(self, system) -> None:
        pass

    def finish_run(self, system, horizon_ns) -> None:
        pass

    def take_document(self) -> None:
        return None


#: The process-wide disabled profiler (shared; it holds no state).
NULL_PROFILER = NullProfiler()


class ProfileCollector:
    """Gathers run documents across many Systems into one bundle."""

    def __init__(
        self,
        sample_interval_ns: int = DEFAULT_SAMPLE_INTERVAL_NS,
        sampler_capacity: int = DEFAULT_SAMPLER_CAPACITY,
    ):
        self.sample_interval_ns = sample_interval_ns
        self.sampler_capacity = sampler_capacity
        self.runs: List[Dict] = []

    def new_profiler(self) -> Profiler:
        return Profiler(
            self.sample_interval_ns, self.sampler_capacity, collector=self
        )

    def add(self, document: Dict) -> None:
        self.runs.append(document)

    def __len__(self) -> int:
        return len(self.runs)

    def bundle(self, meta: Optional[Dict] = None) -> Dict:
        """The on-disk / on-wire shape: schema + meta + run documents."""
        return {
            "schema": BUNDLE_SCHEMA,
            "meta": dict(meta or {}),
            "runs": list(self.runs),
        }


#: Active collector consulted by newly constructed Systems when no
#: explicit profiler is passed — how ``hiss-experiments --profile``
#: reaches Systems built deep inside experiment harnesses.
_ACTIVE_COLLECTOR: Optional[ProfileCollector] = None


def set_active_collector(collector: Optional[ProfileCollector]) -> None:
    """Install ``collector`` as the process-wide default (``None`` resets)."""
    global _ACTIVE_COLLECTOR
    _ACTIVE_COLLECTOR = collector


def get_active_collector() -> Optional[ProfileCollector]:
    return _ACTIVE_COLLECTOR


# ----------------------------------------------------------------------
# Document helpers
# ----------------------------------------------------------------------
def profile_runs(document: Dict) -> List[Dict]:
    """The run documents of ``document`` (accepts a bundle or one run)."""
    if not isinstance(document, dict):
        raise TypeError(f"profile document must be a dict, got {type(document).__name__}")
    if document.get("schema") == RUN_SCHEMA:
        return [document]
    return list(document.get("runs", []))


def validate_profile(document: Dict) -> List[str]:
    """Validate a bundle or run document; returns a list of problems.

    An empty list means the document is well-formed: schemas match, every
    run has a ledger whose entries carry the attribution key, channel
    names are known, and the conservation invariant holds (service
    channel sums equal the recorded SSR accumulator total).
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, expected dict"]
    schema = document.get("schema")
    if schema == BUNDLE_SCHEMA:
        runs = document.get("runs")
        if not isinstance(runs, list):
            return [f"bundle {BUNDLE_SCHEMA}: 'runs' missing or not a list"]
    elif schema == RUN_SCHEMA:
        runs = [document]
    else:
        return [f"unknown schema {schema!r} (expected {BUNDLE_SCHEMA} or {RUN_SCHEMA})"]
    known = set(ALL_CHANNELS)
    service = set(SSR_SERVICE_CHANNELS)
    for index, run in enumerate(runs):
        where = f"runs[{index}]"
        if not isinstance(run, dict):
            problems.append(f"{where}: not a dict")
            continue
        if run.get("schema") != RUN_SCHEMA:
            problems.append(f"{where}: schema {run.get('schema')!r} != {RUN_SCHEMA}")
        for field in ("run", "horizon_ns", "num_cores", "ssr_time_ns", "ledger", "samples"):
            if field not in run:
                problems.append(f"{where}: missing field {field!r}")
        ledger = run.get("ledger")
        if not isinstance(ledger, dict) or not isinstance(ledger.get("entries"), list):
            problems.append(f"{where}: ledger entries missing")
            continue
        service_sum = 0
        for position, entry in enumerate(ledger["entries"]):
            cell = f"{where}.ledger.entries[{position}]"
            if not isinstance(entry, dict):
                problems.append(f"{cell}: not a dict")
                continue
            missing = [f for f in ("ssr", "channel", "victim", "app", "core", "ns") if f not in entry]
            if missing:
                problems.append(f"{cell}: missing {', '.join(missing)}")
                continue
            if entry["channel"] not in known:
                problems.append(f"{cell}: unknown channel {entry['channel']!r}")
            elif entry["channel"] in service:
                service_sum += entry["ns"]
            if entry["ns"] < 0:
                problems.append(f"{cell}: negative ns {entry['ns']}")
        total = run.get("ssr_time_ns")
        if isinstance(total, (int, float)) and service_sum != total:
            problems.append(
                f"{where}: conservation violated — service channels sum to "
                f"{service_sum}, SSR accumulator recorded {total}"
            )
        samples = run.get("samples")
        if isinstance(samples, dict):
            rows = samples.get("rows")
            if not isinstance(rows, list):
                problems.append(f"{where}.samples: rows missing")
            elif any(not isinstance(row, (list, tuple)) or len(row) != 5 for row in rows):
                problems.append(f"{where}.samples: malformed row (expected 5 columns)")
    return problems
