"""Structured event tracing for the simulator.

A :class:`Tracer` records typed events — spans (an interval on a track),
instants (a point), and counter samples (a value over time) — keyed by a
*track* (a core id, or a named device track like ``"iommu"``) and
simulated nanoseconds.  Storage is a bounded ring buffer: a runaway run
drops its *oldest* events rather than growing without bound, and reports
how many were dropped.

The zero-overhead contract: instrumentation sites hold a tracer reference
and guard every emission with ``if tracer.enabled:``.  The default
:data:`NULL_TRACER` has ``enabled = False``, so a non-traced run pays one
attribute load and one branch per site — and, critically, tracing never
schedules simulation events or consumes random numbers, so a traced run
is bit-for-bit identical to an untraced one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from .metrics import MetricsRegistry

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "get_active_tracer",
    "set_active_tracer",
]

#: Chrome trace_event phase codes used by this tracer.
PHASE_SPAN = "X"  # complete event (ts + dur)
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"

#: A track is either a core id (int) or a named device/system track.
Track = Union[int, str]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event, in simulated nanoseconds."""

    phase: str
    name: str
    category: str
    track: Track
    ts_ns: float
    dur_ns: float = 0.0
    args: Optional[Dict] = field(default=None)


class Tracer:
    """Bounded-ring-buffer event recorder plus a metrics registry."""

    enabled = True

    def __init__(self, capacity: int = 1_000_000):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        #: Events evicted from the ring buffer (oldest-first) due to capacity.
        self.dropped = 0
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _append(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def span(
        self,
        name: str,
        category: str,
        track: Track,
        start_ns: float,
        end_ns: float,
        args: Optional[Dict] = None,
    ) -> None:
        """Record an interval ``[start_ns, end_ns]`` on ``track``."""
        if end_ns < start_ns:
            raise ValueError(f"span {name!r}: end {end_ns} before start {start_ns}")
        self._append(
            TraceEvent(PHASE_SPAN, name, category, track, start_ns, end_ns - start_ns, args)
        )

    def instant(
        self,
        name: str,
        category: str,
        track: Track,
        ts_ns: float,
        args: Optional[Dict] = None,
    ) -> None:
        """Record a point event at ``ts_ns`` on ``track``."""
        self._append(TraceEvent(PHASE_INSTANT, name, category, track, ts_ns, 0.0, args))

    def counter_sample(
        self, name: str, track: Track, ts_ns: float, value: float
    ) -> None:
        """Record a sampled counter value (renders as a graph in Perfetto)."""
        self._append(
            TraceEvent(PHASE_COUNTER, name, "counter", track, ts_ns, 0.0, {"value": value})
        )

    def emit(self, event: TraceEvent) -> None:
        """Append an already-built event (merging another tracer's stream)."""
        self._append(event)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def dropped_events(self) -> int:
        """Ring-buffer overflow count: events evicted because the buffer
        was at :attr:`capacity` when a new event arrived.  The queryable
        companion of the raw :attr:`dropped` counter — surfaced as the
        ``telemetry.trace.dropped_events`` gauge in the service's
        ``/metrics``."""
        return self.dropped

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> Iterator[TraceEvent]:
        """All buffered events, oldest first."""
        return iter(self._events)

    def tracks(self) -> List[Track]:
        """Every distinct track, core ids first, then named tracks sorted."""
        cores = sorted({e.track for e in self._events if isinstance(e.track, int)})
        named = sorted({e.track for e in self._events if isinstance(e.track, str)})
        return [*cores, *named]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumentation sites check :attr:`enabled` before building event
    arguments, so with this tracer the hot path pays a single branch.
    """

    enabled = False

    def __init__(self):
        self.capacity = 0
        self.dropped = 0
        self.metrics = MetricsRegistry()

    @property
    def dropped_events(self) -> int:
        return 0

    def span(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def counter_sample(self, *args, **kwargs) -> None:
        pass

    def emit(self, *args, **kwargs) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def events(self) -> Iterator[TraceEvent]:
        return iter(())

    def tracks(self) -> List[Track]:
        return []

    def clear(self) -> None:
        pass


#: The process-wide disabled tracer (shared; it holds no state).
NULL_TRACER = NullTracer()

#: Active tracer used by newly constructed Systems when none is passed
#: explicitly — this is how ``hiss-experiments --trace`` reaches Systems
#: built deep inside experiment harnesses.
_ACTIVE: Union[Tracer, NullTracer] = NULL_TRACER


def set_active_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> None:
    """Install ``tracer`` as the process-wide default (``None`` resets)."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER


def get_active_tracer() -> Union[Tracer, NullTracer]:
    return _ACTIVE
