"""``hiss-trace``: inspect and validate exported simulator traces.

Subcommands::

    hiss-trace validate out.json          # schema check; exit 1 on problems
    hiss-trace validate --spans job.json  # job span document (service tier)
    hiss-trace summary out.json           # per-track span time / event counts
    hiss-trace timeline out.json --track "core 0" --limit 40

Traces are produced by ``hiss-experiments ... --trace out.json`` or by
:func:`repro.telemetry.export.write_chrome_trace`; they also open directly
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import defaultdict
from typing import Any, Dict, List, Optional

from ..version import add_version_flag
from .export import validate_chrome_trace


def _load(path: str) -> Any:
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as error:
        raise SystemExit(f"hiss-trace: cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        raise SystemExit(f"hiss-trace: {path} is not valid JSON: {error}")


def _track_names(doc: Dict) -> Dict[int, str]:
    """tid -> human track name, from thread_name metadata events."""
    names: Dict[int, str] = {}
    for event in doc.get("traceEvents", []):
        if isinstance(event, dict) and event.get("ph") == "M" and event.get("name") == "thread_name":
            names[event.get("tid")] = event.get("args", {}).get("name", str(event.get("tid")))
    return names


def _cmd_validate(args: argparse.Namespace) -> int:
    doc = _load(args.trace)
    if args.spans:
        from .spans import validate_trace_document

        errors = validate_trace_document(doc)
        if errors:
            for error in errors:
                print(f"INVALID: {error}", file=sys.stderr)
            return 1
        print(
            f"OK: {args.trace} (trace {doc.get('trace_id')}, "
            f"{len(doc.get('spans', []))} spans, "
            f"{len(doc.get('sim', []))} sim run(s))"
        )
        return 0
    errors = validate_chrome_trace(doc)
    if errors:
        for error in errors:
            print(f"INVALID: {error}", file=sys.stderr)
        return 1
    count = len(doc["traceEvents"])
    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    print(f"OK: {args.trace} ({count} events, {dropped} dropped)")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    doc = _load(args.trace)
    names = _track_names(doc)
    # (tid, name) -> [span_ns, span_count, other_count]
    cells: Dict[tuple, List[float]] = defaultdict(lambda: [0.0, 0, 0])
    for event in doc.get("traceEvents", []):
        if not isinstance(event, dict) or event.get("ph") == "M":
            continue
        cell = cells[(event.get("tid"), event.get("name"))]
        if event.get("ph") == "X":
            cell[0] += float(event.get("dur", 0.0)) * 1000.0
            cell[1] += 1
        else:
            cell[2] += 1
    header = f"{'track':>14s}  {'event':28s} {'total_us':>12s} {'spans':>8s} {'other':>8s}"
    print(header)
    print("-" * len(header))
    for tid, name in sorted(cells, key=lambda k: (str(k[0]), str(k[1]))):
        span_ns, spans, other = cells[(tid, name)]
        track = names.get(tid, str(tid))
        print(f"{track:>14s}  {name:28s} {span_ns / 1e3:12.2f} {spans:8d} {other:8d}")
    metrics = doc.get("otherData", {}).get("metrics")
    if metrics and metrics.get("histograms"):
        print()
        print(f"{'histogram':28s} {'count':>8s} {'mean':>12s} {'p50':>12s} {'p95':>12s} {'p99':>12s} {'max':>12s}")
        for name, snap in sorted(metrics["histograms"].items()):
            print(
                f"{name:28s} {snap['count']:8d} {snap['mean']:12.1f} "
                f"{snap['p50']:12.1f} {snap['p95']:12.1f} {snap['p99']:12.1f} {snap['max']:12.1f}"
            )
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    doc = _load(args.trace)
    names = _track_names(doc)
    tids = {name: tid for tid, name in names.items()}
    tid = tids.get(args.track)
    if tid is None:
        try:
            tid = int(args.track)
        except ValueError:
            known = ", ".join(sorted(str(n) for n in tids))
            print(f"hiss-trace: unknown track {args.track!r}; known: {known}", file=sys.stderr)
            return 1
    rows = [
        event
        for event in doc.get("traceEvents", [])
        if isinstance(event, dict) and event.get("tid") == tid and event.get("ph") != "M"
    ]
    rows.sort(key=lambda e: (float(e.get("ts", 0.0)), -float(e.get("dur", 0.0))))
    if args.limit:
        rows = rows[: args.limit]
    print(f"timeline for {names.get(tid, tid)} ({len(rows)} events)")
    for event in rows:
        if event.get("ph") == "X":
            shape = f"[{float(event.get('dur', 0.0)):10.2f}us]"
        elif event.get("ph") == "C":
            shape = f"(={event.get('args', {}).get('value')})"
        else:
            shape = "*"
        detail = ""
        arguments = event.get("args")
        if arguments and event.get("ph") != "C":
            detail = "  " + ", ".join(f"{k}={v}" for k, v in sorted(arguments.items()))
        print(f"{float(event.get('ts', 0.0)):14.3f}us  {event.get('name', ''):28s} {shape}{detail}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hiss-trace",
        description="Inspect Chrome-trace JSON produced by the HISS simulator.",
    )
    add_version_flag(parser)
    subparsers = parser.add_subparsers(dest="command", required=True)

    validate = subparsers.add_parser("validate", help="schema-check a trace file")
    validate.add_argument("trace", help="path to a trace JSON file")
    validate.add_argument(
        "--spans", action="store_true",
        help="treat the file as a job span document (GET /v1/jobs/<id>/trace) "
        "instead of Chrome-trace JSON",
    )
    validate.set_defaults(fn=_cmd_validate)

    summary = subparsers.add_parser("summary", help="per-track span time and counts")
    summary.add_argument("trace", help="path to a trace JSON file")
    summary.set_defaults(fn=_cmd_summary)

    timeline = subparsers.add_parser("timeline", help="one track's events in time order")
    timeline.add_argument("trace", help="path to a trace JSON file")
    timeline.add_argument(
        "--track", default="core 0", help="track name (e.g. 'core 0', 'iommu') or tid"
    )
    timeline.add_argument("--limit", type=int, default=50, help="max events to print (0 = all)")
    timeline.set_defaults(fn=_cmd_timeline)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (e.g. `summary | head`).
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
