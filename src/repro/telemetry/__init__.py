"""Structured telemetry for the HISS simulator.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.telemetry.tracer` — a zero-cost-when-disabled event tracer
  recording spans/instants keyed by core (or device track) and sim-time
  into a bounded ring buffer.
* :mod:`repro.telemetry.metrics` — counters and fixed-bucket latency
  histograms (p50/p95/p99/max) for end-of-run aggregates.
* :mod:`repro.telemetry.export` — Chrome ``trace_event`` JSON (open in
  Perfetto / ``chrome://tracing``) and aligned-text timeline summaries,
  surfaced via the ``hiss-trace`` CLI and ``hiss-experiments --trace``.
* :mod:`repro.telemetry.spans` — wall-clock lifecycle spans with trace
  ids for the serving tier: span documents, validation, and stitching of
  service spans with in-sim event streams into one Chrome trace.

This package sits *below* the simulation layers (it imports nothing from
them), so every layer can hold a tracer reference without import cycles.
"""

from .metrics import Counter, Histogram, MetricsRegistry
from .tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    get_active_tracer,
    set_active_tracer,
)
from .export import (
    METRICS_TEXT_CONTENT_TYPE,
    chrome_trace_dict,
    render_metrics_text,
    render_timeline,
    timeline_summary,
    validate_chrome_trace,
    write_chrome_trace,
)
from .spans import (
    Span,
    SpanRecorder,
    clean_trace_id,
    new_span_id,
    new_trace_id,
    stitched_chrome_trace,
    trace_document,
    validate_trace_document,
)

__all__ = [
    "Counter",
    "Histogram",
    "METRICS_TEXT_CONTENT_TYPE",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanRecorder",
    "TraceEvent",
    "Tracer",
    "chrome_trace_dict",
    "clean_trace_id",
    "get_active_tracer",
    "new_span_id",
    "new_trace_id",
    "render_metrics_text",
    "render_timeline",
    "set_active_tracer",
    "stitched_chrome_trace",
    "timeline_summary",
    "trace_document",
    "validate_chrome_trace",
    "validate_trace_document",
    "write_chrome_trace",
]
