"""Trace exporters: Chrome ``trace_event`` JSON and aligned-text timelines.

The JSON exporter emits the Trace Event Format understood by Perfetto and
``chrome://tracing``: one ``pid`` for the simulated SoC, one ``tid`` per
track (CPU cores first, then named device tracks such as ``iommu`` or
``gpu:ubench``).  Spans become complete events (``ph: "X"``), instants
``ph: "i"``, counter samples ``ph: "C"``; timestamps are microseconds (the
format's unit) with sub-microsecond precision preserved as fractions.

The text exporters answer the same questions without leaving the
terminal: :func:`timeline_summary` aggregates span time per track, and
:func:`render_timeline` lists one track's events chronologically.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Any, Dict, List, Optional, Union

from .metrics import MetricsRegistry
from .tracer import PHASE_COUNTER, PHASE_INSTANT, PHASE_SPAN, TraceEvent, Tracer

__all__ = [
    "METRICS_TEXT_CONTENT_TYPE",
    "chrome_trace_dict",
    "render_metrics_text",
    "render_timeline",
    "timeline_summary",
    "validate_chrome_trace",
    "write_chrome_trace",
]


#: Content type the text exposition should be served with (the versioned
#: Prometheus text format media type).
METRICS_TEXT_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: ``# HELP`` strings for well-known metric families (prefix-matched).
_HELP_PREFIXES = (
    ("service.job.", "serving-tier stage latency"),
    ("service.jobs.", "job lifecycle counter"),
    ("service.runs.", "simulation run counter"),
    ("service.pool.", "warm worker pool statistic"),
    ("service.queue.", "admission queue state"),
    ("service.qos.", "service governor state"),
    ("service.disk_cache.", "content-addressed disk cache statistic"),
    ("slo.", "SLO engine burn-rate state"),
    ("telemetry.", "tracer saturation accounting"),
    ("search.", "autotuner sweep statistic"),
)


def _help_for(name: str) -> str:
    for prefix, text in _HELP_PREFIXES:
        if name.startswith(prefix):
            return text
    return "repro metric"


def render_metrics_text(
    registry: MetricsRegistry, gauges: Optional[Dict[str, float]] = None
) -> str:
    """Prometheus/OpenMetrics-style text exposition of a registry.

    Every metric family is announced with ``# HELP``/``# TYPE`` comment
    lines (``counter`` / ``gauge`` / ``histogram``), followed by the same
    flat ``name value`` sample lines this exposition has always emitted —
    histograms expanded into their summary fields (``count``/``mean``/
    ``min``/``max``/``p50``/``p95``/``p99``).  Comment lines are
    ignored by line-oriented consumers (``grep``, the CI smoke greps), so
    existing scrapers keep working unchanged; scrape-aware consumers get
    the type metadata and the proper ``Content-Type``
    (:data:`METRICS_TEXT_CONTENT_TYPE`) from the daemon's ``/metrics``.
    """
    lines: List[str] = []
    snapshot = registry.snapshot()
    for name, value in snapshot["counters"].items():
        lines.append(f"# HELP {name} {_help_for(name)}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")
    for name, summary in snapshot["histograms"].items():
        lines.append(f"# HELP {name} {_help_for(name)}")
        lines.append(f"# TYPE {name} histogram")
        for stat, value in summary.items():
            lines.append(f"{name}.{stat} {value:g}")
    for name, value in sorted((gauges or {}).items()):
        lines.append(f"# HELP {name} {_help_for(name)}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value:g}" if isinstance(value, float) else f"{name} {value}")
    return "\n".join(lines) + "\n"

#: The single simulated-SoC process in the exported trace.
PID = 0

#: tid offset for named (non-core) tracks, leaving room for any core count.
NAMED_TRACK_TID_BASE = 1000


def _track_tids(tracer: Tracer) -> Dict[Union[int, str], int]:
    """Stable track -> tid mapping: core N -> N, named tracks -> 1000+i."""
    tids: Dict[Union[int, str], int] = {}
    named_index = 0
    for track in tracer.tracks():
        if isinstance(track, int):
            tids[track] = track
        else:
            tids[track] = NAMED_TRACK_TID_BASE + named_index
            named_index += 1
    return tids


def _track_label(track: Union[int, str]) -> str:
    return f"core {track}" if isinstance(track, int) else str(track)


def chrome_trace_dict(tracer: Tracer, label: str = "hiss") -> Dict[str, Any]:
    """Serialize a tracer into a Chrome trace_event JSON document."""
    tids = _track_tids(tracer)
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": PID,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": PID,
                "tid": tid,
                "args": {"name": _track_label(track)},
            }
        )
    for event in tracer.events():
        record: Dict[str, Any] = {
            "ph": event.phase,
            "name": event.name,
            "cat": event.category,
            "pid": PID,
            "tid": tids[event.track],
            "ts": event.ts_ns / 1000.0,
        }
        if event.phase == PHASE_SPAN:
            record["dur"] = event.dur_ns / 1000.0
        elif event.phase == PHASE_INSTANT:
            record["s"] = "t"  # thread-scoped instant
        if event.args:
            record["args"] = dict(event.args)
        elif event.phase == PHASE_COUNTER:  # pragma: no cover - args always set
            record["args"] = {"value": 0}
        events.append(record)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.telemetry",
            "dropped_events": tracer.dropped,
            "metrics": tracer.metrics.snapshot(),
        },
    }


def write_chrome_trace(tracer: Tracer, path: str, label: str = "hiss") -> None:
    """Write the Chrome-trace JSON for ``tracer`` to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace_dict(tracer, label=label), handle)


# ----------------------------------------------------------------------
# Validation (used by tests, the CLI, and the CI smoke job)
# ----------------------------------------------------------------------
_REQUIRED_EVENT_KEYS = ("ph", "name", "pid", "tid")
_KNOWN_PHASES = {"X", "i", "I", "C", "M", "B", "E"}


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema-check a Chrome-trace document; returns a list of problems.

    An empty list means the document is loadable by Perfetto /
    ``chrome://tracing``: a ``traceEvents`` array whose entries carry the
    required keys, numeric non-negative timestamps, and durations on every
    complete event.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for index, event in enumerate(events):
        if len(errors) >= 50:
            errors.append("... further errors suppressed")
            break
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                errors.append(f"{where}: missing key {key!r}")
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event with bad dur {dur!r}")
        if phase == "C" and not isinstance(event.get("args"), dict):
            errors.append(f"{where}: counter event without args")
    return errors


# ----------------------------------------------------------------------
# Text timelines
# ----------------------------------------------------------------------
def timeline_summary(tracer: Tracer) -> str:
    """Aligned per-track summary: span time and event counts by name."""
    # (track, name) -> [total_dur_ns, span_count, instant_count]
    cells: Dict[tuple, List[float]] = defaultdict(lambda: [0.0, 0, 0])
    for event in tracer.events():
        cell = cells[(event.track, event.name)]
        if event.phase == PHASE_SPAN:
            cell[0] += event.dur_ns
            cell[1] += 1
        elif event.phase == PHASE_INSTANT:
            cell[2] += 1
    header = f"{'track':>12s}  {'event':28s} {'total_us':>12s} {'spans':>8s} {'instants':>9s}"
    lines = [header, "-" * len(header)]
    for track in tracer.tracks():
        names = sorted(name for (t, name) in cells if t == track)
        for name in names:
            total_ns, spans, instants = cells[(track, name)]
            lines.append(
                f"{_track_label(track):>12s}  {name:28s} "
                f"{total_ns / 1e3:12.2f} {spans:8d} {instants:9d}"
            )
    if tracer.dropped:
        lines.append(f"(ring buffer dropped {tracer.dropped} oldest events)")
    return "\n".join(lines)


def render_timeline(
    tracer: Tracer,
    track: Union[int, str],
    limit: Optional[int] = 50,
) -> str:
    """One track's events in time order, one aligned line per event."""
    selected = [e for e in tracer.events() if e.track == track]
    selected.sort(key=lambda e: (e.ts_ns, -e.dur_ns))
    if limit is not None:
        selected = selected[:limit]
    lines = [f"timeline for {_track_label(track)} ({len(selected)} events)"]
    for event in selected:
        if event.phase == PHASE_SPAN:
            shape = f"[{event.dur_ns / 1e3:10.2f}us]"
        elif event.phase == PHASE_COUNTER:
            shape = f"(={event.args['value']})"
        else:
            shape = "*"
        detail = ""
        if event.args and event.phase != PHASE_COUNTER:
            detail = "  " + ", ".join(f"{k}={v}" for k, v in sorted(event.args.items()))
        lines.append(f"{event.ts_ns / 1e3:14.3f}us  {event.name:28s} {shape}{detail}")
    return "\n".join(lines)
