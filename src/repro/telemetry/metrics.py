"""Counters and fixed-bucket latency histograms.

The simulator's legacy aggregates (``repro.core.tracing``) reported only
mean/max per stage; tail latency is where SSR interference actually lives
(a single kworker scheduling delay behind a busy CPU app is invisible in
the mean).  :class:`Histogram` keeps geometrically spaced buckets so p50 /
p95 / p99 come out of a run at O(1) memory, with *exact* min / max / mean
alongside the bucketed quantiles.

Everything here is pure bookkeeping: recording never touches the
simulation clock or event heap, so metrics can be collected without
perturbing a deterministic run.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional

__all__ = ["Counter", "Histogram", "MetricsRegistry", "SUMMARY_PERCENTILES"]

#: The percentiles every summary in the repo reports, in order.  Shared
#: by :meth:`Histogram.summary`, ``core.tracing.format_breakdown``, and
#: the exporters so the p50/p95/p99 column set is defined exactly once.
SUMMARY_PERCENTILES = (50, 95, 99)


class Counter:
    """A monotonically increasing named event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


#: Default bucket range: 10 ns .. 10 s, ~12% relative quantile error.
DEFAULT_LOW = 10.0
DEFAULT_HIGH = 1e10
DEFAULT_GROWTH = 1.25


class Histogram:
    """A fixed-bucket latency histogram with exact min/max/mean.

    Buckets are geometric: bucket ``i`` covers ``(edge[i-1], edge[i]]``
    with ``edge[i] = low * growth**i``; one underflow and one overflow
    bucket bound the range.  Quantiles interpolate linearly inside the
    landing bucket and are clamped to the observed ``[min, max]``, so the
    worst-case quantile error is one bucket's width (~``growth - 1``
    relative).
    """

    __slots__ = ("name", "_edges", "_counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str = "",
        low: float = DEFAULT_LOW,
        high: float = DEFAULT_HIGH,
        growth: float = DEFAULT_GROWTH,
    ):
        if low <= 0 or high <= low or growth <= 1.0:
            raise ValueError(f"bad histogram shape low={low} high={high} growth={growth}")
        self.name = name
        edges: List[float] = [low]
        while edges[-1] < high:
            edges.append(edges[-1] * growth)
        self._edges = edges
        self._counts = [0] * (len(edges) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative sample {value}")
        self._counts[bisect_left(self._edges, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (0..1), interpolated within-bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self._edges[index - 1] if index > 0 else 0.0
                upper = (
                    self._edges[index]
                    if index < len(self._edges)
                    else (self.max if self.max is not None else lower)
                )
                fraction = (target - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                # Clamp to the observed range (0 is a valid min/max).
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
            cumulative += bucket_count
        return self.max if self.max is not None else 0.0  # pragma: no cover

    def same_shape(self, other: "Histogram") -> bool:
        """Whether ``other`` has identical bucket edges (mergeable)."""
        return (
            len(self._edges) == len(other._edges)
            and self._edges[0] == other._edges[0]
            and self._edges[-1] == other._edges[-1]
        )

    def spawn_empty(self, name: Optional[str] = None) -> "Histogram":
        """A zeroed histogram sharing this one's bucket edges.

        The rollup store uses this to build windowed histograms without
        re-deriving the shape parameters; the edge list is shared (it is
        never mutated after construction).
        """
        twin: "Histogram" = Histogram.__new__(Histogram)
        twin.name = self.name if name is None else name
        twin._edges = self._edges
        twin._counts = [0] * len(self._counts)
        twin.count = 0
        twin.sum = 0.0
        twin.min = None
        twin.max = None
        return twin

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place; returns ``self``.

        Bucket-wise addition with count/sum/min/max preserved, so
        ``summary()`` of the merged histogram equals the summary of the
        combined observation stream at bucket resolution.  Both
        histograms must share bucket edges (the rollup windowing always
        merges same-named instruments, which do by construction).
        """
        if not self.same_shape(other):
            raise ValueError(
                f"histogram {self.name}: cannot merge incompatible shape "
                f"({len(self._edges)} edges [{self._edges[0]}, {self._edges[-1]}] "
                f"vs {len(other._edges)} edges "
                f"[{other._edges[0]}, {other._edges[-1]}])"
            )
        for index, bucket_count in enumerate(other._counts):
            if bucket_count:
                self._counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def delta(self, baseline: Optional["Histogram"]) -> "Histogram":
        """The window of observations recorded since ``baseline``.

        ``baseline`` must be an earlier snapshot of this same (cumulative)
        histogram; the result holds the bucket-wise difference.  Exact
        min/max of the window are unrecoverable from two cumulative
        states, so they are left unset and windowed quantiles interpolate
        purely within buckets.  ``baseline=None`` copies the histogram.
        """
        window = self.spawn_empty()
        if baseline is None:
            window._counts = list(self._counts)
            window.count = self.count
            window.sum = self.sum
            window.min = self.min
            window.max = self.max
            return window
        if not self.same_shape(baseline):
            raise ValueError(
                f"histogram {self.name}: delta against incompatible shape"
            )
        for index, bucket_count in enumerate(self._counts):
            diff = bucket_count - baseline._counts[index]
            if diff < 0:
                raise ValueError(
                    f"histogram {self.name}: baseline is not an earlier "
                    f"snapshot (bucket {index} shrank)"
                )
            window._counts[index] = diff
        window.count = self.count - baseline.count
        window.sum = self.sum - baseline.sum
        return window

    def fraction_over(self, threshold: float) -> float:
        """Fraction of observations above ``threshold`` (bucket-interpolated).

        The SLO engine's "bad event" estimator: within the bucket that
        straddles the threshold, observations are assumed uniformly
        spread, matching :meth:`quantile`'s interpolation, so the two are
        consistent to bucket resolution.
        """
        if self.count == 0:
            return 0.0
        over = 0.0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            lower = self._edges[index - 1] if index > 0 else 0.0
            upper = (
                self._edges[index]
                if index < len(self._edges)
                else (self.max if self.max is not None else self._edges[-1])
            )
            if lower >= threshold:
                over += bucket_count
            elif upper > threshold:
                span = upper - lower
                fraction = (upper - threshold) / span if span > 0 else 0.0
                over += bucket_count * fraction
        return min(1.0, over / self.count)

    def percentiles(self) -> Dict[str, float]:
        return {
            f"p{p}": self.quantile(p / 100.0) for p in SUMMARY_PERCENTILES
        }

    def summary(self) -> Dict[str, object]:
        """Structured summary: count/sum/min/max/mean + a percentiles dict.

        The single source of truth for "what does a histogram look like
        summarized" — :meth:`snapshot`, the SSR stage breakdown in
        :mod:`repro.core.tracing`, and the service's ``/v1/ops`` tail
        latencies are all flattenings of this shape.
        """
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "percentiles": self.percentiles(),
        }

    def snapshot(self) -> Dict[str, float]:
        """Flat summary dict (the exporters embed this in trace metadata)."""
        summary = self.summary()
        percentiles = summary.pop("percentiles")
        summary.pop("sum")  # legacy flat shape: count/mean/min/max + pNN
        summary.update(percentiles)
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.1f}>"


class MetricsRegistry:
    """Create-on-demand registry of named counters and histograms.

    Lookups are lock-free (the simulator calls these on hot paths); only
    first-time creation takes a lock, so many server request threads can
    share one registry without ever racing two instruments onto one name.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._create_lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._create_lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def histogram(self, name: str, **kwargs) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._create_lock:
                histogram = self._histograms.setdefault(name, Histogram(name, **kwargs))
        return histogram

    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict summary of every metric (JSON-serializable)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }
