"""Counters and fixed-bucket latency histograms.

The simulator's legacy aggregates (``repro.core.tracing``) reported only
mean/max per stage; tail latency is where SSR interference actually lives
(a single kworker scheduling delay behind a busy CPU app is invisible in
the mean).  :class:`Histogram` keeps geometrically spaced buckets so p50 /
p95 / p99 come out of a run at O(1) memory, with *exact* min / max / mean
alongside the bucketed quantiles.

Everything here is pure bookkeeping: recording never touches the
simulation clock or event heap, so metrics can be collected without
perturbing a deterministic run.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional

__all__ = ["Counter", "Histogram", "MetricsRegistry", "SUMMARY_PERCENTILES"]

#: The percentiles every summary in the repo reports, in order.  Shared
#: by :meth:`Histogram.summary`, ``core.tracing.format_breakdown``, and
#: the exporters so the p50/p95/p99 column set is defined exactly once.
SUMMARY_PERCENTILES = (50, 95, 99)


class Counter:
    """A monotonically increasing named event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


#: Default bucket range: 10 ns .. 10 s, ~12% relative quantile error.
DEFAULT_LOW = 10.0
DEFAULT_HIGH = 1e10
DEFAULT_GROWTH = 1.25


class Histogram:
    """A fixed-bucket latency histogram with exact min/max/mean.

    Buckets are geometric: bucket ``i`` covers ``(edge[i-1], edge[i]]``
    with ``edge[i] = low * growth**i``; one underflow and one overflow
    bucket bound the range.  Quantiles interpolate linearly inside the
    landing bucket and are clamped to the observed ``[min, max]``, so the
    worst-case quantile error is one bucket's width (~``growth - 1``
    relative).
    """

    __slots__ = ("name", "_edges", "_counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str = "",
        low: float = DEFAULT_LOW,
        high: float = DEFAULT_HIGH,
        growth: float = DEFAULT_GROWTH,
    ):
        if low <= 0 or high <= low or growth <= 1.0:
            raise ValueError(f"bad histogram shape low={low} high={high} growth={growth}")
        self.name = name
        edges: List[float] = [low]
        while edges[-1] < high:
            edges.append(edges[-1] * growth)
        self._edges = edges
        self._counts = [0] * (len(edges) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative sample {value}")
        self._counts[bisect_left(self._edges, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (0..1), interpolated within-bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self._edges[index - 1] if index > 0 else 0.0
                upper = (
                    self._edges[index]
                    if index < len(self._edges)
                    else (self.max if self.max is not None else lower)
                )
                fraction = (target - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                # Clamp to the observed range (0 is a valid min/max).
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
            cumulative += bucket_count
        return self.max if self.max is not None else 0.0  # pragma: no cover

    def percentiles(self) -> Dict[str, float]:
        return {
            f"p{p}": self.quantile(p / 100.0) for p in SUMMARY_PERCENTILES
        }

    def summary(self) -> Dict[str, object]:
        """Structured summary: count/sum/min/max/mean + a percentiles dict.

        The single source of truth for "what does a histogram look like
        summarized" — :meth:`snapshot`, the SSR stage breakdown in
        :mod:`repro.core.tracing`, and the service's ``/v1/ops`` tail
        latencies are all flattenings of this shape.
        """
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "percentiles": self.percentiles(),
        }

    def snapshot(self) -> Dict[str, float]:
        """Flat summary dict (the exporters embed this in trace metadata)."""
        summary = self.summary()
        percentiles = summary.pop("percentiles")
        summary.pop("sum")  # legacy flat shape: count/mean/min/max + pNN
        summary.update(percentiles)
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.1f}>"


class MetricsRegistry:
    """Create-on-demand registry of named counters and histograms.

    Lookups are lock-free (the simulator calls these on hot paths); only
    first-time creation takes a lock, so many server request threads can
    share one registry without ever racing two instruments onto one name.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._create_lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._create_lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def histogram(self, name: str, **kwargs) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._create_lock:
                histogram = self._histograms.setdefault(name, Histogram(name, **kwargs))
        return histogram

    @property
    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict summary of every metric (JSON-serializable)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "histograms": {
                name: h.snapshot() for name, h in sorted(self._histograms.items())
            },
        }
