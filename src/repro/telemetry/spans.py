"""Lifecycle spans: wall-clock, trace-ID-correlated request accounting.

The in-sim :class:`~repro.telemetry.tracer.Tracer` answers "where did
*simulated* time go" inside one run.  This module answers the serving
tier's version of the same question — where did *wall-clock* time go
between a client's submission and its result — with the same philosophy
the paper applies to SSR chains: a request that crosses layer boundaries
(HTTP receive → admission → queue → batch → pool worker → render) can
only be managed if every hop is stamped and the stamps share one
correlation key.

* :func:`new_trace_id` mints the correlation key a submission carries
  for its whole life (including across 429 back-off rounds and into
  pool workers).
* :class:`Span` is one named wall-clock interval on that trace —
  parent/child structured, JSON-able, schema-versioned.
* :class:`SpanRecorder` is a bounded, thread-safe collector of spans for
  one trace (drops are counted, never silent).
* :func:`trace_document` / :func:`validate_trace_document` define the
  span-JSON schema the service's ``/v1/jobs/<id>/trace`` endpoint serves
  and CI validates.
* :func:`stitched_chrome_trace` merges a trace document's service spans
  with per-run in-sim event streams into one Chrome-trace timeline:
  service wall-clock on one process track, each simulated run on its
  own, time-aligned at the run's wall-clock start.

Everything is stdlib and imports nothing from the simulation or service
layers, so any layer can stamp spans without cycles.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "SPAN_SCHEMA",
    "Span",
    "SpanRecorder",
    "new_span_id",
    "new_trace_id",
    "stitched_chrome_trace",
    "trace_document",
    "validate_trace_document",
]

#: Version of the span-JSON documents this module reads and writes.
SPAN_SCHEMA = 1

#: Span completion statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_REJECTED = "rejected"


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (correlates a submission end to end)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-digit span id (unique within one trace)."""
    return uuid.uuid4().hex[:8]


def clean_trace_id(candidate: Any) -> Optional[str]:
    """``candidate`` if it is a usable client-supplied trace id, else None.

    The server accepts a trace id from clients (so back-off rounds of one
    logical submission correlate) but never trusts arbitrary strings into
    logs and documents: lowercase hex, 8..32 chars, or it is discarded.
    """
    if not isinstance(candidate, str):
        return None
    candidate = candidate.strip().lower()
    if not (8 <= len(candidate) <= 32):
        return None
    if any(c not in "0123456789abcdef" for c in candidate):
        return None
    return candidate


@dataclass
class Span:
    """One wall-clock interval on a trace (seconds since the epoch)."""

    name: str
    category: str
    trace_id: str
    span_id: str
    start_s: float
    end_s: Optional[float] = None
    parent_id: Optional[str] = None
    status: str = STATUS_OK
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "category": self.category,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.args:
            doc["args"] = dict(self.args)
        return doc


class SpanRecorder:
    """Bounded, thread-safe span collector for one trace.

    Overflow drops the *newest* span (the early lifecycle is the part a
    debugger cannot reconstruct later) and counts it in :attr:`dropped`,
    mirroring the in-sim tracer's never-silent saturation contract.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        capacity: int = 4096,
        clock: Callable[[], float] = time.time,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.trace_id = trace_id or new_trace_id()
        self.capacity = capacity
        self.dropped = 0
        self._clock = clock
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def add(self, span: Span) -> Span:
        """Record an already-built span (e.g. merged back from a worker)."""
        with self._lock:
            if len(self._spans) >= self.capacity:
                self.dropped += 1
            else:
                self._spans.append(span)
        return span

    def record(
        self,
        name: str,
        category: str,
        start_s: float,
        end_s: float,
        parent_id: Optional[str] = None,
        status: str = STATUS_OK,
        args: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Record a completed interval in one call."""
        if end_s < start_s:
            raise ValueError(f"span {name!r}: end {end_s} before start {start_s}")
        return self.add(
            Span(
                name=name,
                category=category,
                trace_id=self.trace_id,
                span_id=new_span_id(),
                start_s=start_s,
                end_s=end_s,
                parent_id=parent_id,
                status=status,
                args=dict(args or {}),
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        category: str,
        parent_id: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Span]:
        """Context manager timing its body; errors mark the span ``error``."""
        entry = Span(
            name=name,
            category=category,
            trace_id=self.trace_id,
            span_id=new_span_id(),
            start_s=self._clock(),
            parent_id=parent_id,
            args=dict(args or {}),
        )
        try:
            yield entry
        except BaseException:
            entry.status = STATUS_ERROR
            raise
        finally:
            entry.end_s = self._clock()
            self.add(entry)

    def spans(self) -> List[Span]:
        """A snapshot of recorded spans, oldest first."""
        with self._lock:
            return list(self._spans)


def trace_document(
    recorder: SpanRecorder, extra: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Serialize a recorder into the span-JSON document schema."""
    spans = sorted(recorder.spans(), key=lambda s: (s.start_s, s.span_id))
    doc: Dict[str, Any] = {
        "schema": SPAN_SCHEMA,
        "trace_id": recorder.trace_id,
        "spans": [span.as_dict() for span in spans],
        "dropped_spans": recorder.dropped,
    }
    if extra:
        doc.update(extra)
    return doc


_REQUIRED_SPAN_KEYS = (
    "name",
    "category",
    "trace_id",
    "span_id",
    "start_s",
    "end_s",
    "status",
)


def validate_trace_document(doc: Any) -> List[str]:
    """Schema-check a span-JSON document; returns a list of problems.

    An empty list means: versioned schema, a trace id every span agrees
    with, and well-formed non-negative intervals.  Used by the service
    tests, ``hiss-trace validate --spans``, and the CI smoke job.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    if doc.get("schema") != SPAN_SCHEMA:
        errors.append(f"unknown schema {doc.get('schema')!r} (expected {SPAN_SCHEMA})")
    trace_id = doc.get("trace_id")
    if clean_trace_id(trace_id) is None:
        errors.append(f"bad trace_id {trace_id!r}")
    spans = doc.get("spans")
    if not isinstance(spans, list):
        return errors + ["missing or non-array 'spans'"]
    seen_ids = set()
    for index, span in enumerate(spans):
        if len(errors) >= 50:
            errors.append("... further errors suppressed")
            break
        where = f"spans[{index}]"
        if not isinstance(span, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in _REQUIRED_SPAN_KEYS:
            if key not in span:
                errors.append(f"{where}: missing key {key!r}")
        if span.get("trace_id") != trace_id:
            errors.append(
                f"{where}: trace_id {span.get('trace_id')!r} != document's"
            )
        start_s, end_s = span.get("start_s"), span.get("end_s")
        if not isinstance(start_s, (int, float)) or start_s < 0:
            errors.append(f"{where}: bad start_s {start_s!r}")
        elif end_s is not None and (
            not isinstance(end_s, (int, float)) or end_s < start_s
        ):
            errors.append(f"{where}: end_s {end_s!r} before start_s {start_s!r}")
        span_id = span.get("span_id")
        if span_id in seen_ids:
            errors.append(f"{where}: duplicate span_id {span_id!r}")
        seen_ids.add(span_id)
        parent = span.get("parent_id")
        if parent is not None and parent not in seen_ids and not any(
            s.get("span_id") == parent for s in spans if isinstance(s, dict)
        ):
            errors.append(f"{where}: parent_id {parent!r} not in document")
    return errors


# ----------------------------------------------------------------------
# Chrome-trace stitching
# ----------------------------------------------------------------------
#: pid of the service wall-clock track in a stitched trace.
SERVICE_PID = 0


def stitched_chrome_trace(
    doc: Dict[str, Any], label: str = "hiss-service"
) -> Dict[str, Any]:
    """One Chrome-trace timeline from a service span document.

    The service's wall-clock spans land on ``pid 0``, one ``tid`` per
    span category.  Each entry of the document's ``sim`` array — a
    simulated run's in-sim event stream plus its wall-clock window —
    becomes its own pid, with simulated time zero aligned to the run's
    wall-clock start, so the whole request reads as one timeline and
    every track's timestamps stay monotonic.

    All timestamps are microseconds relative to the earliest span start
    (Chrome-trace ``ts`` must be small-ish and non-negative).
    """
    spans = doc.get("spans") or []
    sims = doc.get("sim") or []
    starts = [s["start_s"] for s in spans if s.get("start_s") is not None]
    starts += [r["wall_start_s"] for r in sims if r.get("wall_start_s") is not None]
    epoch_s = min(starts) if starts else 0.0

    def wall_us(seconds: float) -> float:
        return (seconds - epoch_s) * 1e6

    events: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": SERVICE_PID, "tid": 0,
         "args": {"name": f"{label} (trace {doc.get('trace_id')})"}}
    ]
    categories: List[str] = []
    for span in spans:
        if span.get("category") not in categories:
            categories.append(span["category"])
    for tid, category in enumerate(categories):
        events.append(
            {"ph": "M", "name": "thread_name", "pid": SERVICE_PID, "tid": tid,
             "args": {"name": category}}
        )
    for span in sorted(spans, key=lambda s: s.get("start_s", 0.0)):
        if span.get("end_s") is None:
            continue
        args = {"trace_id": span.get("trace_id"), "span_id": span.get("span_id"),
                "status": span.get("status")}
        args.update(span.get("args") or {})
        events.append(
            {
                "ph": "X",
                "name": span["name"],
                "cat": span.get("category", "service"),
                "pid": SERVICE_PID,
                "tid": categories.index(span["category"]),
                "ts": wall_us(span["start_s"]),
                "dur": max(0.0, (span["end_s"] - span["start_s"]) * 1e6),
                "args": args,
            }
        )

    for run_index, run in enumerate(sims):
        pid = run_index + 1
        run_name = run.get("run", f"run {run_index}")
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": f"sim: {run_name}"}}
        )
        offset_us = wall_us(run.get("wall_start_s", epoch_s))
        tids: Dict[str, int] = {}
        run_events = sorted(
            run.get("events") or [], key=lambda e: (str(e.get("track")), e.get("ts_ns", 0.0))
        )
        for event in run_events:
            track = str(event.get("track"))
            if track not in tids:
                tids[track] = len(tids)
                events.append(
                    {"ph": "M", "name": "thread_name", "pid": pid,
                     "tid": tids[track], "args": {"name": track}}
                )
            record: Dict[str, Any] = {
                "ph": event.get("ph", "i"),
                "name": event.get("name", ""),
                "cat": event.get("cat", "sim"),
                "pid": pid,
                "tid": tids[track],
                "ts": offset_us + event.get("ts_ns", 0.0) / 1000.0,
            }
            if record["ph"] == "X":
                record["dur"] = event.get("dur_ns", 0.0) / 1000.0
            elif record["ph"] == "i":
                record["s"] = "t"
            if event.get("args"):
                record["args"] = dict(event["args"])
            elif record["ph"] == "C":
                record["args"] = {"value": 0}
            events.append(record)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.telemetry.spans",
            "trace_id": doc.get("trace_id"),
            "job_id": doc.get("job_id"),
            "epoch_s": epoch_s,
        },
    }
