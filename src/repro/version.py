"""Shared ``--version`` plumbing for the ``hiss-*`` console scripts.

Every entry point reports the same two facts: the package version and
the runcache *code fingerprint* — the digest that keys every cached run
(:func:`repro.core.runcache.code_fingerprint`).  The fingerprint is the
one that matters operationally: two hosts printing the same version but
different fingerprints are running different simulators and will not
share a cache.

The fingerprint hashes the package sources, so it is computed lazily —
only when ``--version`` is actually given — and never taxes a normal
invocation.
"""

from __future__ import annotations

import argparse

__all__ = ["add_version_flag", "version_line"]


def version_line(prog: str) -> str:
    """``<prog> <version> (code fingerprint <digest12>)``."""
    import repro
    from .core.runcache import code_fingerprint

    return f"{prog} {repro.__version__} (code fingerprint {code_fingerprint()[:12]})"


class _VersionAction(argparse.Action):
    def __init__(
        self,
        option_strings,
        dest=argparse.SUPPRESS,
        default=argparse.SUPPRESS,
        help="print package version + runcache code fingerprint and exit",
    ):
        super().__init__(
            option_strings=option_strings, dest=dest, default=default,
            nargs=0, help=help,
        )

    def __call__(self, parser, namespace, values, option_string=None):
        print(version_line(parser.prog))
        parser.exit()


def add_version_flag(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Install ``--version`` on ``parser``; returns it for chaining."""
    parser.add_argument("--version", action=_VersionAction)
    return parser
