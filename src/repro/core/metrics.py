"""Result metrics extracted from a finished system run."""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class CpuAppMetrics:
    """What the paper measures on the CPU application side."""

    name: str
    instructions: float
    productive_ns: float
    pollution_stall_ns: float
    extra_l1_misses: float
    extra_mispredicts: float
    l1_miss_increase: float
    mispredict_increase: float
    #: Rates actually observed by the app's sampled windows (counter analog).
    measured_l1_miss_rate: float = 0.0
    measured_mispredict_rate: float = 0.0


@dataclass(frozen=True)
class GpuMetrics:
    """What the paper measures on the accelerator side."""

    name: str
    progress_ns: float
    faults_issued: int
    faults_completed: int
    stall_ns: float
    mean_ssr_latency_ns: float
    max_ssr_latency_ns: float

    def performance_metric(self) -> float:
        """The paper's GPU metric: SSR rate for ubench, progress otherwise."""
        if self.name == "ubench":
            return float(self.faults_completed)
        return self.progress_ns


@dataclass(frozen=True)
class SystemMetrics:
    """Everything measured over one fixed-horizon co-execution run."""

    horizon_ns: int
    config_label: str
    cpu_app: Optional[CpuAppMetrics]
    gpu: Optional[GpuMetrics]
    cc6_residency: float
    mode_totals_ns: Dict[str, float]
    interrupts_per_core: List[int]
    ipis: int
    ssr_interrupts: int
    ssr_requests: int
    ssr_time_ns: float
    ssr_completed: int
    context_switches: int
    core_wakeups: int
    qos_throttle_events: int = 0
    qos_total_delay_ns: float = 0.0
    #: Per-core mode breakdown (core id -> mode -> ns).
    per_core_modes_ns: Dict[int, Dict[str, int]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serializable rendering (see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SystemMetrics":
        """Rebuild from :meth:`as_dict` output (e.g. parsed back from JSON).

        The round-trip is exact: JSON preserves ints and ``repr``-precision
        floats, so ``from_dict(json.loads(json.dumps(as_dict())))``
        compares equal to the original, bit for bit.
        """
        payload = dict(data)
        cpu_app = payload.pop("cpu_app", None)
        gpu = payload.pop("gpu", None)
        per_core = payload.pop("per_core_modes_ns", {})
        return cls(
            cpu_app=CpuAppMetrics(**cpu_app) if cpu_app is not None else None,
            gpu=GpuMetrics(**gpu) if gpu is not None else None,
            # JSON stringifies int dict keys; restore them.
            per_core_modes_ns={
                int(core): dict(modes) for core, modes in per_core.items()
            },
            **payload,
        )

    @property
    def total_interrupts(self) -> int:
        return sum(self.interrupts_per_core)

    @property
    def ssr_time_fraction(self) -> float:
        """Fraction of total CPU time spent servicing SSRs."""
        cores = len(self.interrupts_per_core)
        return self.ssr_time_ns / (self.horizon_ns * cores) if cores else 0.0

    def cpu_energy_mj(self, power) -> float:
        """CPU-complex energy over the run, in millijoules.

        ``power`` is a :class:`repro.config.PowerConfig`.  Active modes
        (user/kernel/irq/switch) draw ``active_w``; awake-idle and C-state
        transitions draw ``idle_w``; CC6 draws ``cc6_w``.
        """
        active = sum(
            self.mode_totals_ns.get(mode, 0.0)
            for mode in ("user", "kernel", "irq", "switch")
        )
        idle = self.mode_totals_ns.get("idle", 0.0) + self.mode_totals_ns.get(
            "transition", 0.0
        )
        cc6 = self.mode_totals_ns.get("cc6", 0.0)
        joules = (
            active * power.active_w + idle * power.idle_w + cc6 * power.cc6_w
        ) / 1e9
        return joules * 1e3

    def average_cpu_power_w(self, power) -> float:
        """Mean CPU-complex power draw over the run, in watts."""
        cores = len(self.interrupts_per_core)
        if not cores or not self.horizon_ns:
            return 0.0
        return self.cpu_energy_mj(power) / 1e3 / (self.horizon_ns / 1e9)

    def interrupt_balance(self) -> float:
        """max/mean interrupt ratio across cores (1.0 = perfectly even)."""
        counts = self.interrupts_per_core
        mean = sum(counts) / len(counts) if counts else 0.0
        return max(counts) / mean if mean else 0.0

    def summary(self) -> str:
        """A human-readable one-run report (examples and debugging)."""
        lines = [
            f"run: {self.config_label}, horizon {self.horizon_ns / 1e6:.1f} ms",
        ]
        if self.cpu_app is not None:
            lines.append(
                f"cpu app {self.cpu_app.name}: "
                f"{self.cpu_app.instructions / 1e6:.1f}M instructions, "
                f"pollution stall {self.cpu_app.pollution_stall_ns / 1e6:.2f} ms"
            )
        if self.gpu is not None:
            lines.append(
                f"gpu {self.gpu.name}: {self.gpu.progress_ns / 1e6:.2f} ms compute, "
                f"{self.gpu.faults_completed} SSRs done, "
                f"mean latency {self.gpu.mean_ssr_latency_ns / 1e3:.1f} us"
            )
        lines.append(
            f"ssr time {self.ssr_time_fraction * 100:.1f}% of CPU, "
            f"cc6 {self.cc6_residency * 100:.1f}%, "
            f"irqs {self.total_interrupts} (balance {self.interrupt_balance():.2f}), "
            f"ipis {self.ipis}, ctx {self.context_switches}"
        )
        if self.qos_throttle_events:
            lines.append(
                f"qos: {self.qos_throttle_events} throttles, "
                f"{self.qos_total_delay_ns / 1e6:.2f} ms injected delay"
            )
        return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's aggregate for Pareto charts)."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return 0.0
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))
