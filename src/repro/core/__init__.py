"""The paper's primary contribution layer: HISS measurement machinery.

Assembles full systems, runs normalized co-execution experiments, computes
Pareto frontiers over mitigations, and projects accelerator-rich SoCs.
"""

from .experiment import (
    clear_cache,
    cpu_mitigation_ratio,
    cpu_relative_performance,
    gpu_mitigation_ratio,
    gpu_relative_performance,
    run_workloads,
)
from .metrics import CpuAppMetrics, GpuMetrics, SystemMetrics, geomean
from .pareto import ParetoPoint, dominates, frontier_labels, pareto_frontier
from .projection import ProjectionPoint, project_accelerator_scaling
from .tracing import (
    STAGE_SEQUENCE,
    StageLatency,
    format_breakdown,
    latency_breakdown,
    total_mean_latency_ns,
)
from .system import DEFAULT_HORIZON_NS, System

__all__ = [
    "CpuAppMetrics",
    "DEFAULT_HORIZON_NS",
    "GpuMetrics",
    "ParetoPoint",
    "ProjectionPoint",
    "System",
    "SystemMetrics",
    "clear_cache",
    "cpu_mitigation_ratio",
    "cpu_relative_performance",
    "dominates",
    "frontier_labels",
    "STAGE_SEQUENCE",
    "StageLatency",
    "format_breakdown",
    "geomean",
    "gpu_mitigation_ratio",
    "latency_breakdown",
    "total_mean_latency_ns",
    "gpu_relative_performance",
    "pareto_frontier",
    "project_accelerator_scaling",
    "run_workloads",
]
