"""The paper's primary contribution layer: HISS measurement machinery.

Assembles full systems, runs normalized co-execution experiments, computes
Pareto frontiers over mitigations, and projects accelerator-rich SoCs.
"""

from .experiment import (
    clear_cache,
    configure_disk_cache,
    cpu_mitigation_ratio,
    cpu_relative_performance,
    get_disk_cache,
    gpu_mitigation_ratio,
    gpu_relative_performance,
    make_run_key,
    planning,
    planning_active,
    run_workloads,
    set_disk_cache,
    simulate_run,
)
from .metrics import CpuAppMetrics, GpuMetrics, SystemMetrics, geomean
from .planner import (
    PrewarmReport,
    execute_runs,
    plan_runs,
    prewarm_experiments,
    resolve_jobs,
)
from .pool import (
    PoolStats,
    WorkerPool,
    configure_pool,
    order_longest_first,
    shared_pool,
    shared_pool_stats,
    shutdown_shared_pool,
)
from .runcache import (
    CostModel,
    DiskCache,
    RunKey,
    code_fingerprint,
    cost_model,
    reset_code_fingerprint,
    run_key_digest,
    set_cost_ledger,
)
from .pareto import (
    ParetoPoint,
    dominates,
    frontier_labels,
    pareto_frontier,
    pareto_frontier_map,
    vector_dominates,
)
from .projection import ProjectionPoint, project_accelerator_scaling
from .tracing import (
    STAGE_SEQUENCE,
    StageLatency,
    format_breakdown,
    latency_breakdown,
    total_mean_latency_ns,
)
from .system import DEFAULT_HORIZON_NS, System

__all__ = [
    "CostModel",
    "CpuAppMetrics",
    "DEFAULT_HORIZON_NS",
    "DiskCache",
    "GpuMetrics",
    "ParetoPoint",
    "PoolStats",
    "PrewarmReport",
    "ProjectionPoint",
    "RunKey",
    "System",
    "SystemMetrics",
    "WorkerPool",
    "clear_cache",
    "code_fingerprint",
    "configure_disk_cache",
    "configure_pool",
    "cost_model",
    "execute_runs",
    "get_disk_cache",
    "make_run_key",
    "order_longest_first",
    "plan_runs",
    "planning",
    "planning_active",
    "prewarm_experiments",
    "reset_code_fingerprint",
    "resolve_jobs",
    "run_key_digest",
    "set_cost_ledger",
    "set_disk_cache",
    "shared_pool",
    "shared_pool_stats",
    "shutdown_shared_pool",
    "simulate_run",
    "cpu_mitigation_ratio",
    "cpu_relative_performance",
    "dominates",
    "frontier_labels",
    "STAGE_SEQUENCE",
    "StageLatency",
    "format_breakdown",
    "geomean",
    "gpu_mitigation_ratio",
    "latency_breakdown",
    "total_mean_latency_ns",
    "gpu_relative_performance",
    "pareto_frontier",
    "pareto_frontier_map",
    "project_accelerator_scaling",
    "run_workloads",
    "vector_dominates",
]
