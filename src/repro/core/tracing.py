"""SSR chain tracing: per-stage latency breakdowns.

Every :class:`~repro.iommu.request.SsrRequest` is stamped as it moves
through the handling chain (Figure 1 of the paper):

``submitted`` (device writes the fault) -> ``accepted`` (PPR queue slot,
i.e., hardware backpressure cleared) -> ``drained`` (bottom half read the
log) -> ``queued`` (work item inserted) -> ``service_start`` (kworker got
the CPU) -> ``completed`` (response written back).

:func:`latency_breakdown` aggregates a set of completed requests into
per-stage latency statistics — mean and max exactly, p50/p95/p99 via the
telemetry histogram's geometric buckets — the tool for answering "where
does the SSR time go, and what did a mitigation actually change?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..iommu.request import SsrRequest
from ..telemetry.metrics import SUMMARY_PERCENTILES, Histogram

#: The chain stages, in order, with human labels.
STAGE_SEQUENCE: List[Tuple[str, str, str]] = [
    ("submitted", "accepted", "ppr_queue_wait"),
    ("accepted", "drained", "interrupt_and_bottom_half"),
    ("drained", "queued", "preprocessing"),
    ("queued", "service_start", "worker_scheduling"),
    ("service_start", "completed", "service"),
]


@dataclass(frozen=True)
class StageLatency:
    """Latency statistics of one chain stage over a request population.

    ``mean_ns`` and ``max_ns`` are exact; the quantiles come from a
    geometric-bucket :class:`~repro.telemetry.metrics.Histogram` (worst
    case ~12% relative error, clamped to the observed range).
    """

    name: str
    mean_ns: float
    max_ns: float
    samples: int
    p50_ns: float = 0.0
    p95_ns: float = 0.0
    p99_ns: float = 0.0


def latency_breakdown(requests: Iterable[SsrRequest]) -> List[StageLatency]:
    """Aggregate per-stage latencies over completed requests.

    Requests missing a stamp for a stage (e.g., signals, which skip the
    PPR path) simply do not contribute samples to that stage.
    """
    histograms: Dict[str, Histogram] = {
        label: Histogram(label) for _start, _end, label in STAGE_SEQUENCE
    }
    for request in requests:
        for start, end, label in STAGE_SEQUENCE:
            delta = request.stage_delta(start, end)
            if delta is None:
                continue
            histograms[label].record(delta)
    breakdown = []
    for _start, _end, label in STAGE_SEQUENCE:
        summary = histograms[label].summary()
        percentiles = summary["percentiles"]
        breakdown.append(
            StageLatency(
                name=label,
                mean_ns=summary["mean"],
                max_ns=summary["max"],
                samples=summary["count"],
                p50_ns=percentiles["p50"],
                p95_ns=percentiles["p95"],
                p99_ns=percentiles["p99"],
            )
        )
    return breakdown


def total_mean_latency_ns(requests: Iterable[SsrRequest]) -> float:
    """Mean end-to-end latency over completed requests."""
    latencies = [r.latency_ns for r in requests if r.latency_ns is not None]
    return sum(latencies) / len(latencies) if latencies else 0.0


def format_breakdown(breakdown: List[StageLatency]) -> str:
    """Render a breakdown as an aligned text table.

    The original mean/max/samples columns keep their positions; the
    percentile columns are appended (backward-compatible output).
    """
    percentile_headers = " ".join(
        f"{f'p{p}_us':>9s}" for p in SUMMARY_PERCENTILES
    )
    lines = [
        f"{'stage':28s} {'mean_us':>9s} {'max_us':>9s} {'samples':>8s} "
        f"{percentile_headers}"
    ]
    lines.append("-" * len(lines[0]))
    for stage in breakdown:
        percentile_cells = " ".join(
            f"{getattr(stage, f'p{p}_ns') / 1e3:9.2f}" for p in SUMMARY_PERCENTILES
        )
        lines.append(
            f"{stage.name:28s} {stage.mean_ns / 1e3:9.2f} "
            f"{stage.max_ns / 1e3:9.2f} {stage.samples:8d} "
            f"{percentile_cells}"
        )
    return "\n".join(lines)
