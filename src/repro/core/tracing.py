"""SSR chain tracing: per-stage latency breakdowns.

Every :class:`~repro.iommu.request.SsrRequest` is stamped as it moves
through the handling chain (Figure 1 of the paper):

``submitted`` (device writes the fault) -> ``accepted`` (PPR queue slot,
i.e., hardware backpressure cleared) -> ``drained`` (bottom half read the
log) -> ``queued`` (work item inserted) -> ``service_start`` (kworker got
the CPU) -> ``completed`` (response written back).

:func:`latency_breakdown` aggregates a set of completed requests into mean
per-stage latencies — the tool for answering "where does the SSR time go,
and what did a mitigation actually change?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..iommu.request import SsrRequest

#: The chain stages, in order, with human labels.
STAGE_SEQUENCE: List[Tuple[str, str, str]] = [
    ("submitted", "accepted", "ppr_queue_wait"),
    ("accepted", "drained", "interrupt_and_bottom_half"),
    ("drained", "queued", "preprocessing"),
    ("queued", "service_start", "worker_scheduling"),
    ("service_start", "completed", "service"),
]


@dataclass(frozen=True)
class StageLatency:
    """Mean/max latency of one chain stage over a request population."""

    name: str
    mean_ns: float
    max_ns: float
    samples: int


def latency_breakdown(requests: Iterable[SsrRequest]) -> List[StageLatency]:
    """Aggregate per-stage latencies over completed requests.

    Requests missing a stamp for a stage (e.g., signals, which skip the
    PPR path) simply do not contribute samples to that stage.
    """
    sums: Dict[str, float] = {}
    maxes: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for request in requests:
        for start, end, label in STAGE_SEQUENCE:
            delta = request.stage_delta(start, end)
            if delta is None:
                continue
            sums[label] = sums.get(label, 0.0) + delta
            maxes[label] = max(maxes.get(label, 0.0), delta)
            counts[label] = counts.get(label, 0) + 1
    breakdown = []
    for _start, _end, label in STAGE_SEQUENCE:
        count = counts.get(label, 0)
        breakdown.append(
            StageLatency(
                name=label,
                mean_ns=sums.get(label, 0.0) / count if count else 0.0,
                max_ns=maxes.get(label, 0.0),
                samples=count,
            )
        )
    return breakdown


def total_mean_latency_ns(requests: Iterable[SsrRequest]) -> float:
    """Mean end-to-end latency over completed requests."""
    latencies = [r.latency_ns for r in requests if r.latency_ns is not None]
    return sum(latencies) / len(latencies) if latencies else 0.0


def format_breakdown(breakdown: List[StageLatency]) -> str:
    """Render a breakdown as an aligned text table."""
    lines = [f"{'stage':28s} {'mean_us':>9s} {'max_us':>9s} {'samples':>8s}"]
    lines.append("-" * len(lines[0]))
    for stage in breakdown:
        lines.append(
            f"{stage.name:28s} {stage.mean_ns / 1e3:9.2f} "
            f"{stage.max_ns / 1e3:9.2f} {stage.samples:8d}"
        )
    return "\n".join(lines)
