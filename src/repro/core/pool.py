"""Warm execution backend: a persistent worker pool for simulation runs.

The parallel engine used to build a fresh ``ProcessPoolExecutor`` for
every batch, so each drained service batch (and every CLI invocation)
paid worker start-up — interpreter boot, the import of the whole
``repro`` package, calibration set-up — before a single run simulated.
That is this project's own version of the paper's complaint: service
machinery stealing time from the work the request actually asked for.

This module keeps the service machinery *resident*:

* :class:`WorkerPool` — long-lived worker processes, spawned once and
  reused across batches.  Each worker warms up exactly once
  (:func:`_warm_start`: import the simulation stack, touch the workload
  calibration tables) and then serves tasks until it is recycled or the
  pool shuts down, so steady-state batch latency is pure simulation
  time plus one queue hop.
* **Crash isolation** — a worker exception is shipped back as that
  task's failure; a worker that dies outright (segfault, ``os._exit``)
  fails only the task it was running, and the pool respawns a
  replacement so the rest of the batch completes.
* **Recycling** — after ``recycle_after`` tasks a worker exits cleanly
  and is respawned on demand, bounding any slow leak a long daemon
  lifetime could accumulate.
* **Stats** — spawns, recycles, crashes, tasks, and the warm-hit ratio
  (tasks served by a worker that was already resident before the batch
  began) are exported through ``/metrics`` and the prewarm summary.

The pool never touches simulation semantics: workers run the same
:func:`repro.core.experiment.simulate_run` as the serial path, results
are keyed, and the caches are filled in the parent — so warm-pool,
cold-pool, and serial results are byte-for-byte identical regardless of
dispatch order.

Dispatch order itself comes from the cost model
(:class:`repro.core.runcache.CostModel`): pending keys are sorted
longest-predicted-first (:func:`order_longest_first`), which bounds a
batch's makespan by its longest run instead of whichever unlucky tail
a hash-ordered dispatch would produce.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from . import experiment as _experiment
from .runcache import RunKey, cost_model, run_key_digest

__all__ = [
    "PoolStats",
    "WorkerPool",
    "configure_pool",
    "order_longest_first",
    "run_label",
    "run_task",
    "shared_pool",
    "shared_pool_stats",
    "shutdown_shared_pool",
    "warm_pool_enabled",
]

#: Planned worker retirement: after this many tasks a worker exits and is
#: respawned on demand (bounds slow leaks over a daemon's lifetime).
DEFAULT_RECYCLE_AFTER = 256

#: ``HISS_POOL=cold`` falls back to a fresh pool per batch (A/B lever).
_POOL_ENV = "HISS_POOL"
#: Override the multiprocessing start method (``fork``/``spawn``/...).
_START_ENV = "HISS_POOL_START"

#: Module defaults, adjustable via :func:`configure_pool` (daemon flags).
_DEFAULTS = {"recycle_after": DEFAULT_RECYCLE_AFTER, "start_method": None}

#: How long the collector waits on the result queue before checking for
#: dead workers (seconds).
_POLL_S = 0.25
#: Consecutive idle polls (all workers ready + idle, tasks still pending)
#: tolerated before the pool declares the remaining tasks lost.  Only a
#: worker that dies in the sliver between dequeueing a task and
#: announcing it can trigger this; it is a backstop, not a timeout.
_STALL_POLLS = 120
#: Consecutive workers dying *before* finishing warm-up tolerated before
#: the pool gives up.  A warm-up death is environmental (broken import,
#: OOM at start) — respawning would loop forever, so fail the batch.
_WARMUP_FAILURE_LIMIT = 3


def warm_pool_enabled() -> bool:
    """Whether ``execute_runs`` should keep a resident pool (default yes)."""
    return os.environ.get(_POOL_ENV, "warm").strip().lower() != "cold"


def default_start_method() -> str:
    """The multiprocessing start method for workers.

    ``fork`` where available (workers inherit the parent's already-warm
    imports for free); ``spawn`` elsewhere.  ``HISS_POOL_START`` or
    :func:`configure_pool` overrides — the service bench uses ``spawn``
    to make the cold-start cost it measures explicit.
    """
    override = os.environ.get(_START_ENV) or _DEFAULTS["start_method"]
    if override:
        return override
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def configure_pool(
    recycle_after: Optional[int] = None, start_method: Optional[str] = None
) -> None:
    """Set process-wide pool defaults (the daemon's ``--pool-*`` flags)."""
    if recycle_after is not None:
        if recycle_after < 0:
            raise ValueError(f"recycle_after must be >= 0, got {recycle_after}")
        _DEFAULTS["recycle_after"] = recycle_after
    if start_method is not None:
        _DEFAULTS["start_method"] = start_method


def run_label(key: RunKey) -> str:
    """A compact, human-readable name for one run (trace track prefix)."""
    cpu_name, gpu_name, ssr_enabled, config, horizon_ns = key
    parts = [cpu_name or "idle", "x", gpu_name or "nogpu"]
    label = "".join(parts)
    if not ssr_enabled:
        label += "!nossr"
    config_label = config.label
    if config_label != "Default":
        label += f"[{config_label}]"
    return f"{label}@{horizon_ns / 1e6:g}ms"


def order_longest_first(keys: Sequence[RunKey]) -> List[RunKey]:
    """Cost-model dispatch order: predicted-longest first, digest ties.

    Longest-job-first bounds the batch makespan by the longest single run
    (plus one task of slack per worker); the tie-break on the stable
    run-key digest keeps the order deterministic even before the model
    has observed anything.
    """
    model = cost_model()
    return sorted(keys, key=lambda key: (-model.predict(key), run_key_digest(key)))


# ----------------------------------------------------------------------
# The task a worker runs
# ----------------------------------------------------------------------
def run_task(
    key: RunKey,
    trace_capacity: int,
    span_context: Optional[dict] = None,
    profile: bool = False,
    events_limit: Optional[int] = None,
):
    """Simulate one run; returns ``(metrics, events, info)``.

    ``span_context`` is the serving tier's cross-process trace baggage
    (trace ids, run label).  The worker never reads it — it only stamps
    the run's wall-clock window onto it and ships it back, so the parent
    can merge a worker-side span into the right end-to-end trace.  It is
    deliberately kept out of :func:`simulate_run`: tracing identity must
    never influence simulated results.

    With ``profile=True`` the run is attributed into a private
    :class:`~repro.profiling.Profiler` and the resulting run document is
    shipped back under ``info["profile"]`` (profiling, like tracing,
    never changes the metrics).

    The return value is trimmed for the trip back through the pipe:
    ``events`` is ``None`` unless tracing actually captured something,
    ``events_limit`` truncates the stream *before* pickling (the excess
    is counted into ``info["events_dropped"]``), and ``info`` exists only
    when there is span context or a profile to carry.
    """
    tracer = None
    if trace_capacity:
        from ..telemetry import Tracer

        tracer = Tracer(capacity=trace_capacity)
    profiler = None
    if profile:
        from ..profiling import Profiler

        profiler = Profiler()
    wall_start_s = time.time()
    metrics = _experiment.simulate_run(key, tracer=tracer, profiler=profiler)
    wall_end_s = time.time()
    events = None
    dropped = 0
    if tracer is not None:
        events = list(tracer.events())
        dropped = tracer.dropped
        if events_limit is not None and len(events) > events_limit:
            dropped += len(events) - events_limit
            del events[events_limit:]
        if not events:
            events = None
    info = None
    if span_context is not None or profiler is not None:
        info = dict(span_context or {})
        info.setdefault("run", run_label(key))
        info["wall_start_s"] = wall_start_s
        info["wall_end_s"] = wall_end_s
        info["worker_pid"] = os.getpid()
        info["events_dropped"] = dropped
        if profiler is not None:
            info["profile"] = profiler.take_document()
    return metrics, events, info


def _warm_start() -> None:
    """One-time worker warm-up: pre-import the stack, pre-load calibration.

    Everything :func:`simulate_run` will touch is pulled in here so the
    first task a worker serves pays the same marginal cost as the
    hundredth.  Inherited telemetry/profiling sinks are detached — the
    parent may have an active tracer, but nothing a worker records into
    an inherited ring could ever be read, so recording would be pure
    waste (results never depend on either; that is their contract).
    """
    from .. import config  # noqa: F401
    from ..telemetry import set_active_tracer
    from ..profiling import set_active_collector
    from ..workloads import gpu_app, parsec  # noqa: F401
    from . import system  # noqa: F401

    set_active_tracer(None)
    set_active_collector(None)
    # Touch the calibration path for a real workload pair so their
    # derived tables (steady states, stream specs) are computed before
    # the first task arrives.
    from ..workloads import GPU_APP_NAMES, PARSEC_NAMES

    for name in PARSEC_NAMES[:1]:
        parsec(name)
    for name in GPU_APP_NAMES[:1]:
        gpu_app(name)


def _resolve_runner(spec: Optional[Union[str, Callable]]) -> Callable:
    """Turn a runner spec into a callable inside the worker.

    ``None`` means :func:`run_task`.  A ``"module:attr"`` string is
    imported here (spawn-safe); a callable is used as-is (fork-safe and
    picklable-by-reference for module-level functions).
    """
    if spec is None:
        return run_task
    if callable(spec):
        return spec
    module_name, _, attr = spec.partition(":")
    if not attr:
        raise ValueError(f"runner spec {spec!r} is not 'module:attr'")
    return getattr(importlib.import_module(module_name), attr)


def _worker_main(worker_id, inbox, outbox, recycle_after, runner_spec) -> None:
    """Worker loop: warm up once, serve tasks until stopped or recycled."""
    try:
        runner = _resolve_runner(runner_spec)
        _warm_start()
        outbox.put(("ready", worker_id, os.getpid()))
        completed = 0
        while True:
            item = inbox.get()
            if item is None:
                return
            seq = item[0]
            outbox.put(("start", worker_id, seq))
            begin = time.perf_counter()
            try:
                payload = runner(*item[1:])
            except BaseException:
                outbox.put((
                    "error", worker_id, seq,
                    traceback.format_exc(limit=20),
                    time.perf_counter() - begin,
                ))
            else:
                outbox.put((
                    "ok", worker_id, seq, payload, time.perf_counter() - begin
                ))
            completed += 1
            if recycle_after and completed >= recycle_after:
                outbox.put(("recycle", worker_id))
                return
    except KeyboardInterrupt:  # parent is going down; die quietly
        pass


@dataclass
class PoolStats:
    """Lifetime counters of one :class:`WorkerPool` (monotonic)."""

    spawned_workers: int = 0
    recycled_workers: int = 0
    crashed_workers: int = 0
    batches: int = 0
    tasks_dispatched: int = 0
    tasks_completed: int = 0
    tasks_failed: int = 0
    #: Tasks served by a worker already resident before its batch began.
    warm_hits: int = 0

    @property
    def warm_hit_ratio(self) -> float:
        served = self.tasks_completed + self.tasks_failed
        return self.warm_hits / served if served else 0.0

    def document(self, live_workers: int = 0) -> Dict[str, float]:
        return {
            "spawned_workers": float(self.spawned_workers),
            "recycled_workers": float(self.recycled_workers),
            "crashed_workers": float(self.crashed_workers),
            "live_workers": float(live_workers),
            "batches": float(self.batches),
            "tasks_dispatched": float(self.tasks_dispatched),
            "tasks_completed": float(self.tasks_completed),
            "tasks_failed": float(self.tasks_failed),
            "warm_hits": float(self.warm_hits),
            "warm_hit_ratio": self.warm_hit_ratio,
        }


@dataclass
class _WorkerHandle:
    """Parent-side view of one worker process."""

    worker_id: int
    process: Any
    spawn_batch: int
    ready: bool = False
    pid: Optional[int] = None
    #: Task seq currently executing ("start" seen, result not yet).
    current_seq: Optional[int] = None
    tasks_done: int = 0


@dataclass
class TaskResult:
    """One task's outcome, in completion order."""

    index: int
    ok: bool
    payload: Any = None
    elapsed_s: float = 0.0
    error: Optional[str] = None


class WorkerPool:
    """Persistent pool of warm simulation workers (one per daemon/CLI life).

    Tasks are ``(key, trace_capacity, span_context, profile, events_limit)``
    tuples handed to ``runner`` (default :func:`run_task`) inside the
    worker.  ``run_batch`` dispatches a batch and collects every result,
    isolating per-task failures; the pool survives worker crashes and
    plans worker retirement after ``recycle_after`` tasks.

    One batch runs at a time (the planner and the daemon's scheduler both
    already serialize batches); the lock makes that explicit.
    """

    def __init__(
        self,
        max_workers: int,
        recycle_after: Optional[int] = None,
        start_method: Optional[str] = None,
        runner: Optional[Union[str, Callable]] = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = int(max_workers)
        self.recycle_after = (
            _DEFAULTS["recycle_after"] if recycle_after is None else recycle_after
        )
        self.start_method = start_method or default_start_method()
        self._runner = runner
        self._ctx = multiprocessing.get_context(self.start_method)
        #: Parent -> workers.  A buffered ``Queue``: the parent's feeder
        #: thread makes dispatch non-blocking, and the parent never dies
        #: mid-put, so the buffering is harmless.
        self._inbox = self._ctx.Queue()
        #: Workers -> parent.  A ``SimpleQueue`` on purpose: its ``put``
        #: writes straight into the pipe (no feeder thread), so a
        #: worker's "start" announcement and finished results are on the
        #: wire *before* the next instruction runs.  A buffered queue
        #: here would lose whatever its feeder had not flushed when a
        #: worker hard-crashes — making the death unattributable and
        #: discarding results that had actually completed.
        self._outbox = self._ctx.SimpleQueue()
        self._workers: Dict[int, _WorkerHandle] = {}
        self._next_worker_id = 0
        self._next_seq = 0
        self._batch_index = 0
        self._batch_lock = threading.Lock()
        self._closed = False
        self._warmup_failures = 0  # consecutive pre-ready deaths
        self.stats = PoolStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._closed

    @property
    def live_workers(self) -> int:
        return sum(1 for h in self._workers.values() if h.process.is_alive())

    def _spawn_worker(self) -> _WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id, self._inbox, self._outbox,
                self.recycle_after, self._runner,
            ),
            name=f"hiss-pool-{worker_id}",
            daemon=True,
        )
        process.start()
        handle = _WorkerHandle(
            worker_id=worker_id, process=process, spawn_batch=self._batch_index
        )
        self._workers[worker_id] = handle
        self.stats.spawned_workers += 1
        return handle

    def ensure_workers(self) -> None:
        """Bring the pool to full strength (idempotent; spawns lazily)."""
        if self._closed:
            raise RuntimeError("pool is shut down")
        for worker_id, handle in list(self._workers.items()):
            if not handle.process.is_alive():
                # Died idle between batches (or recycled): account and drop.
                self.stats.crashed_workers += 1
                del self._workers[worker_id]
        while len(self._workers) < self.max_workers:
            self._spawn_worker()

    def prewarm(self) -> None:
        """Spawn the full worker set now (daemon start-up, benchmarks)."""
        with self._batch_lock:
            self.ensure_workers()

    def shutdown(self, timeout_s: float = 5.0) -> None:
        """Stop every worker; safe to call twice."""
        with self._batch_lock:
            if self._closed:
                return
            self._closed = True
            for _ in self._workers:
                try:
                    self._inbox.put(None)
                except (OSError, ValueError):
                    break
            deadline = time.time() + timeout_s
            for handle in self._workers.values():
                handle.process.join(timeout=max(0.0, deadline - time.time()))
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
            self._workers.clear()
            for queue in (self._inbox, self._outbox):
                try:
                    queue.close()
                    if hasattr(queue, "join_thread"):  # SimpleQueue has none
                        queue.join_thread()
                except (OSError, ValueError):
                    pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run_batch(self, tasks: Sequence[Tuple]) -> List[TaskResult]:
        """Run ``tasks`` on the pool; returns results in completion order.

        A task that raises inside the worker comes back as ``ok=False``
        with the formatted traceback; a task whose worker dies comes back
        as ``ok=False`` with the exit code.  Neither aborts the batch.
        """
        if not tasks:
            return []
        with self._batch_lock:
            if self._closed:
                raise RuntimeError("pool is shut down")
            self._batch_index += 1
            batch = self._batch_index
            self.stats.batches += 1
            self.ensure_workers()
            pending: Dict[int, int] = {}
            for index, task in enumerate(tasks):
                seq = self._next_seq
                self._next_seq += 1
                pending[seq] = index
                self._inbox.put((seq,) + tuple(task))
                self.stats.tasks_dispatched += 1
            results: List[TaskResult] = []
            idle_polls = 0
            while pending:
                try:
                    message = self._recv(_POLL_S)
                except Empty:
                    if self._reap_dead(pending, results):
                        idle_polls = 0
                    elif self._stalled():
                        idle_polls += 1
                        if idle_polls >= _STALL_POLLS:
                            self._fail_lost(pending, results)
                    else:
                        idle_polls = 0
                    continue
                idle_polls = 0
                self._handle_message(message, batch, pending, results)
            return results

    def _recv(self, timeout_s: float):
        """Next worker message, or :class:`queue.Empty` after ``timeout_s``.

        ``SimpleQueue`` has no timed ``get``; the parent is its only
        reader, so polling the underlying pipe first is race-free.
        """
        if not self._outbox._reader.poll(timeout_s):
            raise Empty
        return self._outbox.get()

    def _handle_message(self, message, batch, pending, results) -> None:
        kind = message[0]
        if kind == "ready":
            _, worker_id, pid = message
            self._warmup_failures = 0
            handle = self._workers.get(worker_id)
            if handle is not None:
                handle.ready = True
                handle.pid = pid
        elif kind == "start":
            _, worker_id, seq = message
            handle = self._workers.get(worker_id)
            if handle is not None:
                handle.ready = True
                handle.current_seq = seq
                if handle.spawn_batch < batch:
                    self.stats.warm_hits += 1
        elif kind in ("ok", "error"):
            if kind == "ok":
                _, worker_id, seq, payload, elapsed_s = message
            else:
                _, worker_id, seq, error, elapsed_s = message
            handle = self._workers.get(worker_id)
            if handle is not None:
                handle.current_seq = None
                handle.tasks_done += 1
            index = pending.pop(seq, None)
            if index is None:  # stale (task already failed via a reap)
                return
            if kind == "ok":
                self.stats.tasks_completed += 1
                results.append(TaskResult(index, True, payload, elapsed_s))
            else:
                self.stats.tasks_failed += 1
                results.append(
                    TaskResult(index, False, elapsed_s=elapsed_s, error=error)
                )
        elif kind == "recycle":
            _, worker_id = message
            handle = self._workers.pop(worker_id, None)
            if handle is not None:
                handle.process.join(timeout=5.0)
                self.stats.recycled_workers += 1
            if pending:  # keep the batch moving at full strength
                self._spawn_worker()

    def _reap_dead(self, pending, results) -> bool:
        """Fail the in-flight task of any dead worker; respawn. True if any.

        A worker that dies before it ever reported ready failed during
        warm-up; after :data:`_WARMUP_FAILURE_LIMIT` of those in a row the
        environment itself is broken and the pool raises instead of
        respawning into the same wall forever.
        """
        reaped = False
        for worker_id, handle in list(self._workers.items()):
            if handle.process.is_alive():
                continue
            reaped = True
            del self._workers[worker_id]
            self.stats.crashed_workers += 1
            if not handle.ready:
                self._warmup_failures += 1
                if self._warmup_failures >= _WARMUP_FAILURE_LIMIT:
                    raise RuntimeError(
                        f"pool workers died {self._warmup_failures} times in a "
                        f"row during warm-up (last exit code "
                        f"{handle.process.exitcode}); check the worker stderr"
                    )
            seq = handle.current_seq
            if seq is not None and seq in pending:
                index = pending.pop(seq)
                self.stats.tasks_failed += 1
                results.append(TaskResult(
                    index, False,
                    error=(
                        f"worker {worker_id} (pid {handle.pid}) died with exit "
                        f"code {handle.process.exitcode} while running this task"
                    ),
                ))
            if pending:
                self._spawn_worker()
        return reaped

    def _stalled(self) -> bool:
        """All workers warm and idle yet tasks are pending — nothing moving."""
        handles = self._workers.values()
        return bool(handles) and all(
            h.ready and h.current_seq is None and h.process.is_alive()
            for h in handles
        )

    def _fail_lost(self, pending, results) -> None:
        """Backstop: a task vanished (worker died before announcing it)."""
        for seq, index in sorted(pending.items()):
            self.stats.tasks_failed += 1
            results.append(TaskResult(
                index, False,
                error="task lost: its worker died before reporting it",
            ))
        pending.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_document(self) -> Dict[str, float]:
        return self.stats.document(live_workers=self.live_workers)


# ----------------------------------------------------------------------
# The process-wide shared pool (per daemon lifetime / per CLI invocation)
# ----------------------------------------------------------------------
_SHARED: Optional[WorkerPool] = None
_SHARED_LOCK = threading.Lock()


def shared_pool(max_workers: int) -> WorkerPool:
    """The process-wide warm pool, (re)created to match ``max_workers``.

    The daemon and the CLI both funnel through here, so a second batch —
    whatever code path produced it — reuses the workers the first batch
    spawned.  Asking for a different worker count retires the old pool
    and builds a fresh one (the daemon never does; its ``--jobs`` is
    fixed for its lifetime).
    """
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is not None and (
            not _SHARED.alive or _SHARED.max_workers != max_workers
        ):
            _SHARED.shutdown()
            _SHARED = None
        if _SHARED is None:
            _SHARED = WorkerPool(max_workers)
        return _SHARED


def shared_pool_stats() -> Dict[str, float]:
    """The shared pool's stats document (all-zero when no pool exists)."""
    with _SHARED_LOCK:
        if _SHARED is None:
            return PoolStats().document(live_workers=0)
        return _SHARED.stats_document()


def shutdown_shared_pool() -> None:
    """Retire the shared pool (tests, benchmarks, process exit)."""
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is not None:
            _SHARED.shutdown()
            _SHARED = None


atexit.register(shutdown_shared_pool)
