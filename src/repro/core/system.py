"""System assembly: one heterogeneous SoC instance per measured run.

A :class:`System` wires the environment, kernel, IOMMU + driver, optional
QoS governor, and the attached workloads, then runs a fixed horizon of
simulated time and extracts :class:`~repro.core.metrics.SystemMetrics`.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from ..gpu import GpuDevice, SignalPath
from ..iommu import Iommu, IommuDriver
from ..oskernel import Kernel, accounting as acct
from ..profiling import NULL_PROFILER, get_active_collector
from ..qos import AdaptiveQosGovernor, QosGovernor
from ..sim import Environment, RngRegistry
from ..telemetry import get_active_tracer
from ..workloads import CpuApp, CpuAppProfile, GpuAppProfile
from .metrics import CpuAppMetrics, GpuMetrics, SystemMetrics

#: Default measured horizon: long enough for steady-state behaviour of all
#: workload patterns (several barrier and fault-phase periods).
DEFAULT_HORIZON_NS = 50_000_000


class System:
    """A simulated heterogeneous SoC: CPUs + OS + IOMMU + GPU(s)."""

    def __init__(self, config: Optional[SystemConfig] = None, tracer=None, profiler=None):
        self.config = config or SystemConfig()
        self.env = Environment()
        self.rng = RngRegistry(self.config.seed)
        #: Telemetry sink: an explicit tracer wins; otherwise the process
        #: active tracer (set by ``hiss-experiments --trace``), which
        #: defaults to the no-op NULL_TRACER.
        self.tracer = tracer if tracer is not None else get_active_tracer()
        #: Attribution sink: an explicit profiler wins; otherwise the
        #: process active collector (set by ``hiss-experiments
        #: --profile``) hands out a fresh per-run profiler, defaulting to
        #: the no-op NULL_PROFILER.  Profiling is a pure side channel:
        #: metrics are byte-for-byte identical with it on or off.
        if profiler is None:
            collector = get_active_collector()
            profiler = (
                collector.new_profiler() if collector is not None else NULL_PROFILER
            )
        self.profiler = profiler
        self.kernel = Kernel(
            self.env, self.config, self.rng,
            tracer=self.tracer, ledger=self.profiler.ledger,
        )
        self.iommu = Iommu(self.kernel)
        self.driver = IommuDriver(self.kernel, self.iommu)
        self.signal_path = SignalPath(self.kernel)
        if self.config.qos.enabled:
            governor_class = (
                AdaptiveQosGovernor if self.config.qos.adaptive else QosGovernor
            )
            self.kernel.qos_governor = governor_class(self.kernel)
        self.cpu_app: Optional[CpuApp] = None
        self.gpus: List[GpuDevice] = []
        self._ran = False

    # ------------------------------------------------------------------
    # Workload attachment
    # ------------------------------------------------------------------
    def add_cpu_app(self, profile: CpuAppProfile) -> CpuApp:
        """Attach the CPU application (at most one per system)."""
        if self.cpu_app is not None:
            raise RuntimeError("a CPU application is already attached")
        self.cpu_app = CpuApp(self.kernel, profile)
        return self.cpu_app

    def add_gpu_workload(
        self, profile: GpuAppProfile, ssr_enabled: bool = True
    ) -> GpuDevice:
        """Attach a GPU workload.  Multiple GPUs model accelerator-rich SoCs."""
        gpu = GpuDevice(self.kernel, self.iommu, profile, ssr_enabled=ssr_enabled)
        self.gpus.append(gpu)
        return gpu

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, horizon_ns: int = DEFAULT_HORIZON_NS) -> SystemMetrics:
        """Boot everything, simulate ``horizon_ns``, and collect metrics."""
        if self._ran:
            raise RuntimeError("a System instance runs exactly once")
        self._ran = True
        self.kernel.boot()
        self.driver.start()
        if self.cpu_app is not None:
            self.cpu_app.start()
        for gpu in self.gpus:
            gpu.start()
        if self.profiler.enabled:
            self.profiler.start(self)
        self.env.run(until=horizon_ns)
        self.kernel.finalize()
        if self.profiler.enabled:
            self.profiler.finish_run(self, horizon_ns)
        return self._collect(horizon_ns)

    def _collect(self, horizon_ns: int) -> SystemMetrics:
        kernel = self.kernel
        cpu_metrics = None
        if self.cpu_app is not None:
            app = self.cpu_app
            miss_rate, mispredict_rate = app.measured_uarch_rates()
            cpu_metrics = CpuAppMetrics(
                name=app.profile.name,
                instructions=app.instructions_retired,
                productive_ns=app.productive_ns,
                pollution_stall_ns=sum(t.pollution_stall_ns for t in app.threads),
                extra_l1_misses=app.extra_l1_misses,
                extra_mispredicts=app.extra_mispredicts,
                l1_miss_increase=app.l1_miss_increase(),
                mispredict_increase=app.mispredict_increase(),
                measured_l1_miss_rate=miss_rate,
                measured_mispredict_rate=mispredict_rate,
            )
        gpu_metrics = None
        if self.gpus:
            primary = self.gpus[0]
            gpu_metrics = GpuMetrics(
                name=primary.profile.name,
                progress_ns=primary.progress_ns,
                faults_issued=primary.faults_issued,
                faults_completed=primary.faults_completed,
                stall_ns=primary.stall_ns,
                mean_ssr_latency_ns=self.iommu.latency.mean_ns,
                max_ssr_latency_ns=self.iommu.latency.max_ns,
            )
        governor = kernel.qos_governor
        return SystemMetrics(
            horizon_ns=horizon_ns,
            config_label=self.config.label,
            cpu_app=cpu_metrics,
            gpu=gpu_metrics,
            cc6_residency=kernel.cc6_residency(horizon_ns),
            mode_totals_ns={
                mode: float(kernel.accounting.total(mode)) for mode in acct.ALL_MODES
            },
            interrupts_per_core=kernel.interrupts_per_core(),
            ipis=kernel.ipis_total(),
            ssr_interrupts=kernel.counters.get(acct.CTR_SSR_INTERRUPT),
            ssr_requests=kernel.counters.get(acct.CTR_SSR_REQUEST),
            ssr_time_ns=float(kernel.ssr_accounting.total_ns),
            ssr_completed=kernel.ssr_accounting.completed,
            context_switches=kernel.counters.get(acct.CTR_CONTEXT_SWITCH),
            core_wakeups=kernel.counters.get(acct.CTR_CORE_WAKEUP),
            qos_throttle_events=governor.throttle_events if governor else 0,
            qos_total_delay_ns=float(governor.total_delay_ns) if governor else 0.0,
            per_core_modes_ns=kernel.accounting.snapshot(),
        )
