"""Parallel experiment engine: plan, dedupe, and fan out simulation runs.

Reproducing the full paper grid executes dozens of independent,
deterministic ``run_workloads`` simulations.  This module turns that
serial sweep into a three-phase pipeline:

1. **Plan** — run each experiment harness in *planning mode* (see
   :func:`repro.core.experiment.planning`): ``run_workloads`` records the
   run keys it would need and returns placeholders, so planning costs
   milliseconds.  Keys are deduplicated across experiments — most figures
   share baselines.
2. **Execute** — the unique, not-yet-cached keys are simulated on a
   ``ProcessPoolExecutor``.  Workers run the exact same
   :func:`~repro.core.experiment.simulate_run` as the serial path, so
   results are bit-for-bit identical; the parent stores each result in
   both cache levels as it arrives.
3. **Replay** — the caller runs the experiments normally; every
   ``run_workloads`` call is now a cache hit and the harnesses only do
   table assembly.

When tracing is enabled, each worker records its run into a private
:class:`~repro.telemetry.Tracer` and ships the events back; the parent
merges them into its tracer under per-run track names, so one Chrome
trace shows every simulated run side by side.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from . import experiment as _experiment
from .runcache import RunKey

#: Ring capacity of each worker's private tracer (events per run).
WORKER_TRACE_CAPACITY = 200_000


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: 0 means one worker per CPU core."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs if jobs else (os.cpu_count() or 1)


def run_label(key: RunKey) -> str:
    """A compact, human-readable name for one run (trace track prefix)."""
    cpu_name, gpu_name, ssr_enabled, config, horizon_ns = key
    parts = [cpu_name or "idle", "x", gpu_name or "nogpu"]
    label = "".join(parts)
    if not ssr_enabled:
        label += "!nossr"
    config_label = config.label
    if config_label != "Default":
        label += f"[{config_label}]"
    return f"{label}@{horizon_ns / 1e6:g}ms"


@dataclass
class PrewarmReport:
    """What one plan/execute pass did (the CLI prints this)."""

    experiments: List[str] = field(default_factory=list)
    unplannable: List[str] = field(default_factory=list)
    planned: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    executed: int = 0
    workers: int = 1
    plan_s: float = 0.0
    execute_s: float = 0.0

    def summary(self) -> str:
        total = self.plan_s + self.execute_s
        line = (
            f"planned {self.planned} unique runs for "
            f"{len(self.experiments)} experiment(s): "
            f"{self.memory_hits} in memory, {self.disk_hits} from disk cache, "
            f"{self.executed} executed on {self.workers} worker(s) "
            f"in {total:.1f}s"
        )
        if self.unplannable:
            line += f" (run serially: {', '.join(self.unplannable)})"
        return line


def plan_runs(
    experiment_ids: Sequence[str],
    kwargs_for: Callable[[str], Dict[str, Any]],
    registry: Optional[Dict[str, Callable]] = None,
    unplannable: Iterable[str] = (),
) -> Tuple[List[RunKey], List[str]]:
    """Collect the deduplicated run keys of ``experiment_ids``, in order.

    ``kwargs_for`` maps an experiment id to the keyword arguments it will
    later be run with — planning must see the same grid the real run will.
    Experiments in ``unplannable`` (those that simulate outside
    ``run_workloads``, e.g. ``table1``) are skipped and reported back.
    """
    if registry is None:
        from ..experiments.common import REGISTRY as registry  # lazy: avoid cycle
    skip = set(unplannable)
    ordered: List[RunKey] = []
    seen = set()
    skipped: List[str] = []
    for experiment_id in experiment_ids:
        if experiment_id in skip:
            skipped.append(experiment_id)
            continue
        fn = registry[experiment_id]
        with _experiment.planning() as collected:
            fn(**kwargs_for(experiment_id))
        # Sets iterate in a hash-seed-dependent order; sort on a stable
        # rendering so the dispatch order (not the results — those are
        # order-independent) is reproducible too.
        stable = lambda key: (  # noqa: E731
            key[0] or "", key[1] or "", key[2], key[4], key[3].stable_json()
        )
        for key in sorted(collected, key=stable):
            if key not in seen:
                seen.add(key)
                ordered.append(key)
    return ordered, skipped


def _worker_run(
    key: RunKey,
    trace_capacity: int,
    span_context: Optional[dict] = None,
    profile: bool = False,
):
    """Pool worker: simulate one run; optionally capture trace/profile.

    ``span_context`` is the serving tier's cross-process trace baggage
    (trace ids, run label).  The worker never reads it — it only stamps
    the run's wall-clock window onto it and ships it back, so the parent
    can merge a worker-side span into the right end-to-end trace.  It is
    deliberately kept out of :func:`simulate_run`: tracing identity must
    never influence simulated results.

    With ``profile=True`` the run is attributed into a private
    :class:`~repro.profiling.Profiler` and the resulting run document is
    shipped back under ``info["profile"]`` (profiling, like tracing,
    never changes the metrics).
    """
    tracer = None
    if trace_capacity:
        from ..telemetry import Tracer

        tracer = Tracer(capacity=trace_capacity)
    profiler = None
    if profile:
        from ..profiling import Profiler

        profiler = Profiler()
    wall_start_s = time.time()
    metrics = _experiment.simulate_run(key, tracer=tracer, profiler=profiler)
    wall_end_s = time.time()
    events = list(tracer.events()) if tracer is not None else None
    info = None
    if span_context is not None or profiler is not None:
        info = dict(span_context or {})
        info.setdefault("run", run_label(key))
        info["wall_start_s"] = wall_start_s
        info["wall_end_s"] = wall_end_s
        info["worker_pid"] = os.getpid()
        info["events_dropped"] = tracer.dropped if tracer is not None else 0
        if profiler is not None:
            info["profile"] = profiler.take_document()
    return metrics, events, info


def _merge_worker_trace(tracer, label: str, events) -> None:
    """Re-emit a worker's events under per-run track names."""
    from ..telemetry.tracer import TraceEvent

    for event in events:
        track = event.track
        track_name = f"core {track}" if isinstance(track, int) else str(track)
        tracer.emit(
            TraceEvent(
                phase=event.phase,
                name=event.name,
                category=event.category,
                track=f"{label} | {track_name}",
                ts_ns=event.ts_ns,
                dur_ns=event.dur_ns,
                args=event.args,
            )
        )


def execute_runs(
    keys: Sequence[RunKey],
    jobs: int,
    tracer=None,
    trace_capacity: int = WORKER_TRACE_CAPACITY,
    report: Optional[PrewarmReport] = None,
    span_context_for: Optional[Callable[[RunKey], Optional[dict]]] = None,
    on_run: Optional[Callable[[RunKey, Optional[list], Optional[dict]], None]] = None,
    profile_keys: Optional[set] = None,
    collector=None,
) -> PrewarmReport:
    """Simulate ``keys`` on a worker pool, filling both cache levels.

    Keys already satisfied by a cache level are not dispatched.  With
    ``jobs == 1`` the runs execute in-process (no pool), which keeps the
    serial path free of multiprocessing machinery.

    ``span_context_for`` (serving tier) maps a key to trace baggage the
    worker carries across the process boundary and returns stamped with
    its wall-clock window; ``on_run`` receives each executed run's
    ``(key, captured events, stamped context)`` as it completes.

    Keys in ``profile_keys`` are simulated *even when cached* — a profile
    only exists for an executed run — with attribution captured in the
    worker; each resulting run document is added to ``collector`` (a
    :class:`~repro.profiling.ProfileCollector`) when one is given, and is
    always available to ``on_run`` via ``info["profile"]``.
    """
    report = report or PrewarmReport()
    report.workers = resolve_jobs(jobs)
    start = time.time()
    profile_keys = profile_keys or set()
    pending: List[RunKey] = []
    for key in keys:
        if key not in profile_keys:
            if key in _experiment._CACHE:
                report.memory_hits += 1
                continue
            if _experiment.cache_lookup(key) is not None:
                report.disk_hits += 1
                continue
        pending.append(key)

    capture = trace_capacity if tracer is not None and tracer.enabled else 0

    def context_for(key: RunKey) -> Optional[dict]:
        return span_context_for(key) if span_context_for is not None else None

    def completed(key: RunKey, metrics, events, info) -> None:
        _experiment.cache_store(key, metrics)
        if events:
            _merge_worker_trace(tracer, run_label(key), events)
        if collector is not None and info and info.get("profile"):
            collector.add(info["profile"])
        if on_run is not None:
            on_run(key, events, info)
        report.executed += 1

    if report.workers == 1 or len(pending) <= 1:
        for key in pending:
            metrics, events, info = _worker_run(
                key, capture, context_for(key), profile=key in profile_keys
            )
            completed(key, metrics, events, info)
    else:
        workers = min(report.workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _worker_run, key, capture, context_for(key),
                    key in profile_keys,
                ): key
                for key in pending
            }
            for future in as_completed(futures):
                key = futures[future]
                metrics, events, info = future.result()
                completed(key, metrics, events, info)
    report.execute_s = time.time() - start
    return report


def prewarm_experiments(
    experiment_ids: Sequence[str],
    kwargs_for: Callable[[str], Dict[str, Any]],
    jobs: int,
    tracer=None,
    registry: Optional[Dict[str, Callable]] = None,
    unplannable: Iterable[str] = (),
    collector=None,
) -> PrewarmReport:
    """Plan + execute: after this, running the experiments is cache-only.

    With a ``collector``, every planned run is executed with attribution
    (cached or not) and its profile document lands in the collector.
    """
    report = PrewarmReport(experiments=list(experiment_ids))
    start = time.time()
    keys, skipped = plan_runs(
        experiment_ids, kwargs_for, registry=registry, unplannable=unplannable
    )
    report.plan_s = time.time() - start
    report.planned = len(keys)
    report.unplannable = skipped
    profile_keys = set(keys) if collector is not None else None
    return execute_runs(
        keys, jobs, tracer=tracer, report=report,
        profile_keys=profile_keys, collector=collector,
    )
