"""Parallel experiment engine: plan, dedupe, and fan out simulation runs.

Reproducing the full paper grid executes dozens of independent,
deterministic ``run_workloads`` simulations.  This module turns that
serial sweep into a three-phase pipeline:

1. **Plan** — run each experiment harness in *planning mode* (see
   :func:`repro.core.experiment.planning`): ``run_workloads`` records the
   run keys it would need and returns placeholders, so planning costs
   milliseconds.  Keys are deduplicated across experiments — most figures
   share baselines.
2. **Execute** — the unique, not-yet-cached keys are dispatched
   longest-predicted-first (see
   :class:`~repro.core.runcache.CostModel`) onto the persistent warm
   worker pool (:mod:`repro.core.pool`) — or a cold per-batch
   ``ProcessPoolExecutor`` when the pool is disabled.  Workers run the
   exact same :func:`~repro.core.experiment.simulate_run` as the serial
   path, so results are bit-for-bit identical regardless of backend or
   dispatch order; the parent stores each result in both cache levels
   as it arrives.  A key that fails — worker exception or worker death
   — is recorded in ``PrewarmReport.failed`` and the rest of the batch
   completes.
3. **Replay** — the caller runs the experiments normally; every
   ``run_workloads`` call is now a cache hit and the harnesses only do
   table assembly.

When tracing is enabled, each worker records its run into a private
:class:`~repro.telemetry.Tracer` and ships the events back; the parent
merges them into its tracer under per-run track names, so one Chrome
trace shows every simulated run side by side.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from . import experiment as _experiment
from .pool import (
    order_longest_first,
    run_label,
    run_task,
    shared_pool,
    warm_pool_enabled,
)
from .runcache import RunKey, cost_model

#: Ring capacity of each worker's private tracer (events per run).
WORKER_TRACE_CAPACITY = 200_000


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``--jobs`` value: 0 means one worker per CPU core."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs if jobs else (os.cpu_count() or 1)


@dataclass
class PrewarmReport:
    """What one plan/execute pass did (the CLI prints this)."""

    experiments: List[str] = field(default_factory=list)
    unplannable: List[str] = field(default_factory=list)
    planned: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    executed: int = 0
    workers: int = 1
    plan_s: float = 0.0
    execute_s: float = 0.0
    #: Keys that did not produce a result, with the worker's traceback
    #: (or death notice).  The rest of the batch still completed.
    failed: List[Tuple[RunKey, str]] = field(default_factory=list)
    #: Cost-model estimate of the batch, summed over pending keys —
    #: reported to the service governor *before* execution.
    predicted_core_s: float = 0.0
    #: Warm-pool stats snapshot taken after the batch (empty when the
    #: batch ran serially or on a cold pool).
    pool: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        total = self.plan_s + self.execute_s
        line = (
            f"planned {self.planned} unique runs for "
            f"{len(self.experiments)} experiment(s): "
            f"{self.memory_hits} in memory, {self.disk_hits} from disk cache, "
            f"{self.executed} executed on {self.workers} worker(s) "
            f"in {total:.1f}s"
        )
        if self.pool:
            line += (
                f" [warm pool: {self.pool['live_workers']:g} live, "
                f"{self.pool['spawned_workers']:g} spawned, "
                f"{self.pool['recycled_workers']:g} recycled, "
                f"warm-hit {100.0 * self.pool['warm_hit_ratio']:.0f}%]"
            )
        if self.failed:
            labels = ", ".join(run_label(key) for key, _tb in self.failed)
            line += f" — {len(self.failed)} FAILED: {labels}"
        if self.unplannable:
            line += f" (run serially: {', '.join(self.unplannable)})"
        return line


def plan_runs(
    experiment_ids: Sequence[str],
    kwargs_for: Callable[[str], Dict[str, Any]],
    registry: Optional[Dict[str, Callable]] = None,
    unplannable: Iterable[str] = (),
) -> Tuple[List[RunKey], List[str]]:
    """Collect the deduplicated run keys of ``experiment_ids``, in order.

    ``kwargs_for`` maps an experiment id to the keyword arguments it will
    later be run with — planning must see the same grid the real run will.
    Experiments in ``unplannable`` (those that simulate outside
    ``run_workloads``, e.g. ``table1``) are skipped and reported back.
    """
    if registry is None:
        from ..experiments.common import REGISTRY as registry  # lazy: avoid cycle
    skip = set(unplannable)
    ordered: List[RunKey] = []
    seen = set()
    skipped: List[str] = []
    for experiment_id in experiment_ids:
        if experiment_id in skip:
            skipped.append(experiment_id)
            continue
        fn = registry[experiment_id]
        with _experiment.planning() as collected:
            fn(**kwargs_for(experiment_id))
        # Sets iterate in a hash-seed-dependent order; sort on a stable
        # rendering so the dispatch order (not the results — those are
        # order-independent) is reproducible too.
        stable = lambda key: (  # noqa: E731
            key[0] or "", key[1] or "", key[2], key[4], key[3].stable_json()
        )
        for key in sorted(collected, key=stable):
            if key not in seen:
                seen.add(key)
                ordered.append(key)
    return ordered, skipped


def _timed_task(
    key: RunKey,
    trace_capacity: int,
    span_context: Optional[dict] = None,
    profile: bool = False,
    events_limit: Optional[int] = None,
):
    """Cold-pool worker entry: :func:`~repro.core.pool.run_task`, timed.

    The warm pool times tasks in its own worker loop; the cold
    ``ProcessPoolExecutor`` path wraps the same task so both backends
    feed the cost model identically.
    """
    begin = time.perf_counter()
    payload = run_task(key, trace_capacity, span_context, profile, events_limit)
    return payload, time.perf_counter() - begin


def _merge_worker_trace(tracer, label: str, events) -> None:
    """Re-emit a worker's events under per-run track names."""
    from ..telemetry.tracer import TraceEvent

    for event in events:
        track = event.track
        track_name = f"core {track}" if isinstance(track, int) else str(track)
        tracer.emit(
            TraceEvent(
                phase=event.phase,
                name=event.name,
                category=event.category,
                track=f"{label} | {track_name}",
                ts_ns=event.ts_ns,
                dur_ns=event.dur_ns,
                args=event.args,
            )
        )


def execute_runs(
    keys: Sequence[RunKey],
    jobs: int,
    tracer=None,
    trace_capacity: int = WORKER_TRACE_CAPACITY,
    report: Optional[PrewarmReport] = None,
    span_context_for: Optional[Callable[[RunKey], Optional[dict]]] = None,
    on_run: Optional[Callable[[RunKey, Optional[list], Optional[dict]], None]] = None,
    profile_keys: Optional[set] = None,
    collector=None,
    warm: Optional[bool] = None,
    pool=None,
    events_per_run: Optional[int] = None,
) -> PrewarmReport:
    """Simulate ``keys`` on a worker pool, filling both cache levels.

    Keys already satisfied by a cache level are not dispatched; the rest
    are ordered longest-predicted-first by the cost model (the batch
    makespan is then bounded by the longest run, not an unlucky tail)
    and the batch estimate lands in ``report.predicted_core_s`` before
    anything executes.  With ``jobs == 1`` the runs execute in-process
    (no pool), which keeps the serial path free of multiprocessing
    machinery; otherwise they go to the process-wide *warm* pool
    (:func:`~repro.core.pool.shared_pool` — spawned once, reused across
    batches) unless ``warm=False``, ``HISS_POOL=cold``, or an explicit
    ``pool`` chooses the backend.  Each backend runs the identical
    :func:`~repro.core.pool.run_task`, so results are byte-for-byte the
    same whichever dispatched them.

    A key that raises (or whose worker dies) is appended to
    ``report.failed`` with the traceback and the remaining runs still
    complete — one poisoned run no longer aborts the batch.

    ``span_context_for`` (serving tier) maps a key to trace baggage the
    worker carries across the process boundary and returns stamped with
    its wall-clock window; ``on_run`` receives each executed run's
    ``(key, captured events, stamped context)`` as it completes.
    ``events_per_run`` caps the event stream a worker ships back (the
    overflow is counted, not pickled — the serving tier truncates to its
    per-run budget at the source).

    Keys in ``profile_keys`` are simulated *even when cached* — a profile
    only exists for an executed run — with attribution captured in the
    worker; each resulting run document is added to ``collector`` (a
    :class:`~repro.profiling.ProfileCollector`) when one is given, and is
    always available to ``on_run`` via ``info["profile"]``.
    """
    report = report or PrewarmReport()
    report.workers = resolve_jobs(jobs)
    start = time.time()
    profile_keys = profile_keys or set()
    pending: List[RunKey] = []
    for key in keys:
        if key not in profile_keys:
            if key in _experiment._CACHE:
                report.memory_hits += 1
                continue
            if _experiment.cache_lookup(key) is not None:
                report.disk_hits += 1
                continue
        pending.append(key)

    model = cost_model()
    pending = order_longest_first(pending)
    report.predicted_core_s = sum(model.predict(key) for key in pending)

    capture = trace_capacity if tracer is not None and tracer.enabled else 0
    if warm is None:
        warm = warm_pool_enabled()

    def context_for(key: RunKey) -> Optional[dict]:
        return span_context_for(key) if span_context_for is not None else None

    def completed(key: RunKey, metrics, events, info, elapsed_s: float) -> None:
        model.observe(key, elapsed_s)
        _experiment.cache_store(key, metrics, elapsed_s=elapsed_s)
        if events:
            _merge_worker_trace(tracer, run_label(key), events)
        if collector is not None and info and info.get("profile"):
            collector.add(info["profile"])
        if on_run is not None:
            on_run(key, events, info)
        report.executed += 1

    def failed(key: RunKey, error: str) -> None:
        report.failed.append((key, error))

    if pool is None and (report.workers == 1 or len(pending) <= 1):
        for key in pending:
            begin = time.perf_counter()
            try:
                metrics, events, info = run_task(
                    key, capture, context_for(key),
                    key in profile_keys, events_per_run,
                )
            except Exception:
                failed(key, traceback.format_exc(limit=20))
                continue
            completed(key, metrics, events, info, time.perf_counter() - begin)
    elif pool is not None or warm:
        if pool is None:
            pool = shared_pool(report.workers)
        tasks = [
            (key, capture, context_for(key), key in profile_keys, events_per_run)
            for key in pending
        ]
        for result in pool.run_batch(tasks):
            key = pending[result.index]
            if result.ok:
                metrics, events, info = result.payload
                completed(key, metrics, events, info, result.elapsed_s)
            else:
                failed(key, result.error or "unknown worker failure")
        report.pool = pool.stats_document()
    else:
        workers = min(report.workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as cold_pool:
            futures = {
                cold_pool.submit(
                    _timed_task, key, capture, context_for(key),
                    key in profile_keys, events_per_run,
                ): key
                for key in pending
            }
            for future in as_completed(futures):
                key = futures[future]
                try:
                    (metrics, events, info), elapsed_s = future.result()
                except Exception:
                    failed(key, traceback.format_exc(limit=20))
                    continue
                completed(key, metrics, events, info, elapsed_s)
    report.execute_s = time.time() - start
    return report


def prewarm_experiments(
    experiment_ids: Sequence[str],
    kwargs_for: Callable[[str], Dict[str, Any]],
    jobs: int,
    tracer=None,
    registry: Optional[Dict[str, Callable]] = None,
    unplannable: Iterable[str] = (),
    collector=None,
    warm: Optional[bool] = None,
) -> PrewarmReport:
    """Plan + execute: after this, running the experiments is cache-only.

    With a ``collector``, every planned run is executed with attribution
    (cached or not) and its profile document lands in the collector.
    ``warm=False`` (the CLI's ``--cold-pool``) forces the per-batch
    executor instead of the resident pool.
    """
    report = PrewarmReport(experiments=list(experiment_ids))
    start = time.time()
    keys, skipped = plan_runs(
        experiment_ids, kwargs_for, registry=registry, unplannable=unplannable
    )
    report.plan_s = time.time() - start
    report.planned = len(keys)
    report.unplannable = skipped
    profile_keys = set(keys) if collector is not None else None
    return execute_runs(
        keys, jobs, tracer=tracer, report=report,
        profile_keys=profile_keys, collector=collector, warm=warm,
    )
