"""Experiment runner: normalized pairwise runs with result caching.

The paper's methodology (Section III) runs independent CPU and GPU
applications concurrently and reports performance *relative to a baseline*:

* CPU bars: the same pair with the GPU generating **no SSRs** (pinned
  memory) — so any drop is attributable purely to SSR interference.
* GPU bars: the same GPU app with **idle CPUs**.
* ubench "performance": SSR completion rate.

Runs are memoized on ``(cpu, gpu, ssr, config, horizon)`` since every
figure reuses baselines heavily.  The memo table is the first level of a
two-level cache: an opt-in on-disk store (see :mod:`repro.core.runcache`
and ``hiss-experiments --cache-dir``) persists runs across invocations,
content-addressed by a stable key digest plus a code fingerprint.

The module also supports *planning mode* (see :func:`planning`): inside
the context, :func:`run_workloads` records the run key it was asked for
and returns a cheap placeholder instead of simulating — this is how the
parallel engine (:mod:`repro.core.planner`) discovers an experiment's full
run set up front, so it can dedupe shared baselines across figures and
fan the unique runs out over a worker pool.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Set

from ..config import SystemConfig
from ..oskernel import accounting as acct
from ..workloads import gpu_app, parsec
from .metrics import CpuAppMetrics, GpuMetrics, SystemMetrics
from .runcache import (
    COST_LEDGER_NAME,
    DiskCache,
    RunKey,
    cost_model,
    set_cost_ledger,
)
from .system import DEFAULT_HORIZON_NS, System

_CACHE: Dict[RunKey, SystemMetrics] = {}

#: The second cache level; ``None`` until :func:`set_disk_cache` installs one.
_DISK_CACHE: Optional[DiskCache] = None

#: While planning, the set collecting every requested run key (else None).
_PLANNING: Optional[Set[RunKey]] = None


def clear_cache() -> None:
    """Drop memoized runs (tests use this to force re-execution).

    Only the in-memory level is dropped; on-disk entries stay valid.
    """
    _CACHE.clear()


def set_disk_cache(cache: Optional[DiskCache]) -> None:
    """Install (or with ``None`` remove) the process-wide disk cache.

    The run-cost ledger lives alongside the result entries, so attaching
    a disk cache also re-seeds the cost model from that directory's past
    timings (and detaching resets it to memory-only).
    """
    global _DISK_CACHE
    _DISK_CACHE = cache
    set_cost_ledger(
        os.path.join(cache.directory, COST_LEDGER_NAME) if cache is not None else None
    )


def get_disk_cache() -> Optional[DiskCache]:
    return _DISK_CACHE


def configure_disk_cache(directory: Optional[str]) -> Optional[DiskCache]:
    """Point the second cache level at ``directory`` (``None`` disables)."""
    cache = DiskCache(directory) if directory else None
    set_disk_cache(cache)
    return cache


def make_run_key(
    cpu_name: Optional[str],
    gpu_name: Optional[str],
    ssr_enabled: bool,
    config: SystemConfig,
    horizon_ns: int,
) -> RunKey:
    """The canonical memo/cache key of one run request."""
    return (cpu_name, gpu_name, bool(ssr_enabled), config, horizon_ns)


def simulate_run(key: RunKey, tracer=None, profiler=None) -> SystemMetrics:
    """Build and execute the system described by ``key`` (no caching).

    This is the single simulation entry point shared by the serial path
    and the pool workers, so a parallel run is the same computation as a
    serial one — bit for bit.  ``tracer`` and ``profiler`` are pure side
    channels: passing either never changes the returned metrics.
    """
    cpu_name, gpu_name, ssr_enabled, config, horizon_ns = key
    system = System(config, tracer=tracer, profiler=profiler)
    if cpu_name is not None:
        system.add_cpu_app(parsec(cpu_name))
    if gpu_name is not None:
        system.add_gpu_workload(gpu_app(gpu_name), ssr_enabled=ssr_enabled)
    return system.run(horizon_ns)


def cache_lookup(key: RunKey) -> Optional[SystemMetrics]:
    """Consult both cache levels; promotes disk hits into memory."""
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    if _DISK_CACHE is not None:
        metrics = _DISK_CACHE.get(key)
        if metrics is not None:
            _CACHE[key] = metrics
            return metrics
    return None


def cache_store(
    key: RunKey, metrics: SystemMetrics, elapsed_s: Optional[float] = None
) -> None:
    """Record a finished run in both cache levels.

    ``elapsed_s`` (when the caller timed the run) is persisted with the
    disk entry so the cost model can be rebuilt from the cache directory.
    """
    _CACHE[key] = metrics
    if _DISK_CACHE is not None:
        _DISK_CACHE.put(key, metrics, elapsed_s=elapsed_s)


def planning_active() -> bool:
    """True while a :func:`planning` context is recording run keys.

    Layers that fan runs out through :func:`~repro.core.planner.execute_runs`
    themselves (the ablation sweeps, the search driver) must skip the
    fan-out when the planner is merely recording their grid — otherwise a
    planning pass would actually simulate.
    """
    return _PLANNING is not None


@contextmanager
def planning() -> Iterator[Set[RunKey]]:
    """Record run keys instead of simulating; yields the collecting set."""
    global _PLANNING
    if _PLANNING is not None:
        raise RuntimeError("planning contexts do not nest")
    _PLANNING = collected = set()
    try:
        yield collected
    finally:
        _PLANNING = None


def _placeholder_metrics(key: RunKey) -> SystemMetrics:
    """A benign stand-in returned while planning (never cached).

    Values are positive and self-consistent so the arithmetic downstream
    of :func:`run_workloads` (ratios, geomeans, balances) runs without
    dividing by zero; the numbers themselves are meaningless.
    """
    cpu_name, gpu_name, _ssr_enabled, config, horizon_ns = key
    cpu_metrics = None
    if cpu_name is not None:
        cpu_metrics = CpuAppMetrics(
            name=cpu_name,
            instructions=1e6,
            productive_ns=float(horizon_ns),
            pollution_stall_ns=1e3,
            extra_l1_misses=1.0,
            extra_mispredicts=1.0,
            l1_miss_increase=0.01,
            mispredict_increase=0.01,
            measured_l1_miss_rate=0.05,
            measured_mispredict_rate=0.05,
        )
    gpu_metrics = None
    if gpu_name is not None:
        gpu_metrics = GpuMetrics(
            name=gpu_name,
            progress_ns=float(horizon_ns),
            faults_issued=100,
            faults_completed=100,
            stall_ns=1e3,
            mean_ssr_latency_ns=1e4,
            max_ssr_latency_ns=1e5,
        )
    cores = config.cpu.num_cores
    return SystemMetrics(
        horizon_ns=horizon_ns,
        config_label=config.label,
        cpu_app=cpu_metrics,
        gpu=gpu_metrics,
        cc6_residency=0.5,
        mode_totals_ns={mode: 1e6 for mode in acct.ALL_MODES},
        interrupts_per_core=[1] * cores,
        ipis=1,
        ssr_interrupts=1,
        ssr_requests=1,
        ssr_time_ns=1e3,
        ssr_completed=1,
        context_switches=1,
        core_wakeups=1,
    )


def run_workloads(
    cpu_name: Optional[str],
    gpu_name: Optional[str],
    ssr_enabled: bool = True,
    config: Optional[SystemConfig] = None,
    horizon_ns: int = DEFAULT_HORIZON_NS,
) -> SystemMetrics:
    """Run one (cpu, gpu) co-execution and return its metrics (memoized)."""
    config = config or SystemConfig()
    key = make_run_key(cpu_name, gpu_name, ssr_enabled, config, horizon_ns)
    if _PLANNING is not None:
        _PLANNING.add(key)
        cached = _CACHE.get(key)
        return cached if cached is not None else _placeholder_metrics(key)
    cached = cache_lookup(key)
    if cached is not None:
        return cached
    begin = time.perf_counter()
    metrics = simulate_run(key)
    elapsed_s = time.perf_counter() - begin
    cost_model().observe(key, elapsed_s)
    cache_store(key, metrics, elapsed_s=elapsed_s)
    return metrics


# ----------------------------------------------------------------------
# The paper's normalized quantities
# ----------------------------------------------------------------------
def cpu_relative_performance(
    cpu_name: str,
    gpu_name: str,
    config: Optional[SystemConfig] = None,
    horizon_ns: int = DEFAULT_HORIZON_NS,
    baseline_config: Optional[SystemConfig] = None,
) -> float:
    """Fig. 3a quantity: CPU app performance with SSRs, normalized to the
    same pair without SSRs (under ``baseline_config`` if given)."""
    with_ssr = run_workloads(cpu_name, gpu_name, True, config, horizon_ns)
    without_ssr = run_workloads(
        cpu_name, gpu_name, False, baseline_config or config, horizon_ns
    )
    return with_ssr.cpu_app.instructions / without_ssr.cpu_app.instructions


def gpu_relative_performance(
    gpu_name: str,
    cpu_name: Optional[str],
    config: Optional[SystemConfig] = None,
    horizon_ns: int = DEFAULT_HORIZON_NS,
    baseline_config: Optional[SystemConfig] = None,
) -> float:
    """Fig. 3b quantity: GPU performance running with ``cpu_name``,
    normalized to the same GPU app with idle CPUs."""
    pair = run_workloads(cpu_name, gpu_name, True, config, horizon_ns)
    idle = run_workloads(None, gpu_name, True, baseline_config or config, horizon_ns)
    return pair.gpu.performance_metric() / idle.gpu.performance_metric()


def cpu_mitigation_ratio(
    cpu_name: str,
    gpu_name: str,
    config: SystemConfig,
    default_config: SystemConfig,
    horizon_ns: int = DEFAULT_HORIZON_NS,
) -> float:
    """Fig. 6a/c/e quantity: CPU performance under a mitigation, normalized
    to the default configuration (both with SSRs)."""
    mitigated = run_workloads(cpu_name, gpu_name, True, config, horizon_ns)
    default = run_workloads(cpu_name, gpu_name, True, default_config, horizon_ns)
    return mitigated.cpu_app.instructions / default.cpu_app.instructions


def gpu_mitigation_ratio(
    cpu_name: Optional[str],
    gpu_name: str,
    config: SystemConfig,
    default_config: SystemConfig,
    horizon_ns: int = DEFAULT_HORIZON_NS,
) -> float:
    """Fig. 6b/d/f quantity: GPU performance under a mitigation, normalized
    to the default configuration (both with the same CPU app)."""
    mitigated = run_workloads(cpu_name, gpu_name, True, config, horizon_ns)
    default = run_workloads(cpu_name, gpu_name, True, default_config, horizon_ns)
    return mitigated.gpu.performance_metric() / default.gpu.performance_metric()
