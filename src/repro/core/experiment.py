"""Experiment runner: normalized pairwise runs with result caching.

The paper's methodology (Section III) runs independent CPU and GPU
applications concurrently and reports performance *relative to a baseline*:

* CPU bars: the same pair with the GPU generating **no SSRs** (pinned
  memory) — so any drop is attributable purely to SSR interference.
* GPU bars: the same GPU app with **idle CPUs**.
* ubench "performance": SSR completion rate.

Runs are memoized on ``(cpu, gpu, ssr, config, horizon)`` since every
figure reuses baselines heavily.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..config import SystemConfig
from ..workloads import gpu_app, parsec
from .metrics import SystemMetrics
from .system import DEFAULT_HORIZON_NS, System

_CACHE: Dict[Tuple, SystemMetrics] = {}


def clear_cache() -> None:
    """Drop memoized runs (tests use this to force re-execution)."""
    _CACHE.clear()


def run_workloads(
    cpu_name: Optional[str],
    gpu_name: Optional[str],
    ssr_enabled: bool = True,
    config: Optional[SystemConfig] = None,
    horizon_ns: int = DEFAULT_HORIZON_NS,
) -> SystemMetrics:
    """Run one (cpu, gpu) co-execution and return its metrics (memoized)."""
    config = config or SystemConfig()
    key = (cpu_name, gpu_name, ssr_enabled, config, horizon_ns)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    system = System(config)
    if cpu_name is not None:
        system.add_cpu_app(parsec(cpu_name))
    if gpu_name is not None:
        system.add_gpu_workload(gpu_app(gpu_name), ssr_enabled=ssr_enabled)
    metrics = system.run(horizon_ns)
    _CACHE[key] = metrics
    return metrics


# ----------------------------------------------------------------------
# The paper's normalized quantities
# ----------------------------------------------------------------------
def cpu_relative_performance(
    cpu_name: str,
    gpu_name: str,
    config: Optional[SystemConfig] = None,
    horizon_ns: int = DEFAULT_HORIZON_NS,
    baseline_config: Optional[SystemConfig] = None,
) -> float:
    """Fig. 3a quantity: CPU app performance with SSRs, normalized to the
    same pair without SSRs (under ``baseline_config`` if given)."""
    with_ssr = run_workloads(cpu_name, gpu_name, True, config, horizon_ns)
    without_ssr = run_workloads(
        cpu_name, gpu_name, False, baseline_config or config, horizon_ns
    )
    return with_ssr.cpu_app.instructions / without_ssr.cpu_app.instructions


def gpu_relative_performance(
    gpu_name: str,
    cpu_name: Optional[str],
    config: Optional[SystemConfig] = None,
    horizon_ns: int = DEFAULT_HORIZON_NS,
    baseline_config: Optional[SystemConfig] = None,
) -> float:
    """Fig. 3b quantity: GPU performance running with ``cpu_name``,
    normalized to the same GPU app with idle CPUs."""
    pair = run_workloads(cpu_name, gpu_name, True, config, horizon_ns)
    idle = run_workloads(None, gpu_name, True, baseline_config or config, horizon_ns)
    return pair.gpu.performance_metric() / idle.gpu.performance_metric()


def cpu_mitigation_ratio(
    cpu_name: str,
    gpu_name: str,
    config: SystemConfig,
    default_config: SystemConfig,
    horizon_ns: int = DEFAULT_HORIZON_NS,
) -> float:
    """Fig. 6a/c/e quantity: CPU performance under a mitigation, normalized
    to the default configuration (both with SSRs)."""
    mitigated = run_workloads(cpu_name, gpu_name, True, config, horizon_ns)
    default = run_workloads(cpu_name, gpu_name, True, default_config, horizon_ns)
    return mitigated.cpu_app.instructions / default.cpu_app.instructions


def gpu_mitigation_ratio(
    cpu_name: Optional[str],
    gpu_name: str,
    config: SystemConfig,
    default_config: SystemConfig,
    horizon_ns: int = DEFAULT_HORIZON_NS,
) -> float:
    """Fig. 6b/d/f quantity: GPU performance under a mitigation, normalized
    to the default configuration (both with the same CPU app)."""
    mitigated = run_workloads(cpu_name, gpu_name, True, config, horizon_ns)
    default = run_workloads(cpu_name, gpu_name, True, default_config, horizon_ns)
    return mitigated.gpu.performance_metric() / default.gpu.performance_metric()
