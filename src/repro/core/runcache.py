"""Persistent, content-addressed cache of simulated runs.

The in-memory memo table in :mod:`repro.core.experiment` only helps within
one process.  This module adds the second level: an opt-in on-disk store
(``hiss-experiments --cache-dir``) keyed by a *stable* digest of the run
request — ``(cpu, gpu, ssr, config, horizon)`` rendered canonically — plus
a **code fingerprint**, so repeated invocations skip already-simulated runs
and cache invalidation is automatic whenever the simulator changes.

The code fingerprint covers:

* the package version,
* the :class:`~repro.config.SystemConfig` schema digest (field names and
  types at every nesting level), and
* the source text of every module that can influence simulated results
  (the sim kernel, OS model, uarch model, IOMMU, GPU, workloads, QoS,
  mitigations, and the system/metrics assembly).  Telemetry and the
  experiment harnesses are deliberately excluded: by contract they never
  change simulation outcomes.

Entries are one JSON file per run under the cache directory, written
atomically (temp file + rename), so concurrent producers at worst do the
same work twice — they can never corrupt an entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import asdict
from functools import lru_cache
from typing import Optional, Tuple

from ..config import SystemConfig
from .metrics import SystemMetrics

#: A run request: (cpu_name, gpu_name, ssr_enabled, config, horizon_ns).
RunKey = Tuple[Optional[str], Optional[str], bool, SystemConfig, int]

#: Cache entry format version (bump to orphan every existing entry).
ENTRY_SCHEMA = 1

#: Paths (relative to the ``repro`` package) whose source participates in
#: the code fingerprint — everything that can change simulated numbers.
_FINGERPRINT_PATHS = (
    "config.py",
    "sim",
    "oskernel",
    "uarch",
    "iommu",
    "gpu",
    "workloads",
    "qos",
    "mitigations",
    os.path.join("core", "system.py"),
    os.path.join("core", "metrics.py"),
)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of everything that determines a run's numbers (cached)."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    digest.update(repro.__version__.encode("utf-8"))
    digest.update(SystemConfig.schema_digest().encode("utf-8"))
    for relative in _FINGERPRINT_PATHS:
        path = os.path.join(root, relative)
        if os.path.isfile(path):
            files = [path]
        else:
            files = sorted(
                os.path.join(dirpath, name)
                for dirpath, _dirs, names in os.walk(path)
                for name in names
                if name.endswith(".py")
            )
        for source in files:
            digest.update(os.path.relpath(source, root).encode("utf-8"))
            with open(source, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


def reset_code_fingerprint() -> None:
    """Forget the memoized :func:`code_fingerprint`.

    A long-lived process (the ``hiss-serve`` daemon) that reloads simulator
    code must call this so subsequent digests reflect the new sources;
    otherwise the ``lru_cache`` would keep vouching for stale entries.
    """
    code_fingerprint.cache_clear()


def run_key_document(key: RunKey, fingerprint: Optional[str] = None) -> dict:
    """The canonical JSON-able description of one run request."""
    cpu_name, gpu_name, ssr_enabled, config, horizon_ns = key
    return {
        "schema": ENTRY_SCHEMA,
        "fingerprint": fingerprint if fingerprint is not None else code_fingerprint(),
        "cpu": cpu_name,
        "gpu": gpu_name,
        "ssr_enabled": bool(ssr_enabled),
        "horizon_ns": int(horizon_ns),
        "config": asdict(config),
    }


def run_key_digest(key: RunKey, fingerprint: Optional[str] = None) -> str:
    """Stable SHA-256 content address of one run request + code state."""
    document = run_key_document(key, fingerprint)
    rendered = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


class DiskCache:
    """A directory of ``<digest>.json`` files, one per simulated run.

    Because the digest folds in the code fingerprint, entries written by an
    older simulator simply never match again — invalidation needs no
    bookkeeping.  ``hits`` / ``misses`` / ``stores`` count this instance's
    traffic (the CLI reports them); they are updated under a lock because
    the serving daemon consults one instance from many request threads.
    """

    def __init__(self, directory: str, fingerprint: Optional[str] = None):
        self.directory = os.path.abspath(directory)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        os.makedirs(self.directory, exist_ok=True)
        self._stats_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def stats(self) -> Tuple[int, int, int]:
        """A consistent ``(hits, misses, stores)`` snapshot."""
        with self._stats_lock:
            return self.hits, self.misses, self.stores

    def path_for(self, key: RunKey) -> str:
        return os.path.join(
            self.directory, run_key_digest(key, self.fingerprint) + ".json"
        )

    def get(self, key: RunKey) -> Optional[SystemMetrics]:
        """The cached metrics for ``key``, or ``None`` (never raises)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("schema") != ENTRY_SCHEMA:
                raise ValueError(f"unknown entry schema {entry.get('schema')!r}")
            if entry.get("fingerprint") != self.fingerprint:
                raise ValueError("fingerprint mismatch")
            metrics = SystemMetrics.from_dict(entry["metrics"])
        except FileNotFoundError:
            with self._stats_lock:
                self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt or foreign entry: treat as a miss, re-simulate.
            with self._stats_lock:
                self.misses += 1
            return None
        with self._stats_lock:
            self.hits += 1
        return metrics

    def put(
        self, key: RunKey, metrics: SystemMetrics, elapsed_s: Optional[float] = None
    ) -> str:
        """Persist ``metrics`` under ``key`` (atomic); returns the path.

        ``elapsed_s`` — the run's measured wall time — rides along in the
        entry for the cost model; readers that predate it ignore the extra
        field, so the entry schema is unchanged.
        """
        path = self.path_for(key)
        entry = run_key_document(key, self.fingerprint)
        entry["metrics"] = metrics.as_dict()
        if elapsed_s is not None:
            entry["elapsed_s"] = round(float(elapsed_s), 6)
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        with self._stats_lock:
            self.stores += 1
        return path

    def __len__(self) -> int:
        """Number of entries on disk (any fingerprint)."""
        return sum(
            1
            for name in os.listdir(self.directory)
            if name.endswith(".json") and not name.startswith(".tmp-")
        )


# ----------------------------------------------------------------------
# Run-cost model
# ----------------------------------------------------------------------
#: Ledger file kept next to the result entries in the cache directory.
COST_LEDGER_NAME = "cost_ledger.jsonl"

#: Last-resort cost rate (seconds of wall time per simulated nanosecond)
#: used before any observation exists.  The absolute value barely
#: matters — with zero observations every pending key gets the same
#: rate, so ordering degrades to horizon-then-digest, which is still
#: deterministic.
DEFAULT_COST_RATE = 5e-7


def cost_features(key: RunKey) -> Tuple[str, str, bool]:
    """The coarse features a cost prediction can fall back on."""
    return (key[0] or "", key[1] or "", bool(key[2]))


class CostModel:
    """Predicts a run's wall-clock cost from past ``elapsed_s`` observations.

    Three estimators, most-specific first:

    1. exact run-key digest — the same request was timed before (the
       digest folds in the code fingerprint, so observations from an
       older simulator never match);
    2. per-``(cpu, gpu, ssr)`` rate × horizon — the same pairing at any
       horizon;
    3. global observed rate × horizon, then :data:`DEFAULT_COST_RATE`.

    Observations append to a JSONL ledger (``cost_ledger.jsonl`` in the
    run-cache directory) when one is attached, so a daemon restart or a
    fresh CLI invocation starts with last session's timings; without a
    ledger the model is memory-only.  All methods are thread-safe — the
    scheduler predicts from its drain thread while worker results
    observe concurrently.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._lock = threading.Lock()
        self._by_digest: dict = {}  # digest -> [total_s, count]
        self._by_pair: dict = {}  # (cpu, gpu, ssr) -> [total_s, total_horizon_ns]
        self._global = [0.0, 0.0]  # [total_s, total_horizon_ns]
        self.observations = 0
        if path:
            self._load(path)

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn final line from a crashed writer
                    if isinstance(record, dict):
                        self._absorb(record)
        except OSError:
            pass

    def _absorb(self, record: dict) -> None:
        """Fold one observation record into the estimators (caller locks)."""
        try:
            elapsed_s = float(record["elapsed_s"])
            horizon_ns = float(record["horizon_ns"])
            digest = record["digest"]
        except (KeyError, TypeError, ValueError):
            return
        if elapsed_s <= 0 or horizon_ns <= 0:
            return
        entry = self._by_digest.setdefault(digest, [0.0, 0])
        entry[0] += elapsed_s
        entry[1] += 1
        pair = (
            record.get("cpu") or "",
            record.get("gpu") or "",
            bool(record.get("ssr", True)),
        )
        rate = self._by_pair.setdefault(pair, [0.0, 0.0])
        rate[0] += elapsed_s
        rate[1] += horizon_ns
        self._global[0] += elapsed_s
        self._global[1] += horizon_ns
        self.observations += 1

    def observe(self, key: RunKey, elapsed_s: float) -> None:
        """Record one measured run; persists to the ledger when attached."""
        if elapsed_s <= 0:
            return
        record = {
            "digest": run_key_digest(key),
            "cpu": key[0],
            "gpu": key[1],
            "ssr": bool(key[2]),
            "horizon_ns": int(key[4]),
            "elapsed_s": round(float(elapsed_s), 6),
        }
        with self._lock:
            self._absorb(record)
            if self.path:
                try:
                    with open(self.path, "a", encoding="utf-8") as handle:
                        handle.write(
                            json.dumps(record, sort_keys=True, separators=(",", ":"))
                            + "\n"
                        )
                except OSError:
                    pass  # a read-only cache dir degrades to memory-only

    def predict(self, key: RunKey) -> float:
        """Predicted wall seconds for ``key`` (never raises, never zero
        for a positive horizon)."""
        horizon_ns = float(key[4])
        with self._lock:
            entry = self._by_digest.get(run_key_digest(key))
            if entry is not None and entry[1] > 0:
                return entry[0] / entry[1]
            rate = self._by_pair.get(cost_features(key))
            if rate is not None and rate[1] > 0:
                return horizon_ns * (rate[0] / rate[1])
            if self._global[1] > 0:
                return horizon_ns * (self._global[0] / self._global[1])
        return horizon_ns * DEFAULT_COST_RATE


#: The process-wide model; replaced by :func:`set_cost_ledger`.
_COST_MODEL = CostModel()


def cost_model() -> CostModel:
    """The process-wide cost model (memory-only until a ledger attaches)."""
    return _COST_MODEL


def set_cost_ledger(path: Optional[str]) -> CostModel:
    """Attach the cost model to a persistent ledger (``None`` detaches).

    Builds a fresh model seeded from the ledger's existing observations;
    with ``None`` the model restarts empty — which is also what test
    isolation wants when it tears down a disk cache.
    """
    global _COST_MODEL
    _COST_MODEL = CostModel(path)
    return _COST_MODEL
