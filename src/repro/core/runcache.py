"""Persistent, content-addressed cache of simulated runs.

The in-memory memo table in :mod:`repro.core.experiment` only helps within
one process.  This module adds the second level: an opt-in on-disk store
(``hiss-experiments --cache-dir``) keyed by a *stable* digest of the run
request — ``(cpu, gpu, ssr, config, horizon)`` rendered canonically — plus
a **code fingerprint**, so repeated invocations skip already-simulated runs
and cache invalidation is automatic whenever the simulator changes.

The code fingerprint covers:

* the package version,
* the :class:`~repro.config.SystemConfig` schema digest (field names and
  types at every nesting level), and
* the source text of every module that can influence simulated results
  (the sim kernel, OS model, uarch model, IOMMU, GPU, workloads, QoS,
  mitigations, and the system/metrics assembly).  Telemetry and the
  experiment harnesses are deliberately excluded: by contract they never
  change simulation outcomes.

Entries are one JSON file per run under the cache directory, written
atomically (temp file + rename), so concurrent producers at worst do the
same work twice — they can never corrupt an entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import asdict
from functools import lru_cache
from typing import Optional, Tuple

from ..config import SystemConfig
from .metrics import SystemMetrics

#: A run request: (cpu_name, gpu_name, ssr_enabled, config, horizon_ns).
RunKey = Tuple[Optional[str], Optional[str], bool, SystemConfig, int]

#: Cache entry format version (bump to orphan every existing entry).
ENTRY_SCHEMA = 1

#: Paths (relative to the ``repro`` package) whose source participates in
#: the code fingerprint — everything that can change simulated numbers.
_FINGERPRINT_PATHS = (
    "config.py",
    "sim",
    "oskernel",
    "uarch",
    "iommu",
    "gpu",
    "workloads",
    "qos",
    "mitigations",
    os.path.join("core", "system.py"),
    os.path.join("core", "metrics.py"),
)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of everything that determines a run's numbers (cached)."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    digest.update(repro.__version__.encode("utf-8"))
    digest.update(SystemConfig.schema_digest().encode("utf-8"))
    for relative in _FINGERPRINT_PATHS:
        path = os.path.join(root, relative)
        if os.path.isfile(path):
            files = [path]
        else:
            files = sorted(
                os.path.join(dirpath, name)
                for dirpath, _dirs, names in os.walk(path)
                for name in names
                if name.endswith(".py")
            )
        for source in files:
            digest.update(os.path.relpath(source, root).encode("utf-8"))
            with open(source, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


def reset_code_fingerprint() -> None:
    """Forget the memoized :func:`code_fingerprint`.

    A long-lived process (the ``hiss-serve`` daemon) that reloads simulator
    code must call this so subsequent digests reflect the new sources;
    otherwise the ``lru_cache`` would keep vouching for stale entries.
    """
    code_fingerprint.cache_clear()


def run_key_document(key: RunKey, fingerprint: Optional[str] = None) -> dict:
    """The canonical JSON-able description of one run request."""
    cpu_name, gpu_name, ssr_enabled, config, horizon_ns = key
    return {
        "schema": ENTRY_SCHEMA,
        "fingerprint": fingerprint if fingerprint is not None else code_fingerprint(),
        "cpu": cpu_name,
        "gpu": gpu_name,
        "ssr_enabled": bool(ssr_enabled),
        "horizon_ns": int(horizon_ns),
        "config": asdict(config),
    }


def run_key_digest(key: RunKey, fingerprint: Optional[str] = None) -> str:
    """Stable SHA-256 content address of one run request + code state."""
    document = run_key_document(key, fingerprint)
    rendered = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


class DiskCache:
    """A directory of ``<digest>.json`` files, one per simulated run.

    Because the digest folds in the code fingerprint, entries written by an
    older simulator simply never match again — invalidation needs no
    bookkeeping.  ``hits`` / ``misses`` / ``stores`` count this instance's
    traffic (the CLI reports them); they are updated under a lock because
    the serving daemon consults one instance from many request threads.
    """

    def __init__(self, directory: str, fingerprint: Optional[str] = None):
        self.directory = os.path.abspath(directory)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        os.makedirs(self.directory, exist_ok=True)
        self._stats_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def stats(self) -> Tuple[int, int, int]:
        """A consistent ``(hits, misses, stores)`` snapshot."""
        with self._stats_lock:
            return self.hits, self.misses, self.stores

    def path_for(self, key: RunKey) -> str:
        return os.path.join(
            self.directory, run_key_digest(key, self.fingerprint) + ".json"
        )

    def get(self, key: RunKey) -> Optional[SystemMetrics]:
        """The cached metrics for ``key``, or ``None`` (never raises)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("schema") != ENTRY_SCHEMA:
                raise ValueError(f"unknown entry schema {entry.get('schema')!r}")
            if entry.get("fingerprint") != self.fingerprint:
                raise ValueError("fingerprint mismatch")
            metrics = SystemMetrics.from_dict(entry["metrics"])
        except FileNotFoundError:
            with self._stats_lock:
                self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt or foreign entry: treat as a miss, re-simulate.
            with self._stats_lock:
                self.misses += 1
            return None
        with self._stats_lock:
            self.hits += 1
        return metrics

    def put(self, key: RunKey, metrics: SystemMetrics) -> str:
        """Persist ``metrics`` under ``key`` (atomic); returns the path."""
        path = self.path_for(key)
        entry = run_key_document(key, self.fingerprint)
        entry["metrics"] = metrics.as_dict()
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        with self._stats_lock:
            self.stores += 1
        return path

    def __len__(self) -> int:
        """Number of entries on disk (any fingerprint)."""
        return sum(
            1
            for name in os.listdir(self.directory)
            if name.endswith(".json") and not name.startswith(".tmp-")
        )
