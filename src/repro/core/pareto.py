"""Pareto-frontier analysis for mitigation combinations (Figs. 7 and 8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ParetoPoint:
    """One configuration's (CPU performance, GPU performance) trade-off."""

    label: str
    cpu_performance: float
    gpu_performance: float


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True if ``a`` is at least as good as ``b`` on both axes and strictly
    better on at least one (both axes are maximized)."""
    at_least = (
        a.cpu_performance >= b.cpu_performance
        and a.gpu_performance >= b.gpu_performance
    )
    strictly = (
        a.cpu_performance > b.cpu_performance
        or a.gpu_performance > b.gpu_performance
    )
    return at_least and strictly


def pareto_frontier(points: List[ParetoPoint]) -> List[ParetoPoint]:
    """The non-dominated subset, sorted by CPU performance."""
    frontier = [
        p
        for p in points
        if not any(dominates(q, p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: p.cpu_performance)


def frontier_labels(points: List[ParetoPoint]) -> List[str]:
    return [p.label for p in pareto_frontier(points)]
