"""Pareto-frontier analysis for mitigation combinations (Figs. 7 and 8).

Two layers:

* the figure-facing 2-D API (:class:`ParetoPoint`, :func:`pareto_frontier`,
  :func:`frontier_labels`) the paper's Pareto charts use, and
* an N-dimensional vector layer (:func:`vector_dominates`,
  :func:`pareto_frontier_map`) for the autotuner's archive
  (:mod:`repro.search`), where every objective has already been oriented
  so that larger is better.

Both layers share one determinism contract: points whose objective
vectors are *identical* are deduplicated (the lexicographically smallest
label survives) and the frontier is returned in a canonical order that
does not depend on insertion order — the property the search archive's
bit-for-bit reproducibility rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class ParetoPoint:
    """One configuration's (CPU performance, GPU performance) trade-off."""

    label: str
    cpu_performance: float
    gpu_performance: float


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True if ``a`` is at least as good as ``b`` on both axes and strictly
    better on at least one (both axes are maximized)."""
    at_least = (
        a.cpu_performance >= b.cpu_performance
        and a.gpu_performance >= b.gpu_performance
    )
    strictly = (
        a.cpu_performance > b.cpu_performance
        or a.gpu_performance > b.gpu_performance
    )
    return at_least and strictly


def vector_dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if vector ``a`` dominates ``b`` (every axis maximized).

    ``a`` must be at least as good everywhere and strictly better
    somewhere; vectors must share a length.
    """
    if len(a) != len(b):
        raise ValueError(f"vector length mismatch: {len(a)} vs {len(b)}")
    at_least = all(x >= y for x, y in zip(a, b))
    strictly = any(x > y for x, y in zip(a, b))
    return at_least and strictly


def pareto_frontier_map(
    items: Mapping[str, Sequence[float]]
) -> List[Tuple[str, Tuple[float, ...]]]:
    """Non-dominated ``(label, vector)`` pairs of ``items``, canonical order.

    Every objective is assumed maximized (callers negate minimized axes).
    Labels with identical vectors collapse to the lexicographically
    smallest label, and the result is sorted by ``(vector, label)`` — so
    the output is a pure function of the *set* of items, independent of
    mapping insertion order.
    """
    # Dedup identical vectors first: smallest label wins, deterministically.
    by_vector: Dict[Tuple[float, ...], str] = {}
    for label in sorted(items):
        vector = tuple(float(v) for v in items[label])
        if vector not in by_vector:
            by_vector[vector] = label
    unique = sorted((vector, label) for vector, label in by_vector.items())
    frontier = [
        (label, vector)
        for vector, label in unique
        if not any(
            vector_dominates(other, vector) for other, _ in unique if other != vector
        )
    ]
    return frontier


def pareto_frontier(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """The non-dominated subset, in canonical order.

    Points with identical ``(cpu, gpu)`` vectors are deduplicated — the
    lexicographically smallest label represents the group — and the
    frontier is sorted by ``(cpu_performance, gpu_performance, label)``,
    so the result never depends on the order points were supplied in.
    """
    by_label: Dict[str, ParetoPoint] = {}
    for point in points:
        existing = by_label.get(point.label)
        if existing is None or existing == point:
            by_label[point.label] = point
        else:
            raise ValueError(
                f"conflicting points share the label {point.label!r}"
            )
    frontier = pareto_frontier_map(
        {
            label: (point.cpu_performance, point.gpu_performance)
            for label, point in by_label.items()
        }
    )
    return [by_label[label] for label, _vector in frontier]


def frontier_labels(points: Sequence[ParetoPoint]) -> List[str]:
    return [p.label for p in pareto_frontier(points)]
