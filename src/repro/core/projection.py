"""Accelerator-rich SoC projection (the paper's forward-looking claim).

The paper argues SSR interference "may be exacerbated in future systems
with more accelerators" and uses ubench to project a high aggregate SSR
rate.  This module makes the projection directly: attach N concurrent
SSR-generating accelerators to one host and measure CPU performance and
sleep residency as N grows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..config import SystemConfig
from ..workloads import gpu_app, parsec
from .system import DEFAULT_HORIZON_NS, System


@dataclass(frozen=True)
class ProjectionPoint:
    """Results for one accelerator count."""

    accelerators: int
    cpu_relative_performance: float
    cc6_residency: float
    total_ssrs_completed: int
    ssr_time_fraction: float


def project_accelerator_scaling(
    cpu_name: str = "x264",
    gpu_name: str = "xsbench",
    max_accelerators: int = 4,
    config: Optional[SystemConfig] = None,
    horizon_ns: int = DEFAULT_HORIZON_NS,
) -> List[ProjectionPoint]:
    """Sweep the number of attached accelerators from 0 to N.

    Each accelerator runs the same SSR-generating workload with a distinct
    RNG stream (the profile is renamed per instance so GPU state does not
    alias).  The 0-accelerator CPU performance is the normalization base.
    """
    config = config or SystemConfig()
    profile = gpu_app(gpu_name)
    results: List[ProjectionPoint] = []
    baseline_instructions = None
    for count in range(max_accelerators + 1):
        system = System(config)
        system.add_cpu_app(parsec(cpu_name))
        for index in range(count):
            instance = replace(profile, name=f"{profile.name}#{index}")
            system.add_gpu_workload(instance, ssr_enabled=True)
        metrics = system.run(horizon_ns)
        instructions = metrics.cpu_app.instructions
        if baseline_instructions is None:
            baseline_instructions = instructions
        results.append(
            ProjectionPoint(
                accelerators=count,
                cpu_relative_performance=instructions / baseline_instructions,
                cc6_residency=metrics.cc6_residency,
                total_ssrs_completed=metrics.ssr_completed,
                ssr_time_fraction=metrics.ssr_time_fraction,
            )
        )
    return results
