"""The host IOMMU driver: top half, bottom half, and worker plumbing.

Implements the paper's Figure 1 flow on top of the OS model:

* **Split mode (default, like ``amd_iommu_v2``)** — the MSI lands on a core
  and runs a short top half (3), which wakes the single bottom-half kthread
  (3a, an IPI when cross-core) and acks the IOMMU (3b).  The kthread drains
  the PPR log, pre-processes each request (4a), and queues one work item
  per request to the local kworker (4b).  The kworker services the fault
  (5) and completes it back to the IOMMU (6).
* **Monolithic mode (Section V-C)** — the bottom-half pre-processing runs
  inline in the hard-IRQ top half: no kthread, no wake IPI, no scheduling
  delay, but more time in interrupt context on the victim core.
"""

from __future__ import annotations

from typing import Generator, List, TYPE_CHECKING

from ..oskernel import accounting as acct
from ..oskernel.thread import KIND_KTHREAD, PRIO_KTHREAD, Thread
from ..profiling.ledger import CH_BOTTOM_HALF
from ..oskernel.irq import Irq
from ..oskernel.workqueue import WorkItem
from ..sim import Store
from .iommu import Iommu
from .request import SsrRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..oskernel.cpu import Core
    from ..oskernel.kernel import Kernel


class BottomHalfThread(Thread):
    """The driver's single bottom-half kthread (split mode only)."""

    def __init__(self, kernel: "Kernel", driver: "IommuDriver"):
        mitigation = kernel.config.mitigation
        pinned = mitigation.steering_target if mitigation.steer_to_single_core else None
        super().__init__(
            kernel,
            name="iommu/bh",
            kind=KIND_KTHREAD,
            priority=PRIO_KTHREAD,
            pinned_core=pinned,
        )
        self.driver = driver
        self.kicks = Store(kernel.env)
        self.batches_handled = 0

    def body(self) -> Generator:
        dispatch_ns = self.kernel.config.os_path.bottom_half_dispatch_ns
        while True:
            yield from self.wait(self.kicks.get())
            # Scheduler dispatch latency before the kthread actually runs
            # (what the monolithic handler eliminates).
            if dispatch_ns:
                yield from self.sleep(dispatch_ns)
            # Collapse piled-up kicks: one drain covers them all.
            while True:
                ok, _ = self.kicks.try_get()
                if not ok:
                    break
            requests = self.driver.iommu.drain_ready()
            if not requests:
                continue
            yield from self.driver.preprocess_and_queue(self, requests)
            self.batches_handled += 1


class IommuDriver:
    """Wires the IOMMU's interrupts into the OS handling chain."""

    def __init__(self, kernel: "Kernel", iommu: Iommu):
        self.kernel = kernel
        self.iommu = iommu
        mitigation = kernel.config.mitigation
        self.monolithic = mitigation.monolithic_bottom_half
        self.polling = mitigation.polling_period_ns > 0
        self.bottom_half: BottomHalfThread = BottomHalfThread(kernel, self)
        self.poller = None
        if self.polling:
            from .polling import PollingThread

            # Polled mode: SSR interrupts stay masked; the poller drains.
            self.poller = PollingThread(kernel, self)
        else:
            iommu.on_interrupt = self._raise_top_half
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("driver already started")
        self._started = True
        if self.polling:
            self.poller.start()
        elif not self.monolithic:
            self.bottom_half.start()

    # ------------------------------------------------------------------
    # Interrupt path
    # ------------------------------------------------------------------
    def _raise_top_half(self, batch: int) -> None:
        os_path = self.kernel.config.os_path
        handler_ns = os_path.top_half_ns + (batch - 1) * os_path.top_half_per_extra_request_ns
        if self.monolithic:
            # Pre-processing and work-queue insertion happen inline, in
            # hard-IRQ context.
            handler_ns += batch * (
                os_path.bottom_half_per_request_ns + os_path.queue_work_ns
            )
            action = self._monolithic_action
        else:
            action = self._split_action
        irq = Irq(
            name="iommu-ppr",
            handler_ns=handler_ns,
            action=action,
            is_ssr=True,
            footprint=os_path.top_half_footprint,
        )
        self.kernel.irq_controller.raise_msi(irq)

    def _split_action(self, core: "Core") -> None:
        """Step 3a: wake the bottom-half kthread from the top half."""
        self.bottom_half.wake_origin_core = core.id
        self.bottom_half.kicks.try_put(1)

    def _monolithic_action(self, core: "Core") -> None:
        """Monolithic: drain and queue work directly from the IRQ core.

        The pre-processing time was already charged in the handler; the
        uarch footprint of the larger handler is charged here.
        """
        requests = self.iommu.drain_ready()
        if not requests:
            return
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "iommu.monolithic_drain", "ssr", core.id, self.kernel.env.now,
                args={"requests": len(requests)},
            )
        footprint = self.kernel.config.os_path.bottom_half_footprint
        core._run_kernel_window(
            footprint[0] * max(1, len(requests) // 2), footprint[1], core.current
        )
        self._queue_requests(core.id, requests)

    # ------------------------------------------------------------------
    # Bottom-half work (split mode)
    # ------------------------------------------------------------------
    def preprocess_and_queue(
        self, thread: BottomHalfThread, requests: List[SsrRequest]
    ) -> Generator:
        os_path = self.kernel.config.os_path
        cost = (
            os_path.bottom_half_per_request_ns + os_path.queue_work_ns
        ) * len(requests)
        batch_start = self.kernel.env.now
        yield from thread.run_for(cost)
        tracer = self.kernel.tracer
        if tracer.enabled:
            core_id = thread.core.id if thread.core is not None else (
                thread.last_core_id or 0
            )
            tracer.span(
                "iommu.bottom_half", "ssr", core_id,
                batch_start, self.kernel.env.now,
                args={"requests": len(requests)},
            )
            tracer.metrics.counter("ssr.bh_batches").inc()
            tracer.metrics.histogram("ssr.bh_batch_size", low=1.0, high=1e4).record(
                len(requests)
            )
        if thread.core is not None:
            footprint = os_path.bottom_half_footprint
            thread.core._run_kernel_window(
                footprint[0], footprint[1], thread.core.last_thread
            )
            origin = thread.core.id
            displaced = thread.core.last_thread
        else:  # pragma: no cover - run_for leaves the thread on-core
            origin = thread.last_core_id or 0
            displaced = None
        self.kernel.charge_ssr(
            cost, CH_BOTTOM_HALF, "iommu-ppr", origin,
            victim=displaced.name if displaced is not None else None,
        )
        self._queue_requests(origin, requests)

    def _queue_requests(self, origin_core_id: int, requests: List[SsrRequest]) -> None:
        os_path = self.kernel.config.os_path
        for request in requests:
            # Page-fault servicing cost is a first-class calibration knob;
            # other SSR kinds use their Table I catalog values.
            if request.kind.name == "page_fault":
                service_ns = os_path.page_fault_service_ns
            else:
                service_ns = request.kind.service_ns
            request.stages["queued"] = self.kernel.env.now
            item = WorkItem(
                name=f"ssr-{request.request_id}",
                ssr_kind=request.kind.name,
                service_ns=service_ns + os_path.response_ns,
                on_start=lambda kernel, r=request: r.stages.__setitem__(
                    "service_start", kernel.env.now
                ),
                on_done=lambda kernel, r=request: self.iommu.complete_request(r),
                is_ssr=True,
                footprint=os_path.worker_footprint,
            )
            self.kernel.workqueues.queue_work(origin_core_id, item)
