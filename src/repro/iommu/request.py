"""System service request (SSR) objects and the Table I service catalog.

Each SSR kind carries a qualitative complexity (as in the paper's Table I)
and a calibrated worker-stage service time.  Page faults are the SSR the
paper's evaluation exercises (soft faults: no disk I/O); the other kinds
are exposed for the examples and the Table I experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim import Event

#: Qualitative complexity labels (Table I).
LOW = "Low"
MODERATE = "Moderate"
MODERATE_TO_HIGH = "Moderate to High"
HIGH = "High"


@dataclass(frozen=True)
class SsrKind:
    """A category of system service request."""

    name: str
    description: str
    complexity: str
    #: Worker-stage service time (step 5 of Fig. 1), nanoseconds.
    service_ns: int


#: The paper's Table I, with calibrated service times.
SSR_CATALOG: Dict[str, SsrKind] = {
    kind.name: kind
    for kind in (
        SsrKind(
            "signal",
            "Allows GPUs to communicate with other processes.",
            LOW,
            1_500,
        ),
        SsrKind(
            "page_fault",
            "Enables GPUs to use un-pinned memory (soft fault).",
            MODERATE_TO_HIGH,
            6_000,
        ),
        SsrKind(
            "memory_allocation",
            "Allocate and free memory from the GPU.",
            MODERATE,
            9_000,
        ),
        SsrKind(
            "filesystem",
            "Directly access/modify files from the GPU.",
            HIGH,
            45_000,
        ),
        SsrKind(
            "page_migration",
            "GPU-initiated memory migration.",
            HIGH,
            30_000,
        ),
    )
}


@dataclass
class SsrRequest:
    """One in-flight SSR."""

    request_id: int
    kind: SsrKind
    issued_at: int
    #: Succeeds when the host has fully serviced the request (step 6).
    completion: Event = None
    completed_at: Optional[int] = None
    #: Per-stage timestamps through the handling chain (see
    #: :mod:`repro.core.tracing`): submitted, accepted, drained, queued,
    #: service_start, completed.
    stages: Dict[str, int] = field(default_factory=dict)

    @property
    def latency_ns(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at

    def stage_delta(self, start: str, end: str) -> Optional[int]:
        """Time between two recorded stages, if both were stamped."""
        if start in self.stages and end in self.stages:
            return self.stages[end] - self.stages[start]
        return None


class LatencyStats:
    """Streaming latency statistics for completed SSRs."""

    def __init__(self):
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0

    def record(self, latency_ns: int) -> None:
        self.count += 1
        self.total_ns += latency_ns
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0
