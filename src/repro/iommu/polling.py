"""NAPI-style polled SSR servicing (the Related-Work alternative).

The paper's Related Work cites Mogul & Ramakrishnan's receive-livelock
solution — fall back to polling when interrupts storm — and notes that
"polling for accelerator SSRs, however, could result in much higher
relative CPU overheads".  This module implements the design so that claim
can be measured:

* SSR interrupts are disabled entirely (the IOMMU never raises an MSI),
* a dedicated polling kthread wakes every ``polling_period_ns``, drains
  the PPR log, pre-processes, and queues worker items — paying the poll
  cost *whether or not anything arrived*.

Steering composes naturally: the poller pins to the steering target.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from ..oskernel.thread import KIND_KTHREAD, PRIO_KTHREAD, Thread
from ..profiling.ledger import CH_POLL

if TYPE_CHECKING:  # pragma: no cover
    from .driver import IommuDriver
    from ..oskernel.kernel import Kernel

#: CPU cost of one poll that finds the queue empty (register reads).
EMPTY_POLL_COST_NS = 400


class PollingThread(Thread):
    """A kthread that services the PPR queue by polling."""

    def __init__(self, kernel: "Kernel", driver: "IommuDriver"):
        mitigation = kernel.config.mitigation
        pinned = mitigation.steering_target if mitigation.steer_to_single_core else 0
        super().__init__(
            kernel,
            name="iommu/poll",
            kind=KIND_KTHREAD,
            priority=PRIO_KTHREAD,
            pinned_core=pinned,
        )
        self.driver = driver
        self.polls = 0
        self.empty_polls = 0
        self.requests_serviced = 0

    def body(self) -> Generator:
        period = self.kernel.config.mitigation.polling_period_ns
        while True:
            yield from self.sleep(period)
            self.polls += 1
            requests = self.driver.iommu.drain_ready()
            if not requests:
                self.empty_polls += 1
                # The poll itself costs CPU even when nothing arrived --
                # the structural downside of polling for sparse SSRs.
                yield from self.run_for(EMPTY_POLL_COST_NS)
                core = self.core
                self.kernel.charge_ssr(
                    EMPTY_POLL_COST_NS,
                    CH_POLL,
                    "iommu-ppr",
                    core.id if core is not None else self.pinned_core,
                    victim=(
                        core.last_thread.name
                        if core is not None and core.last_thread is not None
                        else None
                    ),
                )
                if self.core is not None:
                    self._release_cpu(requeue=False)
                continue
            self.requests_serviced += len(requests)
            yield from self.driver.preprocess_and_queue(self, requests)
            if self.core is not None:
                self._release_cpu(requeue=False)
