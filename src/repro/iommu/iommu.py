"""The IOMMU device model: PPR queue, interrupt coalescing, MSI raising.

Faulting devices submit :class:`~repro.iommu.request.SsrRequest` objects.
Each lands in the bounded Peripheral Page Request (PPR) queue — when the
queue is full the submitting device *stalls* (hardware backpressure), which
is the substrate the Section VI QoS governor leans on.

Interrupt coalescing (Section V-B) models the PCIe ``D0F2xF4_x93`` register:
the IOMMU may defer its MSI up to a configured window, folding requests
that arrive meanwhile into one interrupt.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from collections import deque

from ..oskernel import accounting as acct
from ..sim import Event, Store
from .request import LatencyStats, SsrRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..oskernel.kernel import Kernel


class Iommu:
    """IOMMU front end between faulting devices and the host driver."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.env = kernel.env
        self.config = kernel.config.iommu
        coalesce = kernel.config.mitigation.coalesce_window_ns
        self.coalesce_window_ns = coalesce
        #: Bounded PPR queue: `put` pends when full (device backpressure).
        self.ppr_queue = Store(self.env, capacity=self.config.ppr_queue_entries)
        #: Called with the batch size when the MSI should be raised.
        self.on_interrupt: Optional[Callable[[int], None]] = None
        self.latency = LatencyStats()
        #: Ring buffer of recently completed requests (stage tracing).
        self.recent_completed = deque(maxlen=1024)
        self._uncounted = 0  # requests accepted but not yet covered by an MSI
        self._window_generation = 0
        self._window_armed = False
        self._next_request_id = 0

    # ------------------------------------------------------------------
    # Device-facing API
    # ------------------------------------------------------------------
    def submit(self, request: SsrRequest) -> Event:
        """Submit an SSR; the returned event fires when the PPR queue
        accepts it (it pends while the queue is full)."""
        self.kernel.counters.bump(acct.CTR_SSR_REQUEST)
        request.stages["submitted"] = self.env.now
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "ssr.submit", "ssr", "iommu", self.env.now,
                args={"id": request.request_id, "kind": request.kind.name,
                      "ppr_backlog": len(self.ppr_queue)},
            )
        accepted = self.ppr_queue.put(request)
        accepted.callbacks.append(lambda _event: self._on_accepted(request))
        return accepted

    def _on_accepted(self, request: SsrRequest) -> None:
        request.stages["accepted"] = self.env.now
        # The fault becomes interrupt-worthy a little later (HW latency).
        self.env.call_later(self.config.fault_to_interrupt_ns, self._count_request)

    def _count_request(self) -> None:
        self._uncounted += 1
        if self.coalesce_window_ns <= 0:
            self._raise_interrupt()
            return
        if self._uncounted >= self.config.max_coalesce_batch:
            self._raise_interrupt()
            return
        if not self._window_armed:
            self._window_armed = True
            generation = self._window_generation
            self.env.call_later(
                self.coalesce_window_ns, lambda: self._window_expired(generation)
            )

    def _window_expired(self, generation: int) -> None:
        if generation != self._window_generation:
            return  # the window was already closed by a batch-size trigger
        self._window_armed = False
        if self._uncounted:
            self._raise_interrupt()

    def _raise_interrupt(self) -> None:
        batch = self._uncounted
        self._uncounted = 0
        self._window_generation += 1
        self._window_armed = False
        if batch and self.on_interrupt is not None:
            self.on_interrupt(batch)

    # ------------------------------------------------------------------
    # Driver-facing API
    # ------------------------------------------------------------------
    def drain_ready(self) -> List[SsrRequest]:
        """Pop every PPR entry currently in the log (bottom half read)."""
        drained: List[SsrRequest] = []
        now = self.env.now
        while True:
            ok, request = self.ppr_queue.try_get()
            if not ok:
                break
            request.stages["drained"] = now
            drained.append(request)
        return drained

    def complete_request(self, request: SsrRequest) -> None:
        """Step 6: tell the device its request is done."""
        request.completed_at = self.env.now
        request.stages["completed"] = self.env.now
        self.latency.record(request.latency_ns)
        self.kernel.ssr_accounting.note_completion()
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "ssr.complete", "ssr", "iommu", self.env.now,
                args={"id": request.request_id, "kind": request.kind.name,
                      "latency_ns": request.latency_ns},
            )
            tracer.metrics.counter("ssr.completed").inc()
            tracer.metrics.histogram("ssr.latency_ns").record(request.latency_ns)
        self.recent_completed.append(request)
        request.completion.succeed()

    def allocate_request_id(self) -> int:
        self._next_request_id += 1
        return self._next_request_id
