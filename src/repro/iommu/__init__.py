"""IOMMU model: bounded PPR queue, interrupt coalescing, and the host driver.

This is the hardware/driver boundary the paper's SSRs cross: devices submit
page requests, the IOMMU raises (possibly coalesced) MSIs, and the driver
runs the split or monolithic handling chain of Figure 1.
"""

from .driver import BottomHalfThread, IommuDriver
from .iommu import Iommu
from .request import (
    HIGH,
    LOW,
    LatencyStats,
    MODERATE,
    MODERATE_TO_HIGH,
    SSR_CATALOG,
    SsrKind,
    SsrRequest,
)

__all__ = [
    "BottomHalfThread",
    "HIGH",
    "Iommu",
    "IommuDriver",
    "LOW",
    "LatencyStats",
    "MODERATE",
    "MODERATE_TO_HIGH",
    "SSR_CATALOG",
    "SsrKind",
    "SsrRequest",
]
