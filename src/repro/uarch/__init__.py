"""Microarchitecture models: owner-tagged L1D cache and gshare predictor.

These structures are *shared* between user threads and kernel SSR handlers
running on the same core, so interference (line eviction, predictor
retraining) is mechanistic rather than assumed.  They drive the paper's
Figure 5 (microarchitectural effects of GPU SSRs).
"""

from .branch import BranchStats, GShareBranchPredictor
from .cache import CacheStats, SetAssociativeCache
from .state import (
    CoreUarchState,
    Disturbance,
    KERNEL_OWNER,
    UarchConfig,
    measure_steady_state,
)
from .streams import (
    AddressStreamSpec,
    BranchStreamSpec,
    generate_addresses,
    generate_branches,
    sequential_addresses,
)

__all__ = [
    "AddressStreamSpec",
    "BranchStats",
    "BranchStreamSpec",
    "CacheStats",
    "CoreUarchState",
    "Disturbance",
    "GShareBranchPredictor",
    "KERNEL_OWNER",
    "SetAssociativeCache",
    "UarchConfig",
    "generate_addresses",
    "generate_branches",
    "measure_steady_state",
    "sequential_addresses",
]
