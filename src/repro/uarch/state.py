"""Per-core microarchitectural state and the pollution API.

Each simulated CPU core owns a :class:`CoreUarchState`: an L1D cache model
and a branch predictor.  User threads and kernel SSR handlers push their
(sampled) streams through these *shared* structures, so kernel handlers
genuinely evict user lines and retrain user predictor entries.  The core
model converts the resulting disturbance counts into stall cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, Tuple

from .branch import GShareBranchPredictor
from .cache import SetAssociativeCache
from .streams import (
    AddressStreamSpec,
    BranchStreamSpec,
    _randbelow,
    generate_addresses,
    generate_branches,
)

#: Owner tag used by all kernel-mode execution.
KERNEL_OWNER = "kernel"


@dataclass(frozen=True)
class UarchConfig:
    """Geometry of the per-core structures (scaled-down L1-class sizes)."""

    cache_sets: int = 64
    cache_ways: int = 8
    line_size: int = 64
    predictor_entries: int = 1024
    #: Global-history bits mixed into the predictor index.  The default of 0
    #: (a bimodal predictor) is deliberate: the synthetic branch streams have
    #: no real history correlation, so history bits would only inject index
    #: noise and push every stream toward a 50% mispredict rate.
    history_bits: int = 0

    def make_cache(self) -> SetAssociativeCache:
        return SetAssociativeCache(self.cache_sets, self.cache_ways, self.line_size)

    def make_predictor(self) -> GShareBranchPredictor:
        return GShareBranchPredictor(self.predictor_entries, self.history_bits)


@dataclass
class Disturbance:
    """What one kernel window did to a given user owner's state."""

    lines_evicted: int = 0
    entries_retrained: int = 0


class CoreUarchState:
    """The cache + predictor pair of one core, with disturbance accounting."""

    def __init__(self, config: UarchConfig, rng: Random):
        self.config = config
        self.l1d = config.make_cache()
        self.predictor = config.make_predictor()
        self._rng = rng

    # ------------------------------------------------------------------
    # Stream execution
    # ------------------------------------------------------------------
    def run_user_window(
        self,
        owner: str,
        addr_spec: AddressStreamSpec,
        branch_spec: BranchStreamSpec,
        accesses: int,
        branches: int,
    ) -> Tuple[int, int]:
        """Run a sampled user window; returns (misses, mispredicts).

        The loops below are :func:`~repro.uarch.streams.generate_addresses`
        and :func:`~repro.uarch.streams.generate_branches` fused inline —
        same draws in the same order from the same RNG, without paying a
        generator resume per access on the simulator's hottest path.
        """
        rng = self._rng
        random = rng.random
        randbelow = _randbelow(rng)
        access = self.l1d.access
        hot_lines = max(1, int(addr_spec.lines * addr_spec.hot_fraction))
        base, lines = addr_spec.base, addr_spec.lines
        hot_rate, line_size = addr_spec.hot_rate, addr_spec.line_size
        misses = 0
        for _ in range(accesses):
            line = randbelow(hot_lines) if random() < hot_rate else randbelow(lines)
            if not access(base + line * line_size, owner):
                misses += 1
        execute = self.predictor.execute
        base_pc, sites, bias = branch_spec.base_pc, branch_spec.sites, branch_spec.bias
        mispredicts = 0
        for _ in range(branches):
            site = randbelow(sites)
            majority = (site & 1) == 0
            taken = majority if random() < bias else not majority
            if not execute(base_pc + site * 4, taken, owner):
                mispredicts += 1
        return misses, mispredicts

    def run_kernel_window(
        self,
        addr_spec: AddressStreamSpec,
        branch_spec: BranchStreamSpec,
        accesses: int,
        branches: int,
    ) -> Dict[str, Disturbance]:
        """Run a kernel handler's stream; returns per-victim disturbance.

        The handler's accesses evict whoever is resident; the returned map
        tells the core model how many lines/entries each *user* owner lost
        to this window, so the cost can be charged when that owner resumes.
        """
        cache_stats = self.l1d.stats
        branch_stats = self.predictor.stats
        evictions_before = dict(cache_stats.evictions_caused)
        retrains_before = dict(branch_stats.entries_disturbed)

        # Same fused stream loops as run_user_window (identical RNG order).
        rng = self._rng
        random = rng.random
        randbelow = _randbelow(rng)
        access = self.l1d.access
        hot_lines = max(1, int(addr_spec.lines * addr_spec.hot_fraction))
        base, lines = addr_spec.base, addr_spec.lines
        hot_rate, line_size = addr_spec.hot_rate, addr_spec.line_size
        for _ in range(accesses):
            line = randbelow(hot_lines) if random() < hot_rate else randbelow(lines)
            access(base + line * line_size, KERNEL_OWNER)
        execute = self.predictor.execute
        base_pc, sites, bias = branch_spec.base_pc, branch_spec.sites, branch_spec.bias
        for _ in range(branches):
            site = randbelow(sites)
            majority = (site & 1) == 0
            taken = majority if random() < bias else not majority
            execute(base_pc + site * 4, taken, KERNEL_OWNER)

        disturbances: Dict[str, Disturbance] = {}
        for (source, victim), count in cache_stats.evictions_caused.items():
            if source != KERNEL_OWNER or victim == KERNEL_OWNER:
                continue
            delta = count - evictions_before.get((source, victim), 0)
            if delta > 0:
                disturbances.setdefault(victim, Disturbance()).lines_evicted += delta
        for (source, victim), count in branch_stats.entries_disturbed.items():
            if source != KERNEL_OWNER or victim == KERNEL_OWNER:
                continue
            delta = count - retrains_before.get((source, victim), 0)
            if delta > 0:
                disturbances.setdefault(victim, Disturbance()).entries_retrained += delta
        return disturbances

    # ------------------------------------------------------------------
    # Sleep-state interaction
    # ------------------------------------------------------------------
    def flush_for_deep_sleep(self) -> int:
        """CC6 entry flushes the cache (its amortization cost in the paper)."""
        return self.l1d.flush()


def measure_steady_state(
    addr_spec: AddressStreamSpec,
    branch_spec: BranchStreamSpec,
    config: UarchConfig,
    seed: int = 12345,
    warmup_accesses: int = 8192,
    sample_accesses: int = 8192,
) -> Tuple[float, float]:
    """Measure a profile's solo steady-state miss and mispredict rates.

    Runs the profile alone on fresh structures: warm up, then measure.
    Used once per workload profile (results are cached by the caller) to
    derive the *baseline* CPI against which interference is charged.
    """
    state = CoreUarchState(config, Random(seed))
    owner = "probe"
    # Warm-up phase.
    state.run_user_window(owner, addr_spec, branch_spec, warmup_accesses, warmup_accesses // 2)
    state.l1d.stats.reset()
    state.predictor.stats.reset()
    # Measurement phase.
    state.run_user_window(owner, addr_spec, branch_spec, sample_accesses, sample_accesses // 2)
    miss_rate = state.l1d.stats.miss_rate(owner)
    mispredict_rate = state.predictor.stats.mispredict_rate(owner)
    return miss_rate, mispredict_rate
