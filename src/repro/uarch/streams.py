"""Synthetic memory-address and branch streams.

Workload profiles (see :mod:`repro.workloads.profiles`) are rendered into
streams of cache-line addresses and branch outcomes.  The streams are
statistical stand-ins for the real applications' traces: a working set with
a hot subset (temporal locality) plus per-site branch biases
(predictability).  They are deterministic for a given RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Iterator, Tuple


@dataclass(frozen=True)
class AddressStreamSpec:
    """Statistical description of a data-access stream.

    Attributes:
        base: Byte address where this owner's working set starts.  Distinct
            owners use distinct bases so their lines never alias as "shared".
        lines: Working-set size, in cache lines.
        hot_fraction: Fraction of the working set that is "hot".
        hot_rate: Probability that an access lands in the hot subset.
        line_size: Bytes per cache line (must match the cache being driven).
    """

    base: int
    lines: int
    hot_fraction: float = 0.2
    hot_rate: float = 0.8
    line_size: int = 64

    def __post_init__(self):
        if self.lines < 1:
            raise ValueError(f"lines must be >= 1, got {self.lines}")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction out of (0, 1]: {self.hot_fraction}")
        if not 0.0 <= self.hot_rate <= 1.0:
            raise ValueError(f"hot_rate out of [0, 1]: {self.hot_rate}")


@dataclass(frozen=True)
class BranchStreamSpec:
    """Statistical description of a branch stream.

    Attributes:
        base_pc: Program-counter base (keeps owners in distinct PC regions).
        sites: Number of static branch sites.
        bias: Probability a branch follows its site's majority direction.
            Values near 1.0 are highly predictable.
    """

    base_pc: int
    sites: int
    bias: float = 0.9

    def __post_init__(self):
        if self.sites < 1:
            raise ValueError(f"sites must be >= 1, got {self.sites}")
        if not 0.5 <= self.bias <= 1.0:
            raise ValueError(f"bias must be in [0.5, 1.0], got {self.bias}")


def _randbelow(rng: Random):
    """The cheapest draw equivalent to ``rng.randrange(n)`` for int n > 0.

    ``Random.randrange(n)`` is a thin argument-checking wrapper around
    ``Random._randbelow(n)``; calling the latter directly consumes the
    exact same bits from the generator, so streams are unchanged.
    """
    return getattr(rng, "_randbelow", rng.randrange)


def generate_addresses(spec: AddressStreamSpec, count: int, rng: Random) -> Iterator[int]:
    """Yield ``count`` byte addresses drawn from ``spec``'s distribution."""
    hot_lines = max(1, int(spec.lines * spec.hot_fraction))
    random = rng.random
    randbelow = _randbelow(rng)
    base, lines, hot_rate, line_size = spec.base, spec.lines, spec.hot_rate, spec.line_size
    for _ in range(count):
        line = randbelow(hot_lines) if random() < hot_rate else randbelow(lines)
        yield base + line * line_size


def generate_branches(
    spec: BranchStreamSpec, count: int, rng: Random
) -> Iterator[Tuple[int, bool]]:
    """Yield ``count`` ``(pc, taken)`` pairs drawn from ``spec``."""
    random = rng.random
    randbelow = _randbelow(rng)
    base_pc, sites, bias = spec.base_pc, spec.sites, spec.bias
    for _ in range(count):
        site = randbelow(sites)
        pc = base_pc + site * 4
        majority = (site & 1) == 0
        taken = majority if random() < bias else not majority
        yield pc, taken


def sequential_addresses(base: int, lines: int, line_size: int = 64) -> Iterator[int]:
    """Yield one address per line, in order — used to warm or scan a region."""
    for line in range(lines):
        yield base + line * line_size
