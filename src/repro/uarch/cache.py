"""A set-associative, LRU, owner-tagged cache model.

Lines are tagged with an *owner* string (a user thread name or ``"kernel"``).
This lets the interference machinery measure exactly how many of a user
thread's lines a kernel SSR handler evicted — the paper's "indirect
overhead" (Section II-D, segment *b* of Figure 2) — without any statistical
hand-waving: eviction here is real replacement in a real cache structure.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple


class CacheStats:
    """Per-owner hit/miss/eviction accounting."""

    __slots__ = ("hits", "misses", "evictions_suffered", "evictions_caused")

    def __init__(self):
        self.hits: Counter = Counter()
        self.misses: Counter = Counter()
        #: evictions_suffered[x] = lines owned by x that someone evicted
        self.evictions_suffered: Counter = Counter()
        #: evictions_caused[(a, b)] = lines of b evicted by accesses from a
        self.evictions_caused: Counter = Counter()

    def reset(self) -> None:
        self.hits.clear()
        self.misses.clear()
        self.evictions_suffered.clear()
        self.evictions_caused.clear()

    def miss_rate(self, owner: str) -> float:
        """Miss rate for ``owner`` over everything recorded so far."""
        total = self.hits[owner] + self.misses[owner]
        return self.misses[owner] / total if total else 0.0


class SetAssociativeCache:
    """A classic set-associative cache with true-LRU replacement.

    Addresses are byte addresses; ``line_size`` must be a power of two.
    The cache is deliberately small relative to a real 32 KiB L1 so that
    scaled-down synthetic working sets exercise realistic contention.
    """

    def __init__(self, num_sets: int = 64, ways: int = 8, line_size: int = 64):
        if num_sets < 1 or ways < 1:
            raise ValueError("num_sets and ways must be >= 1")
        if line_size < 1 or (line_size & (line_size - 1)) != 0:
            raise ValueError(f"line_size must be a power of two, got {line_size}")
        self.num_sets = num_sets
        self.ways = ways
        self.line_size = line_size
        self._line_shift = line_size.bit_length() - 1
        # Each set maps tag -> [owner, lru_stamp]; small dicts keep lookup O(1).
        self._sets: List[Dict[int, List]] = [dict() for _ in range(num_sets)]
        self._clock = 0
        self._occupancy: Counter = Counter()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def total_lines(self) -> int:
        """Capacity of the cache in lines."""
        return self.num_sets * self.ways

    @property
    def size_bytes(self) -> int:
        """Capacity of the cache in bytes."""
        return self.total_lines * self.line_size

    def _index_tag(self, address: int) -> Tuple[int, int]:
        line = address // self.line_size
        return line % self.num_sets, line // self.num_sets

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def access(self, address: int, owner: str) -> bool:
        """Access ``address`` on behalf of ``owner``; returns True on a hit.

        On a miss the line is installed with LRU replacement; if a victim
        belonging to a *different* owner is evicted, the disturbance is
        recorded in :attr:`stats`.
        """
        self._clock = clock = self._clock + 1
        line = address >> self._line_shift
        num_sets = self.num_sets
        cache_set = self._sets[line % num_sets]
        tag = line // num_sets
        entry = cache_set.get(tag)
        stats = self.stats
        if entry is not None:
            entry[1] = clock
            stats.hits[owner] += 1
            # A line can be re-claimed by a new owner (shared address space
            # is not modeled; same tag => same owner in practice).
            return True

        stats.misses[owner] += 1
        if len(cache_set) >= self.ways:
            # True-LRU victim: the first entry carrying the minimal stamp
            # (stamps are unique, so the scan picks the one oldest line).
            victim_tag = victim_owner = None
            victim_stamp = clock
            for candidate_tag, candidate in cache_set.items():
                stamp = candidate[1]
                if stamp < victim_stamp:
                    victim_stamp = stamp
                    victim_tag = candidate_tag
                    victim_owner = candidate[0]
            del cache_set[victim_tag]
            self._occupancy[victim_owner] -= 1
            stats.evictions_suffered[victim_owner] += 1
            stats.evictions_caused[(owner, victim_owner)] += 1
        cache_set[tag] = [owner, clock]
        self._occupancy[owner] += 1
        return False

    def occupancy(self, owner: str) -> int:
        """Number of lines currently owned by ``owner``."""
        return self._occupancy[owner]

    def resident_owners(self) -> Dict[str, int]:
        """Snapshot of line counts per owner (non-zero entries only)."""
        return {o: n for o, n in self._occupancy.items() if n > 0}

    def flush(self) -> int:
        """Invalidate everything (e.g., on CC6 entry); returns lines dropped."""
        dropped = sum(self._occupancy.values())
        for cache_set in self._sets:
            cache_set.clear()
        self._occupancy.clear()
        return dropped

    def evict_owner(self, owner: str) -> int:
        """Invalidate all lines of one owner (e.g., on thread exit)."""
        dropped = 0
        for cache_set in self._sets:
            doomed = [tag for tag, entry in cache_set.items() if entry[0] == owner]
            for tag in doomed:
                del cache_set[tag]
                dropped += 1
        if dropped:
            self._occupancy[owner] -= dropped
        return dropped
