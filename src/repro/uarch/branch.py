"""A gshare dynamic branch predictor with owner-disturbance tracking.

The predictor is a table of 2-bit saturating counters indexed by
``PC xor global-history``.  Entries remember which owner last trained them,
so when a kernel SSR handler's branches retrain entries that a user thread
had warmed up, the disturbance is counted — this drives the paper's
Figure 5b (branch misprediction increase from GPU SSRs).
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional


#: 2-bit saturating counter states.
STRONG_NOT_TAKEN, WEAK_NOT_TAKEN, WEAK_TAKEN, STRONG_TAKEN = 0, 1, 2, 3


class BranchStats:
    """Per-owner prediction accounting."""

    __slots__ = ("predictions", "mispredictions", "entries_disturbed")

    def __init__(self):
        self.predictions: Counter = Counter()
        self.mispredictions: Counter = Counter()
        #: entries_disturbed[(a, b)] = predictor entries trained by b that a
        #: subsequently retrained (ownership change).
        self.entries_disturbed: Counter = Counter()

    def reset(self) -> None:
        self.predictions.clear()
        self.mispredictions.clear()
        self.entries_disturbed.clear()

    def mispredict_rate(self, owner: str) -> float:
        total = self.predictions[owner]
        return self.mispredictions[owner] / total if total else 0.0


class GShareBranchPredictor:
    """gshare: global history XOR PC indexes a 2-bit counter table."""

    def __init__(self, table_size: int = 1024, history_bits: int = 8):
        if table_size < 2 or (table_size & (table_size - 1)) != 0:
            raise ValueError(f"table_size must be a power of two >= 2, got {table_size}")
        if not 0 <= history_bits <= 30:
            raise ValueError(f"history_bits out of range: {history_bits}")
        self.table_size = table_size
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._table: List[int] = [WEAK_NOT_TAKEN] * table_size
        self._owners: List[Optional[str]] = [None] * table_size
        self._history = 0
        self.stats = BranchStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.table_size

    def execute(self, pc: int, taken: bool, owner: str) -> bool:
        """Predict and train on one branch; returns True if predicted right."""
        history = self._history
        index = ((pc >> 2) ^ history) % self.table_size
        table = self._table
        counter = table[index]
        prediction = counter >= WEAK_TAKEN
        correct = prediction == taken

        stats = self.stats
        stats.predictions[owner] += 1
        if not correct:
            stats.mispredictions[owner] += 1

        # Train the 2-bit counter.
        if taken:
            if counter < STRONG_TAKEN:
                table[index] = counter + 1
        elif counter > STRONG_NOT_TAKEN:
            table[index] = counter - 1

        owners = self._owners
        previous_owner = owners[index]
        if previous_owner is not None and previous_owner != owner:
            stats.entries_disturbed[(owner, previous_owner)] += 1
        owners[index] = owner

        # Update global history.
        self._history = ((history << 1) | int(taken)) & self._history_mask
        return correct

    def owned_entries(self, owner: str) -> int:
        """Number of table entries last trained by ``owner``."""
        return sum(1 for entry_owner in self._owners if entry_owner == owner)

    def reset_state(self) -> None:
        """Forget all training (e.g., deep sleep with state loss)."""
        for i in range(self.table_size):
            self._table[i] = WEAK_NOT_TAKEN
            self._owners[i] = None
        self._history = 0
