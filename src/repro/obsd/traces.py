"""Trace analytics over job span documents.

The serving tier's trace endpoint (``GET /v1/jobs/<id>/trace``) returns
a span document whose stage spans chain on shared timestamps — admission
back-off, submit, queue wait, batch execution (with per-run ``sim-*``
children), render.  That construction makes two analyses exact rather
than heuristic:

* :func:`stage_decomposition` — how the job's end-to-end wall time
  divides across stages, with the batch stage further split into
  **sim-critical** time (the union of the parallel per-run sim spans —
  the part a faster simulator would shrink) and **batch overhead**
  (assembly, dispatch, result collection — the part only the serving
  tier can shrink).  Because stages tile the root span, the rows sum to
  the end-to-end time by construction.
* :func:`critical_path` — the chain of spans that actually bounded the
  job's completion: every serial stage plus, inside the batch, the
  longest-running sim span (the straggler run).
* :func:`trace_diff` — attribute the end-to-end latency delta between
  two jobs to stages: "job B was 2.1 s slower, 87 % of it queue wait"
  is the queueing-delay attribution the paper makes for SSRs, applied
  to the service's own pipeline.

All three are pure functions of the documents passed in.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["critical_path", "stage_decomposition", "trace_diff"]

#: Serial stage categories in pipeline order (as emitted by
#: ``repro.service.obs.build_trace_document``).
_STAGE_ORDER = ("backoff", "submit", "queue", "sim_critical", "batch_overhead", "render")

#: Human labels for decomposition rows.
_STAGE_LABELS = {
    "backoff": "admission back-off (429s + waits)",
    "submit": "submit (parse + plan)",
    "queue": "queue wait",
    "sim_critical": "batch: sim critical path",
    "batch_overhead": "batch: scheduling overhead",
    "render": "render",
}


def _spans_by_id(doc: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    return {span["span_id"]: span for span in doc.get("spans", [])}


def _duration(span: Optional[Dict[str, Any]]) -> float:
    if not span or span.get("end_s") is None or span.get("start_s") is None:
        return 0.0
    return max(0.0, span["end_s"] - span["start_s"])


def _interval_union(spans: List[Dict[str, Any]]) -> float:
    """Total seconds covered by at least one of the given spans."""
    intervals: List[Tuple[float, float]] = sorted(
        (span["start_s"], span["end_s"])
        for span in spans
        if span.get("start_s") is not None and span.get("end_s") is not None
    )
    covered = 0.0
    cursor: Optional[float] = None
    end: float = 0.0
    for start, stop in intervals:
        if cursor is None or start > end:
            if cursor is not None:
                covered += end - cursor
            cursor, end = start, stop
        else:
            end = max(end, stop)
    if cursor is not None:
        covered += end - cursor
    return covered


def stage_decomposition(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Per-stage share of one job's end-to-end wall time.

    Returns ``{"job_id", "trace_id", "state", "e2e_s", "stages": [...]}``
    where each stage row carries ``{"stage", "label", "seconds",
    "share"}`` (share of e2e) in pipeline order.  Stages sum to ``e2e_s``
    up to float rounding because the underlying spans tile the root.
    """
    spans = _spans_by_id(doc)
    backoffs = [s for s in doc.get("spans", []) if s["span_id"].startswith("backoff-")]
    sims = [s for s in doc.get("spans", []) if s["span_id"].startswith("sim-")]
    batch_s = _duration(spans.get("batch"))
    sim_critical = min(batch_s, _interval_union(sims)) if sims else 0.0
    # The back-off stage is everything before the accepted submission
    # arrived: the 429 rounds themselves *and* the Retry-After sleeps the
    # client sat out between them — that keeps the stages tiling the
    # root span (the rejected spans alone would leave the sleeps as an
    # unattributed gap).
    root_span = spans.get("root")
    submit_span = spans.get("submit")
    if root_span and submit_span:
        backoff_s = max(0.0, submit_span["start_s"] - root_span["start_s"])
    else:
        backoff_s = sum(_duration(s) for s in backoffs)
    seconds = {
        "backoff": backoff_s,
        "submit": _duration(spans.get("submit")),
        "queue": _duration(spans.get("queue")),
        "sim_critical": sim_critical,
        "batch_overhead": batch_s - sim_critical,
        "render": _duration(spans.get("render")),
    }
    root = spans.get("root")
    e2e_s = _duration(root)
    if e2e_s <= 0:
        e2e_s = sum(seconds.values())
    stages = [
        {
            "stage": stage,
            "label": _STAGE_LABELS[stage],
            "seconds": seconds[stage],
            "share": (seconds[stage] / e2e_s) if e2e_s else 0.0,
        }
        for stage in _STAGE_ORDER
    ]
    return {
        "job_id": doc.get("job_id"),
        "trace_id": doc.get("trace_id"),
        "state": doc.get("state"),
        "e2e_s": e2e_s,
        "runs": len(sims),
        "stages": stages,
    }


def critical_path(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The span chain that bounded the job's completion time.

    Serial stages appear in pipeline order; inside the batch stage the
    longest sim span (the straggler run) is the binding child, so it is
    substituted for the batch span's interior with any remainder
    attributed to batch overhead.  Each row: ``{"span_id", "name",
    "seconds", "kind"}`` with ``kind`` in ``stage|sim``.
    """
    spans = _spans_by_id(doc)
    path: List[Dict[str, Any]] = []
    for span in sorted(
        (s for s in doc.get("spans", []) if s["span_id"].startswith("backoff-")),
        key=lambda s: s["start_s"],
    ):
        path.append(
            {
                "span_id": span["span_id"],
                "name": span["name"],
                "seconds": _duration(span),
                "kind": "stage",
            }
        )
    for span_id in ("submit", "queue"):
        span = spans.get(span_id)
        if span:
            path.append(
                {
                    "span_id": span_id,
                    "name": span["name"],
                    "seconds": _duration(span),
                    "kind": "stage",
                }
            )
    batch = spans.get("batch")
    if batch:
        sims = [s for s in doc.get("spans", []) if s["span_id"].startswith("sim-")]
        straggler = max(sims, key=_duration, default=None)
        straggler_s = _duration(straggler)
        overhead_s = max(0.0, _duration(batch) - straggler_s)
        if overhead_s > 0:
            path.append(
                {
                    "span_id": "batch",
                    "name": "batch.overhead",
                    "seconds": overhead_s,
                    "kind": "stage",
                }
            )
        if straggler is not None:
            path.append(
                {
                    "span_id": straggler["span_id"],
                    "name": straggler["name"],
                    "seconds": straggler_s,
                    "kind": "sim",
                }
            )
    render = spans.get("render")
    if render:
        path.append(
            {
                "span_id": "render",
                "name": render["name"],
                "seconds": _duration(render),
                "kind": "stage",
            }
        )
    return path


def trace_diff(doc_a: Dict[str, Any], doc_b: Dict[str, Any]) -> Dict[str, Any]:
    """Attribute the e2e latency delta between two jobs to stages.

    ``doc_a`` is the baseline, ``doc_b`` the comparison.  Each stage row
    carries both absolute times, the delta, and the delta's share of the
    end-to-end delta (shares sum to 1 up to rounding when the e2e delta
    is non-zero).  Positive delta = B spent longer in that stage.
    """
    a = stage_decomposition(doc_a)
    b = stage_decomposition(doc_b)
    e2e_delta = b["e2e_s"] - a["e2e_s"]
    rows = []
    a_stages = {row["stage"]: row for row in a["stages"]}
    for row_b in b["stages"]:
        row_a = a_stages[row_b["stage"]]
        delta = row_b["seconds"] - row_a["seconds"]
        rows.append(
            {
                "stage": row_b["stage"],
                "label": row_b["label"],
                "a_s": row_a["seconds"],
                "b_s": row_b["seconds"],
                "delta_s": delta,
                "share_of_delta": (delta / e2e_delta) if e2e_delta else 0.0,
            }
        )
    rows.sort(key=lambda r: abs(r["delta_s"]), reverse=True)
    return {
        "a": {"job_id": a["job_id"], "trace_id": a["trace_id"], "e2e_s": a["e2e_s"]},
        "b": {"job_id": b["job_id"], "trace_id": b["trace_id"], "e2e_s": b["e2e_s"]},
        "e2e_delta_s": e2e_delta,
        "stages": rows,
    }
