"""Declarative SLOs evaluated as multi-window burn-rate rules.

An :class:`SloSpec` states an objective the serving tier should meet —
"99 % of jobs finish end-to-end under 5 s", "99.9 % of jobs succeed",
"at least half the pool's tasks hit a warm worker" — and the evaluator
turns rollup windows into a verdict.  Everything reduces to one shape:

    each window yields ``(bad, total)`` events; the **burn rate** is
    ``(bad / total) / (1 - objective)`` — how many times faster than
    budget the error budget is being spent.

A rule *fires* when both its fast window (default 5 m) and its slow
window (default 1 h) burn above the spec's factor — the classic
multi-window construction: the slow window keeps one unlucky request
from paging anyone, the fast window makes the alert resolve quickly
once the regression stops.  This is percentile-first alerting, the
operational twin of the paper's observation that SSR interference shows
up at p95/p99 long before it moves a mean.

Evaluation (:func:`evaluate_slos`) is a pure function of the rollup
buckets and the spec list — no wall-clock reads, no ambient state — so
the same capture always produces byte-identical verdicts, whether it is
replayed offline by ``hiss-slo`` or watched live by the daemon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .rollup import RollupBucket, RollupStore

__all__ = [
    "ALERTS_SCHEMA",
    "AlertEvent",
    "DEFAULT_SLOS",
    "SLO_SCHEMA",
    "SloSpec",
    "evaluate_slos",
    "parse_slo_document",
    "slo_document",
    "validate_slo_document",
]

#: Version tag of SLO spec documents (``{"schema": "hiss.slo/1", ...}``).
SLO_SCHEMA = "hiss.slo/1"

#: Version tag of the ``GET /v1/alerts`` document.
ALERTS_SCHEMA = "hiss.alerts/1"

#: Spec kinds.
KIND_LATENCY = "latency"
KIND_AVAILABILITY = "availability"
KIND_RATIO = "ratio"
_KINDS = (KIND_LATENCY, KIND_AVAILABILITY, KIND_RATIO)

#: Short latency labels -> full histogram names (mirrors
#: ``repro.service.obs.LATENCY_HISTOGRAMS``; kept literal so this module
#: stays importable without the service layer).
LATENCY_METRICS = {
    "queue_wait_s": "service.job.queue_wait_s",
    "sim_s": "service.job.sim_s",
    "e2e_s": "service.job.e2e_s",
}

#: Default multi-window pair: page-grade 5 m / 1 h at 14.4x burn (a rate
#: that exhausts a 30-day budget in ~2 days).
DEFAULT_FAST_WINDOW_S = 300.0
DEFAULT_SLOW_WINDOW_S = 3600.0
DEFAULT_BURN_FACTOR = 14.4


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective plus its burn-rate alert rule."""

    name: str
    kind: str
    #: ``latency``: histogram label/name; ``ratio``: numerator counter.
    metric: str = ""
    #: ``latency`` only: the stage budget in seconds.
    threshold_s: float = 0.0
    #: ``latency``: implied by ``percentile`` (p99 -> 0.99).
    #: ``availability`` / ``ratio``: the target good fraction.
    objective: float = 0.999
    #: ``latency`` only: which tail the threshold guards (e.g. 99).
    percentile: float = 99.0
    #: ``availability``: counter families counted as good / bad events.
    good: Tuple[str, ...] = ()
    bad: Tuple[str, ...] = ()
    #: ``ratio``: denominator counter (metric is the numerator).
    denominator: str = ""
    fast_window_s: float = DEFAULT_FAST_WINDOW_S
    slow_window_s: float = DEFAULT_SLOW_WINDOW_S
    burn_factor: float = DEFAULT_BURN_FACTOR
    severity: str = "page"
    description: str = ""

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"slo {self.name!r}: unknown kind {self.kind!r}")
        if not self.name:
            raise ValueError("slo spec needs a non-empty name")
        if self.kind == KIND_LATENCY:
            if not self.metric:
                raise ValueError(f"slo {self.name!r}: latency slo needs 'metric'")
            if self.threshold_s <= 0:
                raise ValueError(f"slo {self.name!r}: threshold_s must be positive")
            if not 0 < self.percentile < 100:
                raise ValueError(f"slo {self.name!r}: percentile must be in (0, 100)")
            object.__setattr__(self, "objective", self.percentile / 100.0)
        elif self.kind == KIND_AVAILABILITY:
            if not self.good or not self.bad:
                raise ValueError(
                    f"slo {self.name!r}: availability slo needs 'good' and 'bad'"
                )
        elif self.kind == KIND_RATIO:
            if not self.metric or not self.denominator:
                raise ValueError(
                    f"slo {self.name!r}: ratio slo needs 'metric' and 'denominator'"
                )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"slo {self.name!r}: objective {self.objective} outside (0, 1)"
            )
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ValueError(
                f"slo {self.name!r}: need 0 < fast_window_s <= slow_window_s"
            )
        if self.burn_factor <= 0:
            raise ValueError(f"slo {self.name!r}: burn_factor must be positive")

    @property
    def budget(self) -> float:
        """The error budget: tolerable bad fraction (``1 - objective``)."""
        return 1.0 - self.objective

    # ------------------------------------------------------------------
    # Window reduction
    # ------------------------------------------------------------------
    def _histogram_name(self) -> str:
        return LATENCY_METRICS.get(self.metric, self.metric)

    def events(self, window: RollupBucket) -> Tuple[float, float]:
        """Reduce one window to ``(bad, total)`` events."""
        if self.kind == KIND_LATENCY:
            histogram = window.histograms.get(self._histogram_name())
            if histogram is None or histogram.count == 0:
                return 0.0, 0.0
            return histogram.fraction_over(self.threshold_s) * histogram.count, float(
                histogram.count
            )
        if self.kind == KIND_AVAILABILITY:
            good = float(window.total(self.good))
            bad = float(window.total(self.bad))
            return bad, good + bad
        numerator = float(window.counters.get(self.metric, 0))
        denominator = float(window.counters.get(self.denominator, 0))
        return max(0.0, denominator - numerator), denominator

    def evaluate_window(self, window: RollupBucket) -> Dict[str, float]:
        bad, total = self.events(window)
        bad_fraction = bad / total if total else 0.0
        return {
            "seconds": window.seconds,
            "total": total,
            "bad": bad,
            "bad_fraction": bad_fraction,
            "burn": bad_fraction / self.budget,
        }

    def evaluate(self, store: RollupStore, end_s: Optional[float] = None) -> Dict[str, Any]:
        """Both windows plus the verdict, as one JSON-able row."""
        fast = self.evaluate_window(store.window(self.fast_window_s, end_s=end_s))
        slow = self.evaluate_window(store.window(self.slow_window_s, end_s=end_s))
        firing = bool(
            fast["total"]
            and fast["burn"] >= self.burn_factor
            and slow["burn"] >= self.burn_factor
        )
        return {
            "name": self.name,
            "kind": self.kind,
            "severity": self.severity,
            "objective": self.objective,
            "burn_factor": self.burn_factor,
            "detail": self.detail(),
            "windows": {"fast": fast, "slow": slow},
            "firing": firing,
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def detail(self) -> str:
        """One-line human rendering of the objective."""
        if self.kind == KIND_LATENCY:
            return (
                f"{self.metric} p{self.percentile:g} < {self.threshold_s:g}s"
            )
        if self.kind == KIND_AVAILABILITY:
            return f"availability >= {self.objective * 100:g}%"
        return f"{self.metric}/{self.denominator} >= {self.objective * 100:g}%"

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "burn_factor": self.burn_factor,
            "severity": self.severity,
        }
        if self.description:
            doc["description"] = self.description
        if self.kind == KIND_LATENCY:
            doc["metric"] = self.metric
            doc["percentile"] = self.percentile
            doc["threshold_s"] = self.threshold_s
        elif self.kind == KIND_AVAILABILITY:
            doc["objective"] = self.objective
            doc["good"] = list(self.good)
            doc["bad"] = list(self.bad)
        else:
            doc["objective"] = self.objective
            doc["metric"] = self.metric
            doc["denominator"] = self.denominator
        return doc


@dataclass
class AlertEvent:
    """One edge-triggered alert transition (fired or resolved)."""

    slo: str
    state: str  # "firing" | "resolved"
    severity: str
    at_s: float  # evaluation timestamp (bucket end — capture time)
    burn_fast: float
    burn_slow: float
    detail: str = ""
    message: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "state": self.state,
            "severity": self.severity,
            "at_s": self.at_s,
            "burn_fast": self.burn_fast,
            "burn_slow": self.burn_slow,
            "detail": self.detail,
            "message": self.message,
        }


#: The out-of-the-box spec set (``hiss-serve --slo default``): the three
#: stage tails the ops snapshot already surfaces, availability, and the
#: warm pool's hit ratio.  Latency thresholds are deliberately generous
#: defaults — tighten them per deployment with a spec file.
DEFAULT_SLOS: Tuple[SloSpec, ...] = (
    SloSpec(
        name="e2e-p99",
        kind=KIND_LATENCY,
        metric="e2e_s",
        percentile=99,
        threshold_s=60.0,
        description="99% of jobs finish end-to-end within a minute",
    ),
    SloSpec(
        name="queue-wait-p95",
        kind=KIND_LATENCY,
        metric="queue_wait_s",
        percentile=95,
        threshold_s=30.0,
        severity="ticket",
        description="95% of jobs start executing within 30s of admission",
    ),
    SloSpec(
        name="availability",
        kind=KIND_AVAILABILITY,
        objective=0.999,
        good=("service.jobs.completed",),
        bad=("service.jobs.failed",),
        description="99.9% of finished jobs succeed",
    ),
    SloSpec(
        name="pool-warm-hits",
        kind=KIND_RATIO,
        metric="pool.warm_hits",
        denominator="pool.tasks_completed",
        objective=0.5,
        burn_factor=1.5,
        severity="ticket",
        description="at least half of pool tasks land on a warm worker",
    ),
)


# ----------------------------------------------------------------------
# Pure evaluation
# ----------------------------------------------------------------------
def evaluate_slos(
    specs,
    store: RollupStore,
    end_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Evaluate every spec against the store at ``end_s`` (pure).

    ``end_s`` defaults to the newest bucket's end — capture time, not
    wall time — so a finished capture evaluates identically forever.
    """
    if end_s is None:
        end_s = store.end_s if store.end_s is not None else 0.0
    evaluations = [spec.evaluate(store, end_s=end_s) for spec in specs]
    return {
        "schema": ALERTS_SCHEMA,
        "at_s": end_s,
        "buckets": len(store),
        "interval_s": store.interval_s,
        "decimations": store.decimations,
        "evaluations": evaluations,
        "firing": [row["name"] for row in evaluations if row["firing"]],
    }


# ----------------------------------------------------------------------
# Spec documents (the ``--slo FILE`` format)
# ----------------------------------------------------------------------
_COMMON_FIELDS = {
    "name", "kind", "fast_window_s", "slow_window_s", "burn_factor",
    "severity", "description",
}
_KIND_FIELDS = {
    KIND_LATENCY: {"metric", "percentile", "threshold_s"},
    KIND_AVAILABILITY: {"objective", "good", "bad"},
    KIND_RATIO: {"objective", "metric", "denominator"},
}


def slo_document(specs) -> Dict[str, Any]:
    """Serialize a spec list into the versioned document format."""
    return {"schema": SLO_SCHEMA, "slos": [spec.as_dict() for spec in specs]}


def validate_slo_document(doc: Any) -> List[str]:
    """Schema-check an SLO document; returns a list of problems."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    if doc.get("schema") != SLO_SCHEMA:
        errors.append(f"unknown schema {doc.get('schema')!r} (expected {SLO_SCHEMA!r})")
    slos = doc.get("slos")
    if not isinstance(slos, list) or not slos:
        return errors + ["missing or empty 'slos' array"]
    seen = set()
    for index, entry in enumerate(slos):
        where = f"slos[{index}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        kind = entry.get("kind")
        if kind not in _KINDS:
            errors.append(f"{where}: unknown kind {kind!r} (known: {list(_KINDS)})")
            continue
        allowed = _COMMON_FIELDS | _KIND_FIELDS[kind]
        unknown = set(entry) - allowed
        if unknown:
            errors.append(
                f"{where}: unknown field(s) {sorted(unknown)} for kind {kind!r}"
            )
        name = entry.get("name")
        if name in seen:
            errors.append(f"{where}: duplicate slo name {name!r}")
        seen.add(name)
        try:
            _spec_from_entry(entry)
        except (ValueError, TypeError) as exc:
            errors.append(f"{where}: {exc}")
    return errors


def _spec_from_entry(entry: Dict[str, Any]) -> SloSpec:
    kwargs: Dict[str, Any] = {
        "name": str(entry.get("name") or ""),
        "kind": entry.get("kind"),
    }
    for key in (
        "metric", "threshold_s", "objective", "percentile", "denominator",
        "fast_window_s", "slow_window_s", "burn_factor", "severity",
        "description",
    ):
        if key in entry:
            kwargs[key] = entry[key]
    if "good" in entry:
        kwargs["good"] = tuple(entry["good"])
    if "bad" in entry:
        kwargs["bad"] = tuple(entry["bad"])
    return SloSpec(**kwargs)


def parse_slo_document(doc: Any) -> List[SloSpec]:
    """Parse + validate a spec document; raises ``ValueError`` on problems."""
    problems = validate_slo_document(doc)
    if problems:
        raise ValueError("; ".join(problems))
    return [_spec_from_entry(entry) for entry in doc["slos"]]
