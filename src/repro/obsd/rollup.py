"""Bounded, deterministic time-series rollups of service telemetry.

The serving tier's instruments are *cumulative*: counters only grow and
the stage histograms accumulate over the daemon's whole life, so "is the
tail degrading *now*" cannot be read off them directly — a week of good
behavior arithmetically swamps a bad five minutes, which is exactly how
the paper says SSR interference hides (tails move long before means).

A :class:`RollupStore` fixes that by keeping **windows**: at a fixed
interval it snapshots the cumulative state and stores the *delta* since
the previous snapshot as a :class:`RollupBucket` — counter increments,
windowed histograms (bucket-wise differences, merged back together with
:meth:`repro.telemetry.metrics.Histogram.merge`), and gauge last-values.
Burn-rate windows (fast 5 m / slow 1 h) are then pure merges over the
buckets that cover them.

Properties, mirroring :mod:`repro.profiling.sampler`:

* **Bounded memory with deterministic decimation** — when the ring
  fills, adjacent bucket pairs are merged (counters add, histograms
  merge, gauges keep the later value) and the interval doubles.  The
  merge points depend only on the sample count, never on wall clock.
* **Pure evaluation** — window queries take an explicit ``end_s`` (the
  last bucket's end by default) and never read the clock, so the same
  stored buckets always produce the same windows, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..telemetry.metrics import Histogram

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_INTERVAL_S",
    "RollupBucket",
    "RollupStore",
]

#: Default sampling cadence for the live engine (wall seconds).
DEFAULT_INTERVAL_S = 5.0

#: Default ring capacity (buckets retained before decimation).  4096
#: buckets at 5 s cover ~5.7 h — comfortably past the 1 h slow window.
DEFAULT_CAPACITY = 4096


@dataclass
class RollupBucket:
    """Everything that happened in one ``[start_s, end_s)`` window."""

    start_s: float
    end_s: float
    #: Monotonic-counter increments within the window.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Point-in-time values observed at the window's end.
    gauges: Dict[str, float] = field(default_factory=dict)
    #: Observations recorded within the window, at bucket resolution.
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.end_s - self.start_s

    def merge(self, other: "RollupBucket") -> "RollupBucket":
        """Fold a later bucket into this one in place; returns ``self``.

        Counters add, histograms merge bucket-wise, gauges take the later
        bucket's value (they are last-value semantics), and the window
        extends to cover both.
        """
        self.start_s = min(self.start_s, other.start_s)
        self.end_s = max(self.end_s, other.end_s)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(other.gauges)
        for name, window in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = window.delta(None)
            else:
                mine.merge(window)
        return self

    def total(self, names) -> int:
        """Sum of this window's increments across ``names``."""
        return sum(self.counters.get(name, 0) for name in names)

    def as_dict(self) -> Dict[str, object]:
        return {
            "start_s": self.start_s,
            "end_s": self.end_s,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                name: self.histograms[name].summary()
                for name in sorted(self.histograms)
            },
        }


class RollupStore:
    """Fixed-interval ring of :class:`RollupBucket` windows."""

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if capacity < 16 or capacity % 2:
            raise ValueError(f"capacity must be an even number >= 16, got {capacity}")
        self.initial_interval_s = interval_s
        self.interval_s = interval_s
        self.capacity = capacity
        self.buckets: List[RollupBucket] = []
        #: Times the ring overflowed and adjacent pairs were merged.
        self.decimations = 0
        #: Cumulative state at the previous sample (for delta computation).
        self._prev_counters: Dict[str, int] = {}
        self._prev_histograms: Dict[str, Histogram] = {}
        self._last_sample_s: Optional[float] = None

    def __len__(self) -> int:
        return len(self.buckets)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def sample(
        self,
        now_s: float,
        counters: Optional[Dict[str, int]] = None,
        gauges: Optional[Dict[str, float]] = None,
        histograms: Optional[Dict[str, Histogram]] = None,
    ) -> RollupBucket:
        """Snapshot cumulative state; store and return the delta bucket.

        ``counters`` and ``histograms`` are *cumulative* (live registry
        values); the stored bucket holds their increments since the last
        sample.  The first sample's window starts one interval before it,
        so a store's buckets always tile time without gaps.
        """
        counters = counters or {}
        histograms = histograms or {}
        start_s = (
            self._last_sample_s
            if self._last_sample_s is not None
            else now_s - self.interval_s
        )
        bucket = RollupBucket(start_s=start_s, end_s=now_s, gauges=dict(gauges or {}))
        for name in sorted(counters):
            delta = counters[name] - self._prev_counters.get(name, 0)
            if delta:
                bucket.counters[name] = delta
            self._prev_counters[name] = counters[name]
        for name in sorted(histograms):
            cumulative = histograms[name]
            window = cumulative.delta(self._prev_histograms.get(name))
            if window.count:
                bucket.histograms[name] = window
            self._prev_histograms[name] = cumulative.delta(None)
        self._last_sample_s = now_s
        self._append(bucket)
        return bucket

    def observe_bucket(self, bucket: RollupBucket) -> None:
        """Append an already-windowed bucket (the offline replay path)."""
        self._append(bucket)

    def _append(self, bucket: RollupBucket) -> None:
        self.buckets.append(bucket)
        if len(self.buckets) >= self.capacity:
            # Deterministic decimation: merge adjacent pairs, double the
            # interval.  Counter sums and histogram merges lose nothing;
            # only the bucket boundaries coarsen.
            merged = [
                self.buckets[i].merge(self.buckets[i + 1])
                for i in range(0, len(self.buckets) - 1, 2)
            ]
            if len(self.buckets) % 2:
                merged.append(self.buckets[-1])
            self.buckets = merged
            self.interval_s *= 2
            self.decimations += 1

    # ------------------------------------------------------------------
    # Pure window queries
    # ------------------------------------------------------------------
    @property
    def end_s(self) -> Optional[float]:
        """End timestamp of the newest bucket (None when empty)."""
        return self.buckets[-1].end_s if self.buckets else None

    def window(self, seconds: float, end_s: Optional[float] = None) -> RollupBucket:
        """One merged bucket covering ``[end_s - seconds, end_s]``.

        ``end_s`` defaults to the newest bucket's end — **not** the wall
        clock — so evaluation over a finished capture is reproducible.
        A bucket is included when any part of it overlaps the window
        (buckets are never split; windows are bucket-granular).
        """
        if end_s is None:
            end_s = self.end_s if self.end_s is not None else 0.0
        cutoff = end_s - seconds
        merged = RollupBucket(start_s=end_s - seconds, end_s=end_s)
        for bucket in self.buckets:
            if bucket.end_s <= cutoff or bucket.start_s >= end_s:
                continue
            merged.merge(bucket)
        # Keep the nominal window bounds: partial-overlap buckets may
        # extend past them, but reports should state what was asked.
        merged.start_s = end_s - seconds
        merged.end_s = end_s
        return merged

    def as_dict(self) -> Dict[str, object]:
        return {
            "interval_s": self.interval_s,
            "initial_interval_s": self.initial_interval_s,
            "capacity": self.capacity,
            "decimations": self.decimations,
            "buckets": [bucket.as_dict() for bucket in self.buckets],
        }
