"""Rebuild rollup buckets offline from a captured ops JSONL.

The daemon's ``--log-json`` stream is a complete record of lifecycle
transitions with timestamps, so the same windows the live
:class:`~repro.obsd.engine.SloEngine` samples can be reconstructed after
the fact — ``hiss-slo evaluate --ops ops.jsonl`` replays a capture
through the *same* pure evaluation the daemon runs, which is how CI
asserts alerting behavior without a clock in the loop.

Replay is clocked by the events' own ``ts`` fields (never the wall
clock) and events are processed in file order, so a given capture + spec
always produces byte-identical reports.  Reconstruction rules:

========================  ============================================
``job.admitted``          ``service.jobs.submitted`` +1; remembers the
                          admission timestamp for queue-wait derivation
``job.started``           ``service.job.queue_wait_s`` observation
                          (started ts − admitted ts)
``job.done``              ``service.jobs.completed`` +1 and a
                          ``service.job.e2e_s`` observation
``job.failed/cancelled``  failure counters (+ ``e2e_s`` when present)
``job.rejected``          per-reason rejection counters
``job.deduplicated``      ``service.jobs.deduplicated`` +1
``run.executed``          ``service.runs.executed`` +1 and a
                          ``service.job.sim_s`` observation (``wall_s``)
``slo.alert/resolved``    collected into :attr:`ReplayedCapture.alerts`
========================  ============================================

Histograms use the serving tier's stage-latency shape (``low=1e-3,
high=1e4, growth=1.5``) so replayed percentiles are directly comparable
with the live ``/metrics`` ones at bucket resolution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from ..telemetry.metrics import Histogram
from .rollup import RollupStore

__all__ = ["ReplayedCapture", "replay_ops_log"]

#: Stage-histogram shape (matches ``repro.service.scheduler``).
_HIST_KW = dict(low=1e-3, high=1e4, growth=1.5)

#: Default replay bucket width — finer than the live default so short
#: captures (CI smoke runs last seconds) still span several buckets.
DEFAULT_REPLAY_INTERVAL_S = 1.0


@dataclass
class ReplayedCapture:
    """A rollup store rebuilt from a capture, plus replay bookkeeping."""

    store: RollupStore
    #: Events consumed / skipped (non-JSON or missing ``ts``/``event``).
    events: int = 0
    skipped: int = 0
    #: Per-event-name tallies, e.g. ``{"job.done": 12}``.
    by_event: Dict[str, int] = field(default_factory=dict)
    #: ``slo.alert`` / ``slo.resolved`` records found in the capture
    #: (the live engine's own verdicts, for cross-checking replays).
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    #: First/last event timestamps (None when the capture was empty).
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None

    @property
    def duration_s(self) -> float:
        if self.first_ts is None or self.last_ts is None:
            return 0.0
        return self.last_ts - self.first_ts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "skipped": self.skipped,
            "by_event": {k: self.by_event[k] for k in sorted(self.by_event)},
            "alerts": list(self.alerts),
            "first_ts": self.first_ts,
            "last_ts": self.last_ts,
            "duration_s": self.duration_s,
            "buckets": len(self.store),
        }


class _Cumulative:
    """The cumulative state a replay feeds into ``RollupStore.sample``."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, **_HIST_KW)
            self.histograms[name] = histogram
        histogram.record(value)


def _apply_event(
    record: Dict[str, Any],
    state: _Cumulative,
    admitted: Dict[str, float],
    capture: ReplayedCapture,
) -> None:
    event = record["event"]
    ts = record["ts"]
    job = record.get("job")
    if event == "job.admitted":
        state.inc("service.jobs.submitted")
        state.inc("service.runs.planned", int(record.get("planned_runs") or 0))
        if job:
            admitted[job] = ts
    elif event == "job.started":
        started_from = admitted.pop(job, None) if job else None
        if started_from is not None:
            state.observe("service.job.queue_wait_s", max(0.0, ts - started_from))
    elif event in ("job.done", "job.failed", "job.cancelled"):
        suffix = {"job.done": "completed", "job.failed": "failed",
                  "job.cancelled": "cancelled"}[event]
        state.inc(f"service.jobs.{suffix}")
        e2e_s = record.get("e2e_s")
        if isinstance(e2e_s, (int, float)):
            state.observe("service.job.e2e_s", max(0.0, float(e2e_s)))
        if job:
            admitted.pop(job, None)
    elif event == "job.rejected":
        reason = str(record.get("reason") or "unknown").replace("-", "_")
        state.inc(f"service.jobs.rejected_{reason}")
    elif event == "job.deduplicated":
        state.inc("service.jobs.deduplicated")
    elif event == "job.bad_spec":
        state.inc("service.jobs.bad_spec")
    elif event == "run.executed":
        state.inc("service.runs.executed")
        wall_s = record.get("wall_s")
        if isinstance(wall_s, (int, float)):
            state.observe("service.job.sim_s", max(0.0, float(wall_s)))
    elif event == "batch.executed":
        state.inc("service.batches.executed")
    elif event in ("slo.alert", "slo.resolved"):
        capture.alerts.append(dict(record))


def replay_ops_log(
    source: Union[str, Iterable[str]],
    interval_s: float = DEFAULT_REPLAY_INTERVAL_S,
    capacity: Optional[int] = None,
) -> ReplayedCapture:
    """Replay an ops JSONL into a :class:`RollupStore` (pure, event-clocked).

    ``source`` is a path or an iterable of JSONL lines.  The store is
    sampled on the events' own timestamp grid: whenever an event crosses
    the current bucket's end, the accumulated cumulative state is
    sampled at the boundary, so bucket boundaries depend only on the
    capture's first timestamp and ``interval_s`` — never on the wall
    clock or replay speed.
    """
    from .rollup import DEFAULT_CAPACITY

    store = RollupStore(
        interval_s=interval_s, capacity=capacity or DEFAULT_CAPACITY
    )
    capture = ReplayedCapture(store=store)
    state = _Cumulative()
    admitted: Dict[str, float] = {}
    next_boundary: Optional[float] = None
    last_sampled: Optional[float] = None

    def _records():
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                for line in handle:
                    yield line
        else:
            for line in source:
                yield line

    def _sample(at_s: float) -> None:
        nonlocal last_sampled
        store.sample(
            at_s, counters=state.counters, histograms=state.histograms
        )
        last_sampled = at_s

    for line in _records():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            capture.skipped += 1
            continue
        if not isinstance(record, dict) or "event" not in record:
            capture.skipped += 1
            continue
        ts = record.get("ts")
        if not isinstance(ts, (int, float)):
            capture.skipped += 1
            continue
        ts = float(ts)
        if capture.first_ts is None:
            capture.first_ts = ts
            next_boundary = ts + interval_s
        # Flush buckets the event's timestamp has crossed (events landing
        # exactly on a boundary belong to the bucket ending there); empty
        # buckets are materialised too, so quiet time stays visible.
        while next_boundary is not None and ts > next_boundary:
            _sample(next_boundary)
            next_boundary += store.interval_s
        capture.events += 1
        event = record["event"]
        capture.by_event[event] = capture.by_event.get(event, 0) + 1
        capture.last_ts = ts
        _apply_event(record, state, admitted, capture)

    if capture.last_ts is not None and (
        last_sampled is None or capture.last_ts > last_sampled
    ):
        # Final partial bucket up to the last event.
        _sample(capture.last_ts)
    return capture
