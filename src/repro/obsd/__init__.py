"""Self-watching observability: SLOs, burn-rate alerts, trace analytics.

The serving tier *records* everything the paper says matters — stage
histograms, span traces, a JSONL ops log — but records are not
judgements.  ``repro.obsd`` closes the loop: it watches the telemetry
the service already emits and decides, deterministically, whether the
service is meeting its own objectives.

Four cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obsd.rollup` — a bounded, deterministic time-series of
  windowed metric snapshots (counter deltas, histogram windows, gauge
  last-values) in fixed-interval buckets with ring eviction and
  halving decimation, mirroring :mod:`repro.profiling`'s sampler.
* :mod:`repro.obsd.slo` — declarative :class:`SloSpec`\\ s (latency
  percentile, availability, windowed ratio) evaluated as multi-window
  burn-rate rules; evaluation is a **pure function of captured
  buckets** — no wall-clock reads in the decision path — so the same
  capture always yields the same verdicts.
* :mod:`repro.obsd.engine` — the stateful :class:`SloEngine` a daemon
  runs: periodic rollup sampling, edge-triggered
  :class:`~repro.obsd.slo.AlertEvent`\\ s into the ops JSONL, the
  ``GET /v1/alerts`` document, and ``slo.*`` gauges for ``/metrics``.
* :mod:`repro.obsd.traces` — critical-path extraction, per-stage
  queueing decomposition, and ``trace diff`` attribution of an
  end-to-end latency delta between two jobs to their stages.

:mod:`repro.obsd.replay` rebuilds rollup buckets offline from a
captured ops JSONL, and :mod:`repro.obsd.cli` (``hiss-slo``) evaluates,
diffs, and renders reports from either a capture or a live daemon.
"""

from .rollup import RollupBucket, RollupStore
from .slo import (
    ALERTS_SCHEMA,
    DEFAULT_SLOS,
    SLO_SCHEMA,
    AlertEvent,
    SloSpec,
    evaluate_slos,
    parse_slo_document,
    slo_document,
    validate_slo_document,
)
from .engine import SloEngine
from .traces import critical_path, stage_decomposition, trace_diff
from .replay import ReplayedCapture, replay_ops_log

__all__ = [
    "ALERTS_SCHEMA",
    "AlertEvent",
    "DEFAULT_SLOS",
    "ReplayedCapture",
    "RollupBucket",
    "RollupStore",
    "SLO_SCHEMA",
    "SloEngine",
    "SloSpec",
    "critical_path",
    "evaluate_slos",
    "parse_slo_document",
    "replay_ops_log",
    "slo_document",
    "stage_decomposition",
    "trace_diff",
    "validate_slo_document",
]
