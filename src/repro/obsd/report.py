"""Deterministic text and single-file HTML reports for ``hiss-slo``.

Same contract as :mod:`repro.profiling.report`: zero external
dependencies (inline CSS, server-side inline SVG), the raw report JSON
embedded in a ``<script type="application/json">`` block so tooling can
recover the exact data from the page alone, and — because every input is
a pure function of the capture — byte-identical output for the same
capture and spec set, run to run.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional

from .rollup import RollupStore

__all__ = [
    "diff_text",
    "evaluation_text",
    "render_diff_html",
    "render_evaluation_html",
    "store_series",
    "write_html",
]


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} µs"


def _fmt_burn(burn: float) -> str:
    return f"{burn:.2f}x"


def _fmt_window(seconds: float) -> str:
    if seconds >= 3600 and seconds % 3600 == 0:
        return f"{int(seconds // 3600)}h"
    if seconds >= 60 and seconds % 60 == 0:
        return f"{int(seconds // 60)}m"
    return f"{seconds:g}s"


# ----------------------------------------------------------------------
# Time series extracted from the rollup (for the HTML sparklines)
# ----------------------------------------------------------------------
def store_series(store: RollupStore, histogram: str = "service.job.e2e_s") -> List[Dict[str, Any]]:
    """Per-bucket rows for plotting: counts, failures, and a p99 track."""
    rows: List[Dict[str, Any]] = []
    for bucket in store.buckets:
        h = bucket.histograms.get(histogram)
        summary = h.summary() if h is not None else None
        rows.append(
            {
                "end_s": bucket.end_s,
                "seconds": bucket.seconds,
                "completed": bucket.counters.get("service.jobs.completed", 0),
                "failed": bucket.counters.get("service.jobs.failed", 0),
                "p99_s": summary["percentiles"]["p99"] if summary else None,
                "count": summary["count"] if summary else 0,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Text renderings
# ----------------------------------------------------------------------
def evaluation_text(report: Dict[str, Any], capture: Optional[Dict[str, Any]] = None) -> str:
    """Aligned-text form of an :func:`~repro.obsd.slo.evaluate_slos` report."""
    lines: List[str] = []
    firing = report.get("firing") or []
    verdict = f"{len(firing)} FIRING: {', '.join(firing)}" if firing else "all quiet"
    lines.append(
        f"slo report @ {report['at_s']:.3f} "
        f"({report['buckets']} buckets, interval {report['interval_s']:g}s, "
        f"{report['decimations']} decimations) — {verdict}"
    )
    if capture:
        lines.append(
            f"capture: {capture['events']} events over "
            f"{capture['duration_s']:.3f}s ({capture['skipped']} skipped)"
        )
    lines.append("")
    header = (
        f"{'slo':<18} {'objective':<26} {'window':>7} {'events':>8} "
        f"{'bad':>9} {'burn':>9}  state"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in report["evaluations"]:
        state = "FIRING" if row["firing"] else "ok"
        for which in ("fast", "slow"):
            window = row["windows"][which]
            name = row["name"] if which == "fast" else ""
            detail = row["detail"] if which == "fast" else ""
            state_cell = f"{state} ({row['severity']})" if which == "fast" else ""
            lines.append(
                f"{name:<18} {detail:<26} "
                f"{_fmt_window(window['seconds']):>7} {window['total']:>8.0f} "
                f"{window['bad']:>9.2f} {_fmt_burn(window['burn']):>9}  {state_cell}"
            )
    history = report.get("history")
    if history:
        lines.append("")
        lines.append(f"{'alert transitions':<24} {'state':<10} {'burn f/s':>16}")
        for event in history:
            lines.append(
                f"{event['slo']:<24} {event['state']:<10} "
                f"{event['burn_fast']:>7.1f}/{event['burn_slow']:<8.1f}"
            )
    return "\n".join(lines)


def diff_text(diff: Dict[str, Any]) -> str:
    """Aligned-text form of a :func:`~repro.obsd.traces.trace_diff`."""
    a, b = diff["a"], diff["b"]
    lines = [
        f"trace diff: {a['job_id']} ({_fmt_s(a['e2e_s'])}) -> "
        f"{b['job_id']} ({_fmt_s(b['e2e_s'])}), "
        f"delta {diff['e2e_delta_s']:+.6f}s",
        "",
    ]
    header = (
        f"{'stage':<32} {'baseline':>12} {'compare':>12} "
        f"{'delta':>12} {'share':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in diff["stages"]:
        share = (
            f"{row['share_of_delta'] * 100:.1f}%"
            if diff["e2e_delta_s"]
            else "-"
        )
        lines.append(
            f"{row['label']:<32} {_fmt_s(row['a_s']):>12} {_fmt_s(row['b_s']):>12} "
            f"{row['delta_s']:>+12.6f} {share:>7}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML assembly
# ----------------------------------------------------------------------
_CSS = """
body { font: 14px/1.45 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 960px; color: #222; padding: 0 1em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.8em; }
table { border-collapse: collapse; width: 100%; margin: 0.6em 0; }
th, td { text-align: left; padding: 4px 10px; border-bottom: 1px solid #e5e5e5;
         font-variant-numeric: tabular-nums; }
th { background: #f7f7f7; font-weight: 600; }
td.num, th.num { text-align: right; }
.muted { color: #888; } .mono { font-family: ui-monospace, monospace; }
.bar { background: #4c78a8; height: 11px; display: inline-block;
       vertical-align: middle; border-radius: 2px; }
.bar.bad { background: #e45756; }
.firing { color: #b0272a; font-weight: 600; }
.ok { color: #2a7d2e; }
"""


def _burn_bar(burn: float, factor: float, width: int = 180) -> str:
    """A horizontal burn bar: full width at 2x the alert factor."""
    span = max(factor * 2.0, 1e-9)
    px = int(min(1.0, burn / span) * width)
    cls = "bar bad" if burn >= factor else "bar"
    return f"<span class='{cls}' style='width:{max(px, 2)}px'></span>"


def _series_svg(series: List[Dict[str, Any]], width: int = 860) -> str:
    plotted = [row for row in series if row["p99_s"] is not None]
    if len(plotted) < 2:
        return "<p class='muted'>not enough buckets for a p99 track</p>"
    height, pad = 90, 10
    t0 = plotted[0]["end_s"]
    t1 = plotted[-1]["end_s"]
    span = max(t1 - t0, 1e-9)
    peak = max(row["p99_s"] for row in plotted) or 1e-9
    points = " ".join(
        f"{pad + (row['end_s'] - t0) / span * (width - 2 * pad):.1f},"
        f"{height - pad - (row['p99_s'] / peak) * (height - 2 * pad):.1f}"
        for row in plotted
    )
    return (
        f"<svg viewBox='0 0 {width} {height}' width='{width}' height='{height}' "
        "xmlns='http://www.w3.org/2000/svg' role='img'>"
        f"<rect x='0' y='0' width='{width}' height='{height}' fill='#fafafa' "
        "stroke='#ddd'/>"
        f"<polyline points='{points}' fill='none' stroke='#4c78a8' "
        "stroke-width='1.4'/>"
        f"<text x='{pad}' y='{pad + 8}' font-size='10' fill='#555'>"
        f"e2e p99 (peak {peak:.4g}s) per bucket</text>"
        "</svg>"
    )


def render_evaluation_html(
    report: Dict[str, Any],
    capture: Optional[Dict[str, Any]] = None,
    series: Optional[List[Dict[str, Any]]] = None,
    title: str = "HISS SLO report",
) -> str:
    """One self-contained page for an evaluation report."""
    e = html.escape
    firing = report.get("firing") or []
    out: List[str] = []
    out.append("<!doctype html><html lang='en'><head><meta charset='utf-8'>")
    out.append(f"<title>{e(title)}</title><style>{_CSS}</style></head><body>")
    out.append(f"<h1>{e(title)}</h1>")
    verdict = (
        f"<span class='firing'>{len(firing)} firing: {e(', '.join(firing))}</span>"
        if firing
        else "<span class='ok'>all objectives met</span>"
    )
    summary = (
        f"{verdict} &middot; {report['buckets']} buckets &middot; "
        f"interval {report['interval_s']:g}s &middot; "
        f"{report['decimations']} decimations"
    )
    if capture:
        summary += (
            f" &middot; {capture['events']} capture events over "
            f"{capture['duration_s']:.3f}s"
        )
    out.append(f"<p>{summary}</p>")

    out.append("<h2>Burn rates: fast and slow windows</h2>")
    out.append(
        "<table><thead><tr><th>slo</th><th>objective</th><th>window</th>"
        "<th class='num'>events</th><th class='num'>bad</th>"
        "<th class='num'>burn</th><th style='width:28%'></th><th>state</th>"
        "</tr></thead><tbody>"
    )
    for row in report["evaluations"]:
        state = (
            f"<span class='firing'>FIRING ({e(row['severity'])})</span>"
            if row["firing"]
            else "<span class='ok'>ok</span>"
        )
        for which in ("fast", "slow"):
            window = row["windows"][which]
            out.append(
                "<tr>"
                f"<td class='mono'>{e(row['name']) if which == 'fast' else ''}</td>"
                f"<td>{e(row['detail']) if which == 'fast' else ''}</td>"
                f"<td>{e(_fmt_window(window['seconds']))}</td>"
                f"<td class='num'>{window['total']:.0f}</td>"
                f"<td class='num'>{window['bad']:.2f}</td>"
                f"<td class='num'>{e(_fmt_burn(window['burn']))}</td>"
                f"<td>{_burn_bar(window['burn'], row['burn_factor'])}</td>"
                f"<td>{state if which == 'fast' else ''}</td></tr>"
            )
    out.append("</tbody></table>")
    out.append(
        "<p class='muted'>A rule fires when both windows burn error budget "
        "faster than its factor — the slow window filters one-off spikes, "
        "the fast window makes recovery visible quickly.</p>"
    )

    history = report.get("history")
    if history:
        out.append("<h2>Alert transitions</h2>")
        out.append(
            "<table><thead><tr><th>slo</th><th>state</th>"
            "<th class='num'>burn fast</th><th class='num'>burn slow</th>"
            "<th>detail</th></tr></thead><tbody>"
        )
        for event in history:
            cls = "firing" if event["state"] == "firing" else "ok"
            out.append(
                f"<tr><td class='mono'>{e(event['slo'])}</td>"
                f"<td class='{cls}'>{e(event['state'])}</td>"
                f"<td class='num'>{event['burn_fast']:.2f}x</td>"
                f"<td class='num'>{event['burn_slow']:.2f}x</td>"
                f"<td class='muted'>{e(event.get('detail') or '')}</td></tr>"
            )
        out.append("</tbody></table>")

    if series:
        out.append("<h2>Tail latency over the capture</h2>")
        out.append(_series_svg(series))

    document = {"report": report, "capture": capture, "series": series}
    payload = json.dumps(document, sort_keys=True).replace("</", "<\\/")
    out.append(
        f"<script type='application/json' id='hiss-slo-data'>{payload}</script>"
    )
    out.append("</body></html>")
    return "".join(out)


def render_diff_html(diff: Dict[str, Any], title: str = "HISS trace diff") -> str:
    """One self-contained page for a two-job trace diff."""
    e = html.escape
    a, b = diff["a"], diff["b"]
    out: List[str] = []
    out.append("<!doctype html><html lang='en'><head><meta charset='utf-8'>")
    out.append(f"<title>{e(title)}</title><style>{_CSS}</style></head><body>")
    out.append(f"<h1>{e(title)}</h1>")
    out.append(
        f"<p><span class='mono'>{e(str(a['job_id']))}</span> "
        f"({e(_fmt_s(a['e2e_s']))}) &rarr; "
        f"<span class='mono'>{e(str(b['job_id']))}</span> "
        f"({e(_fmt_s(b['e2e_s']))}) &middot; "
        f"end-to-end delta <b>{diff['e2e_delta_s']:+.6f}s</b></p>"
    )
    out.append("<h2>Stage attribution of the delta</h2>")
    max_abs = max((abs(r["delta_s"]) for r in diff["stages"]), default=0.0)
    out.append(
        "<table><thead><tr><th>stage</th><th class='num'>baseline</th>"
        "<th class='num'>compare</th><th class='num'>delta</th>"
        "<th style='width:30%'></th><th class='num'>share of delta</th>"
        "</tr></thead><tbody>"
    )
    for row in diff["stages"]:
        px = int(240 * abs(row["delta_s"]) / max_abs) if max_abs else 0
        cls = "bar bad" if row["delta_s"] > 0 else "bar"
        share = (
            f"{row['share_of_delta'] * 100:.1f}%" if diff["e2e_delta_s"] else "&mdash;"
        )
        out.append(
            f"<tr><td>{e(row['label'])}</td>"
            f"<td class='num'>{e(_fmt_s(row['a_s']))}</td>"
            f"<td class='num'>{e(_fmt_s(row['b_s']))}</td>"
            f"<td class='num'>{row['delta_s']:+.6f}</td>"
            f"<td><span class='{cls}' style='width:{max(px, 2)}px'></span></td>"
            f"<td class='num'>{share}</td></tr>"
        )
    out.append("</tbody></table>")
    out.append(
        "<p class='muted'>Red bars are stages where the comparison job spent "
        "longer than the baseline; shares sum to 100% of the end-to-end "
        "delta up to rounding.</p>"
    )
    payload = json.dumps(diff, sort_keys=True).replace("</", "<\\/")
    out.append(
        f"<script type='application/json' id='hiss-slo-diff-data'>{payload}</script>"
    )
    out.append("</body></html>")
    return "".join(out)


def write_html(text: str, path: str) -> int:
    """Write a rendered page to ``path``; returns the byte count."""
    data = text.encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)
