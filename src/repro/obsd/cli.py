"""``hiss-slo``: evaluate SLOs, inspect alerts, and diff job traces.

Subcommands::

    hiss-slo evaluate --ops ops.jsonl [--slo slos.json] [-o report.html]
    hiss-slo evaluate --url http://host:port [--slo slos.json]
    hiss-slo alerts --url http://host:port [--json]
    hiss-slo diff baseline-trace.json compare-trace.json [-o diff.html]
    hiss-slo diff --url http://host:port JOB_A JOB_B
    hiss-slo validate slos.json
    hiss-slo default-spec > slos.json

Offline mode replays a daemon's ``--log-json`` capture through the same
pure burn-rate evaluation the live engine runs (clocked entirely by the
events' own timestamps), so the report for a given capture + spec set is
byte-for-byte reproducible — run it twice, diff the files, get nothing.
Live mode asks the daemon's ``GET /v1/alerts`` for its current verdicts
instead.  Exit codes: ``evaluate`` exits 3 with ``--fail-on-firing``
when any rule fires; ``validate`` exits 1 on schema problems.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional

from ..version import add_version_flag
from .replay import DEFAULT_REPLAY_INTERVAL_S, replay_ops_log
from .report import (
    diff_text,
    evaluation_text,
    render_diff_html,
    render_evaluation_html,
    store_series,
    write_html,
)
from .slo import (
    DEFAULT_SLOS,
    evaluate_slos,
    parse_slo_document,
    slo_document,
    validate_slo_document,
)
from .traces import trace_diff


def _load_json(path: str, what: str = "document") -> Any:
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as error:
        raise SystemExit(f"hiss-slo: cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        raise SystemExit(f"hiss-slo: {path} is not valid {what} JSON: {error}")


def _load_specs(path: Optional[str]) -> List:
    """The spec list for ``--slo`` (a file path, or the built-in defaults)."""
    if path is None or path == "default":
        return list(DEFAULT_SLOS)
    doc = _load_json(path, what="SLO spec")
    try:
        return parse_slo_document(doc)
    except ValueError as error:
        raise SystemExit(f"hiss-slo: {path}: {error}")


def _fetch(url: str, path: str, timeout_s: float = 30.0) -> Any:
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        url.rstrip("/") + path, headers={"Accept": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        detail = error.read().decode("utf-8", errors="replace")[:200]
        raise SystemExit(f"hiss-slo: {url}{path}: HTTP {error.code}: {detail}")
    except urllib.error.URLError as error:
        raise SystemExit(f"hiss-slo: cannot reach {url}: {error}")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_evaluate(args: argparse.Namespace) -> int:
    if bool(args.ops) == bool(args.url):
        raise SystemExit("hiss-slo evaluate: give exactly one of --ops or --url")
    specs = _load_specs(args.slo)
    capture_doc: Optional[Dict[str, Any]] = None
    series = None
    if args.ops:
        capture = replay_ops_log(args.ops, interval_s=args.interval)
        report = evaluate_slos(specs, capture.store)
        capture_doc = capture.as_dict()
        series = store_series(capture.store)
    else:
        # Live mode: the daemon evaluated with its own engine; render its
        # verdicts rather than re-deriving them from a partial view.
        report = _fetch(args.url, "/v1/alerts")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(evaluation_text(report, capture=capture_doc))
    if args.output:
        size = write_html(
            render_evaluation_html(
                report, capture=capture_doc, series=series, title=args.title
            ),
            args.output,
        )
        print(f"wrote {args.output} ({size} bytes)", file=sys.stderr)
    if args.fail_on_firing and report.get("firing"):
        return 3
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    report = _fetch(args.url, "/v1/alerts")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(evaluation_text(report))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    if args.url:
        doc_a = _fetch(args.url, f"/v1/jobs/{args.baseline}/trace")
        doc_b = _fetch(args.url, f"/v1/jobs/{args.compare}/trace")
    else:
        doc_a = _load_json(args.baseline, what="trace")
        doc_b = _load_json(args.compare, what="trace")
    diff = trace_diff(doc_a, doc_b)
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(diff_text(diff))
    if args.output:
        size = write_html(render_diff_html(diff, title=args.title), args.output)
        print(f"wrote {args.output} ({size} bytes)", file=sys.stderr)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    doc = _load_json(args.spec, what="SLO spec")
    problems = validate_slo_document(doc)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    specs = parse_slo_document(doc)
    details = ", ".join(spec.name for spec in specs)
    print(f"OK: {args.spec} ({len(specs)} slo(s): {details})")
    return 0


def _cmd_default_spec(args: argparse.Namespace) -> int:
    print(json.dumps(slo_document(DEFAULT_SLOS), indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hiss-slo",
        description="Evaluate serving-tier SLOs and diff job traces.",
    )
    add_version_flag(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    evaluate = sub.add_parser(
        "evaluate", help="burn-rate evaluation from a capture or a live daemon"
    )
    evaluate.add_argument(
        "--ops", metavar="FILE", default=None,
        help="replay a daemon's --log-json JSONL capture (offline, reproducible)",
    )
    evaluate.add_argument(
        "--url", default=None, help="ask a running daemon's /v1/alerts instead"
    )
    evaluate.add_argument(
        "--slo", metavar="FILE", default=None,
        help="SLO spec JSON (hiss.slo/1); omit or 'default' for the built-ins",
    )
    evaluate.add_argument(
        "--interval", type=float, default=DEFAULT_REPLAY_INTERVAL_S,
        help=f"replay bucket width in seconds (default {DEFAULT_REPLAY_INTERVAL_S:g})",
    )
    evaluate.add_argument("-o", "--output", default=None, metavar="FILE",
                          help="also write a self-contained HTML report")
    evaluate.add_argument("--json", action="store_true", help="print the raw report JSON")
    evaluate.add_argument("--title", default="HISS SLO report", help="report page title")
    evaluate.add_argument(
        "--fail-on-firing", action="store_true",
        help="exit 3 when any rule fires (for CI gates)",
    )
    evaluate.set_defaults(func=_cmd_evaluate)

    alerts = sub.add_parser("alerts", help="print a live daemon's alert state")
    alerts.add_argument("--url", default="http://127.0.0.1:8171", help="server URL")
    alerts.add_argument("--json", action="store_true", help="print the raw document")
    alerts.set_defaults(func=_cmd_alerts)

    diff = sub.add_parser(
        "diff", help="attribute the e2e latency delta between two job traces"
    )
    diff.add_argument("baseline", help="baseline trace JSON file (or job id with --url)")
    diff.add_argument("compare", help="comparison trace JSON file (or job id with --url)")
    diff.add_argument("--url", default=None,
                      help="fetch both traces from a running daemon by job id")
    diff.add_argument("-o", "--output", default=None, metavar="FILE",
                      help="also write a self-contained HTML report")
    diff.add_argument("--json", action="store_true", help="print the raw diff JSON")
    diff.add_argument("--title", default="HISS trace diff", help="report page title")
    diff.set_defaults(func=_cmd_diff)

    validate = sub.add_parser(
        "validate", help="schema-check an SLO spec file; exit 1 on problems"
    )
    validate.add_argument("spec", help="SLO spec JSON (hiss.slo/1)")
    validate.set_defaults(func=_cmd_validate)

    default_spec = sub.add_parser(
        "default-spec", help="print the built-in SLO spec document (a template)"
    )
    default_spec.set_defaults(func=_cmd_default_spec)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; repoint stdout at devnull
        # so the interpreter's shutdown flush doesn't raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
