"""The stateful SLO engine a live daemon runs.

:class:`SloEngine` owns three things the pure layers below it do not:

* a **clock-driven sampler** — every ``interval_s`` it snapshots the
  service's cumulative counters, stage histograms, and pool statistics
  into the :class:`~repro.obsd.rollup.RollupStore`;
* **edge-triggered alerting** — it re-evaluates the specs after each
  sample and emits one structured event per *transition* (``slo.alert``
  when a rule starts firing, ``slo.resolved`` when it stops) into the
  service's ops JSONL, keeping a bounded in-memory alert history for
  ``GET /v1/alerts``;
* ``slo.*`` **gauges** for ``/metrics`` (per-slo burn rates and firing
  flags).

The engine is the only place in :mod:`repro.obsd` allowed to read the
wall clock, and even here it is read once per tick and passed down, so
every decision below this line stays a pure function of sampled state.
With the engine disabled (``HissService(slos=None)``, the default) the
service carries a ``None`` and pays nothing.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence

from ..telemetry.metrics import Histogram
from .rollup import DEFAULT_CAPACITY, DEFAULT_INTERVAL_S, RollupStore
from .slo import ALERTS_SCHEMA, AlertEvent, SloSpec, evaluate_slos

__all__ = ["SloEngine"]

#: Alert transitions kept in memory for ``GET /v1/alerts``.
_ALERT_HISTORY = 256


class SloEngine:
    """Periodic rollup sampling + burn-rate evaluation + alert edges."""

    def __init__(
        self,
        specs: Sequence[SloSpec],
        interval_s: float = DEFAULT_INTERVAL_S,
        capacity: int = DEFAULT_CAPACITY,
        ops_log=None,
    ):
        self.specs = tuple(specs)
        self.store = RollupStore(interval_s=interval_s, capacity=capacity)
        self.interval_s = interval_s
        self.ops_log = ops_log
        self.ticks = 0
        #: Rules currently firing (slo name -> the evaluation row).
        self._firing: Dict[str, Dict[str, Any]] = {}
        #: Recent alert transitions, oldest first (bounded).
        self._history: List[AlertEvent] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_report: Dict[str, Any] = {
            "schema": ALERTS_SCHEMA,
            "at_s": 0.0,
            "buckets": 0,
            "interval_s": interval_s,
            "decimations": 0,
            "evaluations": [],
            "firing": [],
        }

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @staticmethod
    def service_state(service) -> Dict[str, Any]:
        """Cumulative counters / gauges / histograms of a ``HissService``.

        Counters merge the metrics registry with the shared pool's
        lifetime statistics (as ``pool.*``), so ratio SLOs can window
        warm-hit counts exactly like job counts.
        """
        from ..core.pool import shared_pool_stats

        snapshot = service.metrics.snapshot()
        counters: Dict[str, int] = dict(snapshot["counters"])
        for name, value in shared_pool_stats().items():
            if name == "warm_hit_ratio":  # derived; windows recompute it
                continue
            counters[f"pool.{name}"] = int(value)
        gauges: Dict[str, float] = {
            "queue.depth": float(service.admission.depth()),
            "jobs.running": float(
                service.store.counts().get("running", 0)
            ),
        }
        histograms: Dict[str, Histogram] = dict(service.metrics.histograms)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def tick(self, now_s: float, service) -> Dict[str, Any]:
        """One sample + evaluation round; returns the fresh report.

        Deterministic given ``now_s`` and the service's cumulative state —
        the only wall-clock read is the caller's.
        """
        state = self.service_state(service)
        with self._lock:
            self.store.sample(
                now_s,
                counters=state["counters"],
                gauges=state["gauges"],
                histograms=state["histograms"],
            )
            report = evaluate_slos(self.specs, self.store, end_s=now_s)
            self._apply_transitions(report)
            self._last_report = report
            self.ticks += 1
        return report

    def _apply_transitions(self, report: Dict[str, Any]) -> None:
        """Emit one AlertEvent per edge (fired / resolved); lock held."""
        for row in report["evaluations"]:
            name = row["name"]
            was_firing = name in self._firing
            if row["firing"] and not was_firing:
                self._firing[name] = row
                self._record(row, report["at_s"], "firing")
            elif not row["firing"] and was_firing:
                del self._firing[name]
                self._record(row, report["at_s"], "resolved")
            elif row["firing"]:
                self._firing[name] = row  # refresh burn numbers

    def _record(self, row: Dict[str, Any], at_s: float, state: str) -> None:
        fast = row["windows"]["fast"]
        slow = row["windows"]["slow"]
        event = AlertEvent(
            slo=row["name"],
            state=state,
            severity=row["severity"],
            at_s=at_s,
            burn_fast=fast["burn"],
            burn_slow=slow["burn"],
            detail=row["detail"],
            message=(
                f"{row['name']} {state}: burn {fast['burn']:.1f}x/"
                f"{slow['burn']:.1f}x (threshold {row['burn_factor']:g}x)"
            ),
        )
        self._history.append(event)
        del self._history[:-_ALERT_HISTORY]
        if self.ops_log is not None:
            self.ops_log.log(
                "slo.alert" if state == "firing" else "slo.resolved",
                slo=event.slo,
                severity=event.severity,
                burn_fast=round(event.burn_fast, 4),
                burn_slow=round(event.burn_slow, 4),
                detail=event.detail,
            )

    # ------------------------------------------------------------------
    # Read side (endpoints)
    # ------------------------------------------------------------------
    def alerts_document(self) -> Dict[str, Any]:
        """The ``GET /v1/alerts`` body: last report + transition history."""
        with self._lock:
            report = dict(self._last_report)
            report["ticks"] = self.ticks
            report["history"] = [event.as_dict() for event in self._history]
            return report

    def rollup_window(self, seconds: float = 300.0) -> Dict[str, Any]:
        """One merged rollup bucket covering the trailing window.

        Ends at the newest bucket, not the wall clock, so a window taken
        at capture time re-renders identically from a saved postmortem.
        """
        with self._lock:
            if not len(self.store):
                return {}
            return self.store.window(seconds).as_dict()

    def gauges(self) -> Dict[str, float]:
        """``slo.*`` gauges merged into the service's ``/metrics``."""
        with self._lock:
            out: Dict[str, float] = {
                "slo.specs": float(len(self.specs)),
                "slo.firing": float(len(self._firing)),
                "slo.ticks": float(self.ticks),
                "slo.rollup.buckets": float(len(self.store)),
                "slo.rollup.decimations": float(self.store.decimations),
            }
            for row in self._last_report["evaluations"]:
                prefix = f"slo.{row['name']}"
                out[f"{prefix}.burn_fast"] = row["windows"]["fast"]["burn"]
                out[f"{prefix}.burn_slow"] = row["windows"]["slow"]["burn"]
                out[f"{prefix}.firing"] = float(row["firing"])
            return out

    # ------------------------------------------------------------------
    # Background thread (owned by HissService.start/stop)
    # ------------------------------------------------------------------
    def start(self, service) -> None:
        import time as _time

        if self._thread is not None:
            return

        def _loop() -> None:
            while not self._stop.wait(self.interval_s):
                try:
                    self.tick(_time.time(), service)
                except Exception:  # pragma: no cover - keep the daemon up
                    if self.ops_log is not None:
                        self.ops_log.log("slo.tick_error")

        self._thread = threading.Thread(target=_loop, name="hiss-slo", daemon=True)
        self._thread.start()

    def stop(self, service=None) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if service is not None:
            # One final synchronous tick so short-lived services (tests,
            # drain-and-exit daemons) still evaluate what they served.
            import time as _time

            self.tick(_time.time(), service)
